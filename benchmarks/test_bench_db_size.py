"""E3 — transfer strategy comparison vs database size.

Expected shape (section 4): the full-database transfer scales linearly
with database size, while the filtered strategies (version check,
RecTable, lazy, log filter) scale with the *changed set*, which for a
fixed downtime is roughly constant — so their advantage grows with the
database.
"""

import pytest

from benchmarks.conftest import once, print_table
from repro.scenarios import run_recovery_experiment

SIZES = (100, 400, 1000)
STRATEGIES = ("full", "version_check", "rectable", "log_filter", "lazy")


def test_transfer_cost_vs_db_size(benchmark):
    rows = []

    def sweep():
        for strategy in STRATEGIES:
            for size in SIZES:
                report = run_recovery_experiment(
                    strategy=strategy, db_size=size, downtime=0.5,
                    arrival_rate=120.0, seed=41,
                )
                rows.append([
                    strategy, size, report.completed,
                    report.extra["recovery_time"],
                    int(report.extra["objects_sent"]),
                    int(report.extra["bytes_sent"]),
                ])
        return rows

    once(benchmark, sweep)
    print_table(
        "E3 — recovery cost vs database size (downtime 0.5s, 120 txn/s)",
        ["strategy", "db size", "ok", "recovery time", "objects sent", "bytes sent"],
        rows,
    )
    assert all(r[2] for r in rows)

    def sent(strategy, size):
        return next(r[4] for r in rows if r[0] == strategy and r[1] == size)

    # Full transfer grows with the database...
    assert sent("full", 1000) > sent("full", 100) * 5
    # ...while the filtered strategies stay bounded by the changed set.
    for strategy in ("version_check", "rectable", "log_filter"):
        assert sent(strategy, 1000) < sent("full", 1000) / 2
    # At every size, RecTable never sends more than version-check finds.
    for size in SIZES:
        assert sent("rectable", size) <= sent("version_check", size) + 5
