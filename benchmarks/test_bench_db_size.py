"""E3 — transfer strategy comparison vs database size.

Expected shape (section 4): the full-database transfer scales linearly
with database size, while the filtered strategies (version check,
RecTable, lazy, log filter) scale with the *changed set*, which for a
fixed downtime is roughly constant — so their advantage grows with the
database.

The parameter grid lives in ``repro.fleet.SWEEPS["db_size"]`` — the
same cells ``python -m repro sweep --study db_size`` runs in parallel —
so the benchmark table and the sweep fleet can never drift apart.
"""

from benchmarks.conftest import once, print_table
from repro.fleet import SWEEPS, recovery_kwargs
from repro.scenarios import run_recovery_experiment

STUDY = SWEEPS["db_size"]
SIZES = tuple(dict.fromkeys(p["db_size"] for _, p in STUDY.grid))


def test_transfer_cost_vs_db_size(benchmark):
    rows = []

    def sweep():
        for _key, params in STUDY.grid:
            report = run_recovery_experiment(**recovery_kwargs(params))
            rows.append([
                params["strategy"], params["db_size"], report.completed,
                report.extra["recovery_time"],
                int(report.extra["objects_sent"]),
                int(report.extra["bytes_sent"]),
            ])
        return rows

    once(benchmark, sweep)
    print_table(
        STUDY.title,
        ["strategy", "db size", "ok", "recovery time", "objects sent", "bytes sent"],
        rows,
    )
    assert all(r[2] for r in rows)

    def sent(strategy, size):
        return next(r[4] for r in rows if r[0] == strategy and r[1] == size)

    # Full transfer grows with the database...
    assert sent("full", 1000) > sent("full", 100) * 5
    # ...while the filtered strategies stay bounded by the changed set.
    for strategy in ("version_check", "rectable", "log_filter"):
        assert sent(strategy, 1000) < sent("full", 1000) / 2
    # At every size, RecTable never sends more than version-check finds.
    for size in SIZES:
        assert sent("rectable", size) <= sent("version_check", size) + 5
