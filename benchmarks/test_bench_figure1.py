"""E1 — Figure 1: cascading reconfiguration under plain virtual synchrony.

Reproduces the paper's Figure 1 storyline (site fails and recovers, the
peer fails mid-transfer, a partition later isolates part of the system)
and measures what plain VS needs to survive it: explicit up-to-date
announcements, peer re-election, transfer restart/resume.
"""

from benchmarks.conftest import once, print_table
from repro.scenarios import run_figure1_scenario


def test_figure1_cascading_vs(benchmark):
    report = once(benchmark, run_figure1_scenario, mode="vs", strategy="rectable", seed=17)
    assert report.completed
    print_table(
        "E1 / Figure 1 — cascading reconfiguration, plain virtual synchrony",
        ["metric", "value"],
        [
            ["completed", report.completed],
            ["virtual duration (s)", report.duration],
            ["commits", report.commits],
            ["aborts", report.aborts],
            ["transfers started", report.transfers_started],
            ["transfers completed", report.transfers_completed],
            ["up-to-date announcements (VS sub-protocol)", report.announcements],
            ["coordination events", report.coordination_events()],
            ["enqueued txns replayed by joiners", report.replayed],
        ],
    )
    # Shape assertions: the cascade forces more than one transfer attempt
    # and the explicit announcement sub-protocol must have run.
    assert report.transfers_started > report.transfers_completed - 1
    assert report.announcements >= 2  # S5 + the returning minority sites


def test_figure1_per_strategy(benchmark):
    rows = []

    def run_all():
        for strategy in ("full", "rectable", "lazy"):
            report = run_figure1_scenario(mode="vs", strategy=strategy, seed=19)
            rows.append([
                strategy, report.completed, report.duration, report.commits,
                report.transfers_started, report.replayed,
            ])
        return rows

    once(benchmark, run_all)
    print_table(
        "E1b — Figure 1 schedule under different transfer strategies",
        ["strategy", "completed", "duration", "commits", "transfers", "replayed"],
        rows,
    )
    assert all(row[1] for row in rows)
    lazy = next(r for r in rows if r[0] == "lazy")
    full = next(r for r in rows if r[0] == "full")
    assert lazy[5] <= full[5]  # lazy replays no more than eager
