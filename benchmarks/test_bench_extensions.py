"""E11-E13 — extension ablations.

E11: serial vs concurrent application of delivered transactions — the
paper's section 2.2 argues that "processing messages serially as assumed
for most applications deployed over group communication ... would result
in significantly lower throughput rates".

E12: partition-level (coarse) transfer locks vs per-object locks
(section 4.3), and partitioned lazy round 1 fail-over (section 4.7).

E13: the dynamic primary-view definition (section 2.1) buys availability
in shrinking-cluster scenarios the static-majority rule cannot serve.
"""

from benchmarks.conftest import once, print_table
from repro import (
    ClusterBuilder,
    FullTransferStrategy,
    LoadGenerator,
    NodeConfig,
    WorkloadConfig,
)
from repro.gcs.config import GCSConfig
from repro.replication.node import SiteStatus
from repro.workload.metrics import summarize_latencies
from tests.conftest import quick_cluster


def test_e11_serial_vs_concurrent(benchmark):
    rows = []

    def run():
        for serial in (False, True):
            nc = NodeConfig(write_op_time=0.003, serial_processing=serial)
            cluster = quick_cluster(db_size=300, seed=93, node_config=nc)
            load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=250,
                                                         reads_per_txn=0,
                                                         writes_per_txn=2))
            load.start()
            cluster.run_for(1.5)
            load.stop()
            cluster.settle(5.0)
            cluster.check()
            latency = summarize_latencies(load.latencies())
            rows.append([
                "serial" if serial else "concurrent",
                len(load.committed()), latency.mean * 1000, latency.p95 * 1000,
                latency.maximum * 1000,
            ])
        return rows

    once(benchmark, run)
    print_table(
        "E11 — serial vs concurrent write phases (250 txn/s, 3ms/write)",
        ["application mode", "commits", "mean latency (ms)", "p95 (ms)", "max (ms)"],
        rows,
    )
    concurrent = next(r for r in rows if r[0] == "concurrent")
    serial = next(r for r in rows if r[0] == "serial")
    assert serial[3] > concurrent[3] * 2  # p95 at least doubles
    assert serial[1] == concurrent[1]  # same decisions, same commits


def test_e12_transfer_lock_granularity(benchmark):
    rows = []

    def run():
        for granularity in ("object", "partition"):
            nc = NodeConfig(partition_count=8, transfer_obj_time=0.0005)
            cluster = quick_cluster(
                db_size=400, seed=83,
                strategy=FullTransferStrategy(granularity=granularity),
                node_config=nc,
            )
            load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                         reads_per_txn=1,
                                                         writes_per_txn=2))
            load.start()
            cluster.run_for(0.4)
            cluster.crash("S3")
            cluster.run_for(0.4)
            grants_before = {s: cluster.nodes[s].db.locks.grants
                             for s in cluster.universe}
            recover_at = cluster.sim.now
            cluster.recover("S3")
            assert cluster.await_condition(
                lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=40
            )
            recovery_time = cluster.sim.now - recover_at
            load.stop()
            cluster.settle(0.5)
            cluster.check()
            peer = max(cluster.universe,
                       key=lambda s: cluster.nodes[s].reconfig.transfers_started)
            lock_wait = sum(sum(n.db.locks.wait_times) for n in cluster.nodes.values())
            rows.append([
                granularity,
                cluster.nodes[peer].db.locks.grants - grants_before[peer],
                recovery_time, lock_wait,
            ])
        return rows

    once(benchmark, run)
    print_table(
        "E12 — full-transfer lock granularity (db=400, 8 partitions)",
        ["granularity", "peer lock grants during recovery",
         "recovery time", "total lock wait (s)"],
        rows,
    )
    coarse = next(r for r in rows if r[0] == "partition")
    fine = next(r for r in rows if r[0] == "object")
    assert coarse[1] < fine[1] / 3  # far fewer lock operations
    # ...bought with more blocking (coarse locks cover more, held longer).
    assert coarse[3] >= fine[3] * 0.5


def test_e13_dynamic_primary_availability(benchmark):
    rows = []

    def run():
        for policy in ("static", "dynamic_linear"):
            cluster = ClusterBuilder(
                n_sites=5, db_size=40, seed=97, strategy="rectable",
                gcs_config=GCSConfig(primary_policy=policy),
            ).build()
            cluster.start()
            assert cluster.await_all_active(timeout=10)
            load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                         reads_per_txn=1,
                                                         writes_per_txn=2))
            load.start()
            cluster.run_for(0.5)
            cluster.partition([["S3", "S4", "S5"], ["S1", "S2"]])
            cluster.run_for(1.0)
            commits_mid = len(load.committed())
            cluster.partition([["S3", "S4"], ["S5"], ["S1", "S2"]])
            cluster.run_for(1.5)
            load.stop()
            cluster.settle(0.5)
            available = cluster.nodes["S3"].status is SiteStatus.ACTIVE
            rows.append([
                policy, available,
                len(load.committed()) - commits_mid,
                len(load.committed()),
            ])
        return rows

    once(benchmark, run)
    print_table(
        "E13 — availability after a shrinking primary chain (5 -> 3 -> 2 sites)",
        ["primary policy", "processing after 2nd split",
         "commits after 2nd split", "total commits"],
        rows,
    )
    static = next(r for r in rows if r[0] == "static")
    dynamic = next(r for r in rows if r[0] == "dynamic_linear")
    assert not static[1] and dynamic[1]
    assert dynamic[2] > static[2]
