"""E2 — Figure 2: the same cascading schedule under EVS (section 5.2).

The paper's claim: EVS *encapsulates* reconfiguration — the notion of
up-to-date member becomes structural (membership of the primary
subview), no explicit status announcements are needed, and every site
realizes locally who can process transactions and who is being brought
up to date.
"""

from benchmarks.conftest import once, print_table
from repro.scenarios import run_figure1_scenario


def test_figure2_evs_encapsulation(benchmark):
    report = once(benchmark, run_figure1_scenario, mode="evs", strategy="rectable", seed=17)
    assert report.completed
    print_table(
        "E2 / Figure 2 — same schedule, Enriched View Synchrony",
        ["metric", "value"],
        [
            ["completed", report.completed],
            ["virtual duration (s)", report.duration],
            ["commits", report.commits],
            ["transfers started", report.transfers_started],
            ["Subview-SetMerge events", report.svs_merges],
            ["SubviewMerge events", report.sv_merges],
            ["up-to-date announcements", report.announcements],
        ],
    )
    assert report.announcements == 0  # structural: nothing to announce
    assert report.svs_merges >= 1 and report.sv_merges >= 1


def test_vs_vs_evs_comparison(benchmark):
    rows = []

    def run_both():
        for mode in ("vs", "evs"):
            report = run_figure1_scenario(mode=mode, strategy="rectable", seed=23)
            rows.append([
                mode, report.completed, report.duration, report.commits,
                report.announcements, report.svs_merges, report.sv_merges,
                report.coordination_events(),
            ])
        return rows

    once(benchmark, run_both)
    print_table(
        "E2b — VS vs EVS on the identical fault schedule",
        ["mode", "completed", "duration", "commits",
         "announcements", "svs-merges", "sv-merges", "coordination"],
        rows,
    )
    vs_row = next(r for r in rows if r[0] == "vs")
    evs_row = next(r for r in rows if r[0] == "evs")
    assert vs_row[1] and evs_row[1]
    # The mechanisms are disjoint: VS announces, EVS merges.
    assert vs_row[4] > 0 and vs_row[5] == 0
    assert evs_row[4] == 0 and evs_row[5] > 0
