"""E7 — the interference microscope: how much does each strategy delay
concurrent transaction processing at the peer during the transfer?

Expected ordering (sections 4.3-4.7): gcs_level (whole DB locked for the
whole transfer) >> full > version_check >= rectable > lazy > log_filter
(multiversion, ~zero blocking).
"""

from benchmarks.conftest import once, print_table
from repro import NodeConfig
from repro.scenarios import run_recovery_experiment

STRATEGIES = ("gcs_level", "full", "version_check", "rectable", "lazy", "log_filter")


def test_peer_interference_by_strategy(benchmark):
    rows = []

    def sweep():
        for strategy in STRATEGIES:
            report = run_recovery_experiment(
                strategy=strategy, db_size=600, downtime=0.5,
                arrival_rate=150.0, seed=59,
                node_config=NodeConfig(transfer_obj_time=0.002, transfer_batch_size=30),
                rejoin_timeout=120.0,
            )
            rows.append([
                strategy, report.completed,
                report.extra["recovery_time"],
                report.extra["lock_wait_total"],
                int(report.extra["throughput_dip"]),
                report.extra["p95_latency"],
            ])
        return rows

    once(benchmark, sweep)
    print_table(
        "E7 — peer-side interference during a slow transfer (db=600)",
        ["strategy", "ok", "recovery time", "total lock wait (s)",
         "worst 100ms bucket (commits)", "p95 latency"],
        rows,
    )
    assert all(r[1] for r in rows)
    wait = {r[0]: r[3] for r in rows}
    # The rejected GCS-level design shows the worst blocking of all.
    assert wait["gcs_level"] >= wait["rectable"]
    assert wait["gcs_level"] >= wait["log_filter"]
    # The multiversion strategy is the least intrusive lock-wise.
    assert wait["log_filter"] <= min(wait["full"], wait["gcs_level"])
    # Filtered locking beats whole-database locking.
    assert wait["rectable"] <= wait["full"] * 1.5
