"""E5 — recovery behaviour vs transaction throughput.

Expected shape (section 4.7): under higher load the *eager* strategies
make the joiner enqueue (and later replay) more and more transaction
messages — "the joining site might not be able to store all transaction
messages delivered during the data transfer, or might not be able to
apply them fast enough" — while the lazy strategy keeps the enqueued
window small (only the last round is synchronized).
"""

from benchmarks.conftest import once, print_table
from repro import NodeConfig
from repro.scenarios import run_recovery_experiment

RATES = (50.0, 150.0, 300.0)


def test_enqueue_backlog_vs_rate(benchmark):
    rows = []

    def sweep():
        for strategy in ("full", "rectable", "lazy"):
            for rate in RATES:
                report = run_recovery_experiment(
                    strategy=strategy, db_size=400, downtime=0.8,
                    arrival_rate=rate, seed=47,
                    node_config=NodeConfig(transfer_obj_time=0.001),
                )
                rows.append([
                    strategy, rate, report.completed,
                    int(report.extra["enqueue_high_watermark"]),
                    report.replayed,
                    report.extra["recovery_time"],
                ])
        return rows

    once(benchmark, sweep)
    print_table(
        "E5 — joiner backlog vs offered load (db=400, downtime 0.8s)",
        ["strategy", "txn/s", "ok", "enqueue high-water", "replayed", "recovery time"],
        rows,
    )
    assert all(r[2] for r in rows)

    def backlog(strategy, rate):
        return next(r[3] for r in rows if r[0] == strategy and r[1] == rate)

    # Eager backlog grows with the rate; lazy stays small at every rate.
    assert backlog("full", 300.0) > backlog("full", 50.0)
    for rate in RATES:
        assert backlog("lazy", rate) <= backlog("full", rate)
    assert backlog("lazy", 300.0) < backlog("full", 300.0) / 2
