"""E5 — recovery behaviour vs transaction throughput.

Expected shape (section 4.7): under higher load the *eager* strategies
make the joiner enqueue (and later replay) more and more transaction
messages — "the joining site might not be able to store all transaction
messages delivered during the data transfer, or might not be able to
apply them fast enough" — while the lazy strategy keeps the enqueued
window small (only the last round is synchronized).

The parameter grid lives in ``repro.fleet.SWEEPS["throughput"]`` — the
same cells ``python -m repro sweep --study throughput`` runs in
parallel — so the benchmark table and the sweep fleet can never drift
apart.
"""

from benchmarks.conftest import once, print_table
from repro.fleet import SWEEPS, recovery_kwargs
from repro.scenarios import run_recovery_experiment

STUDY = SWEEPS["throughput"]
RATES = tuple(dict.fromkeys(p["arrival_rate"] for _, p in STUDY.grid))


def test_enqueue_backlog_vs_rate(benchmark):
    rows = []

    def sweep():
        for _key, params in STUDY.grid:
            report = run_recovery_experiment(**recovery_kwargs(params))
            rows.append([
                params["strategy"], params["arrival_rate"], report.completed,
                int(report.extra["enqueue_high_watermark"]),
                report.replayed,
                report.extra["recovery_time"],
            ])
        return rows

    once(benchmark, sweep)
    print_table(
        STUDY.title,
        ["strategy", "txn/s", "ok", "enqueue high-water", "replayed", "recovery time"],
        rows,
    )
    assert all(r[2] for r in rows)

    def backlog(strategy, rate):
        return next(r[3] for r in rows if r[0] == strategy and r[1] == rate)

    # Eager backlog grows with the rate; lazy stays small at every rate.
    assert backlog("full", 300.0) > backlog("full", 50.0)
    for rate in RATES:
        assert backlog("lazy", rate) <= backlog("full", rate)
    assert backlog("lazy", 300.0) < backlog("full", 300.0) / 2
