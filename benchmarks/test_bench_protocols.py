"""E14 — certification (section 2.2) vs conservative replica control.

The paper's protocol aborts stale optimistic readers via the version
check; the conservative alternative executes reads at delivery time in
total order, never aborting but making reads wait behind earlier
writers.  Two effects to measure:

* certification's abort rate grows with contention (conservative: zero);
* conservative *reads* inherit the write-phase latency of every earlier
  conflicting writer, which certification's local read phase avoids —
  visible as soon as write phases are slow.
"""

from benchmarks.conftest import once, print_table
from repro import LoadGenerator, NodeConfig, WorkloadConfig
from repro.workload.metrics import summarize_latencies
from tests.conftest import quick_cluster

#: Database sizes controlling the conflict probability of 2r+2w txns.
CONTENTION = ((400, "low"), (40, "medium"), (6, "high"))


def test_certification_vs_conservative(benchmark):
    rows = []

    def run():
        for db_size, label in CONTENTION:
            for protocol in ("certification", "conservative"):
                cluster = quick_cluster(
                    db_size=db_size, seed=61,
                    node_config=NodeConfig(protocol=protocol),
                )
                load = LoadGenerator(cluster, WorkloadConfig(
                    arrival_rate=200, reads_per_txn=2, writes_per_txn=2))
                load.start()
                cluster.run_for(1.5)
                load.stop()
                cluster.settle(1.0)
                cluster.check()
                latency = summarize_latencies(load.latencies())
                rows.append([
                    label, protocol, len(load.committed()),
                    round(load.abort_rate(), 3),
                    latency.mean * 1000, latency.p95 * 1000,
                ])
        return rows

    once(benchmark, run)
    print_table(
        "E14 — replica control schemes vs contention (200 txn/s, 2r+2w)",
        ["contention", "protocol", "commits", "abort rate",
         "mean latency (ms)", "p95 (ms)"],
        rows,
    )

    def cell(label, protocol, index):
        return next(r[index] for r in rows if r[0] == label and r[1] == protocol)

    # Conservative never aborts at any contention level.
    for _, label in CONTENTION:
        assert cell(label, "conservative", 3) == 0.0
    # Certification's abort rate grows with contention...
    assert cell("high", "certification", 3) > cell("low", "certification", 3)
    assert cell("high", "certification", 3) > 0.1
    # ...but at high contention it still commits at least as much as the
    # conservative scheme loses to read-waiting (both remain functional).
    assert cell("high", "conservative", 2) > 0


def test_conservative_reads_wait_behind_slow_writers(benchmark):
    rows = []

    def run():
        for protocol in ("certification", "conservative"):
            cluster = quick_cluster(
                db_size=8, seed=63,
                node_config=NodeConfig(protocol=protocol, write_op_time=0.01),
            )
            load = LoadGenerator(cluster, WorkloadConfig(
                arrival_rate=120, reads_per_txn=2, writes_per_txn=1))
            load.start()
            cluster.run_for(1.5)
            load.stop()
            cluster.settle(2.0)
            cluster.check()
            latency = summarize_latencies(load.latencies())
            rows.append([protocol, len(load.committed()),
                         round(load.abort_rate(), 3),
                         latency.mean * 1000, latency.p95 * 1000])
        return rows

    once(benchmark, run)
    print_table(
        "E14b — end-to-end latency with slow (10ms) write phases, hot 8-object db",
        ["protocol", "commits", "abort rate", "mean latency (ms)", "p95 (ms)"],
        rows,
    )
    certification = next(r for r in rows if r[0] == "certification")
    conservative = next(r for r in rows if r[0] == "conservative")
    # End-to-end latencies converge (certification's local reads also
    # wait under 2PL); the differentiator is the abort rate.
    assert certification[2] > 0 and conservative[2] == 0
    assert conservative[1] >= certification[1]  # no work lost to aborts


def test_read_result_availability(benchmark):
    """Certification's local read phase hands the client its read values
    *before* the multicast (one lock wait, no network round), while the
    conservative scheme cannot read until delivery.  For interactive
    read-mostly clients this is the latency that matters."""
    rows = []

    def run():
        for protocol in ("certification", "conservative"):
            cluster = quick_cluster(db_size=50, seed=67,
                                    node_config=NodeConfig(protocol=protocol))
            waits = []
            for i in range(30):
                txn = cluster.submit_via("S1", [f"obj{i}"], {})
                cluster.settle(0.05)
                assert txn.committed
                if protocol == "certification":
                    waits.append(txn.sent_at - txn.submitted_at)
                else:
                    waits.append(txn.finished_at - txn.submitted_at)
            cluster.check()
            rows.append([protocol, sum(waits) / len(waits) * 1000])
        return rows

    once(benchmark, run)
    print_table(
        "E14c — time until a read-only client holds its values",
        ["protocol", "mean read-result latency (ms)"],
        rows,
    )
    certification = next(r for r in rows if r[0] == "certification")
    conservative = next(r for r in rows if r[0] == "conservative")
    assert certification[1] < conservative[1]
