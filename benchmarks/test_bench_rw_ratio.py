"""E6 — recovery behaviour vs the workload's read/write ratio.

Expected shape: transfer read locks conflict only with writers, so
write-heavy workloads suffer more interference from lock-holding
strategies (full/version-check) and produce a larger changed set; a
read-heavy workload barely notices the transfer.
"""

from benchmarks.conftest import once, print_table
from repro import NodeConfig
from repro.scenarios import run_recovery_experiment

# (reads, writes) per transaction at a fixed total of 4 operations.
MIXES = ((4, 0), (3, 1), (2, 2), (0, 4))


def test_interference_vs_rw_ratio(benchmark):
    rows = []

    def sweep():
        for strategy in ("full", "log_filter"):
            for reads, writes in MIXES:
                report = run_recovery_experiment(
                    strategy=strategy, db_size=300, downtime=0.5,
                    arrival_rate=150.0, reads_per_txn=reads, writes_per_txn=writes,
                    seed=53, node_config=NodeConfig(transfer_obj_time=0.001),
                )
                rows.append([
                    strategy, f"{reads}r/{writes}w", report.completed,
                    int(report.extra["objects_sent"]),
                    report.extra["lock_wait_total"],
                    report.extra["mean_latency"],
                ])
        return rows

    once(benchmark, sweep)
    print_table(
        "E6 — read/write mix vs transfer interference (db=300)",
        ["strategy", "mix", "ok", "objects sent", "total lock wait (s)", "mean latency"],
        rows,
    )
    assert all(r[2] for r in rows)

    def wait(strategy, mix):
        return next(r[4] for r in rows if r[0] == strategy and r[1] == mix)

    def sent(strategy, mix):
        return next(r[3] for r in rows if r[0] == strategy and r[1] == mix)

    # Write-heavy load suffers more lock waiting under the lock-holding
    # full transfer than read-only load does.
    assert wait("full", "0r/4w") > wait("full", "4r/0w")
    # A read-only workload changes nothing: filtered transfer is empty.
    assert sent("log_filter", "4r/0w") == 0
    # The multiversion strategy interferes less than the lock-holding one
    # under the write-heavy mix.
    assert wait("log_filter", "0r/4w") <= wait("full", "0r/4w")
