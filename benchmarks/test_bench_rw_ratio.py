"""E6 — recovery behaviour vs the workload's read/write ratio.

Expected shape: transfer read locks conflict only with writers, so
write-heavy workloads suffer more interference from lock-holding
strategies (full/version-check) and produce a larger changed set; a
read-heavy workload barely notices the transfer.

The parameter grid lives in ``repro.fleet.SWEEPS["rw_ratio"]`` — the
same cells ``python -m repro sweep --study rw_ratio`` runs in parallel —
so the benchmark table and the sweep fleet can never drift apart.
"""

from benchmarks.conftest import once, print_table
from repro.fleet import SWEEPS, recovery_kwargs
from repro.scenarios import run_recovery_experiment

STUDY = SWEEPS["rw_ratio"]


def _mix(params):
    return f"{params['reads_per_txn']}r/{params['writes_per_txn']}w"


def test_interference_vs_rw_ratio(benchmark):
    rows = []

    def sweep():
        for _key, params in STUDY.grid:
            report = run_recovery_experiment(**recovery_kwargs(params))
            rows.append([
                params["strategy"], _mix(params), report.completed,
                int(report.extra["objects_sent"]),
                report.extra["lock_wait_total"],
                report.extra["mean_latency"],
            ])
        return rows

    once(benchmark, sweep)
    print_table(
        STUDY.title,
        ["strategy", "mix", "ok", "objects sent", "total lock wait (s)", "mean latency"],
        rows,
    )
    assert all(r[2] for r in rows)

    def wait(strategy, mix):
        return next(r[4] for r in rows if r[0] == strategy and r[1] == mix)

    def sent(strategy, mix):
        return next(r[3] for r in rows if r[0] == strategy and r[1] == mix)

    # Write-heavy load suffers more lock waiting under the lock-holding
    # full transfer than read-only load does.
    assert wait("full", "0r/4w") > wait("full", "4r/0w")
    # A read-only workload changes nothing: filtered transfer is empty.
    assert sent("log_filter", "4r/0w") == 0
    # The multiversion strategy interferes less than the lock-holding one
    # under the write-heavy mix.
    assert wait("log_filter", "0r/4w") <= wait("full", "0r/4w")
