"""E8 — lazy transfer internals (section 4.7).

Measures the round structure: how the last-round threshold trades the
number of rounds against the size of the final synchronized window, and
verifies that peer fail-over *resumes* instead of restarting.
"""

from benchmarks.conftest import once, print_table
from repro import LazyTransferStrategy, LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus
from repro.scenarios import run_recovery_experiment
from tests.conftest import quick_cluster


def test_threshold_sweep(benchmark):
    rows = []

    def sweep():
        for threshold in (5, 20, 80):
            strategy = LazyTransferStrategy(round_threshold=threshold, max_rounds=8)
            report = run_recovery_experiment(
                strategy=strategy, db_size=500, downtime=1.0,
                arrival_rate=200.0, seed=61,
                node_config=NodeConfig(transfer_obj_time=0.001),
            )
            rows.append([
                threshold, report.completed,
                int(report.extra["objects_sent"]),
                int(report.extra["enqueue_high_watermark"]),
                report.replayed,
                report.extra["recovery_time"],
            ])
        return rows

    once(benchmark, sweep)
    print_table(
        "E8 — lazy transfer: last-round threshold sweep (db=500, 200 txn/s)",
        ["threshold", "ok", "objects sent", "enqueue high-water", "replayed",
         "recovery time"],
        rows,
    )
    assert all(r[1] for r in rows)
    # Higher thresholds end the rounds earlier: fewer objects re-sent,
    # but a larger synchronized window (more enqueued messages).
    assert rows[-1][3] >= rows[0][3] - 2


def test_failover_resume_vs_restart(benchmark):
    """The fail-over property: a replacement peer continues from the
    joiner's reported round boundary (compare with 'full', which must
    restart from scratch)."""
    rows = []

    def run():
        for strategy_name, strategy in (
            ("lazy", "lazy"),
            ("full", "full"),
        ):
            node_config = NodeConfig(transfer_obj_time=0.002, transfer_batch_size=20)
            cluster = quick_cluster(n_sites=5, db_size=300, strategy=strategy,
                                    seed=5, node_config=node_config)
            load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                         reads_per_txn=1, writes_per_txn=2))
            load.start()
            cluster.run_for(0.5)
            cluster.crash("S5")
            cluster.run_for(0.5)
            cluster.recover("S5")

            def transfer_running():
                return any(n.alive and n.reconfig.sessions_out.get("S5")
                           for n in cluster.nodes.values())

            assert cluster.await_condition(transfer_running, timeout=10)
            peer = next(s for s, n in cluster.nodes.items()
                        if n.alive and n.reconfig.sessions_out.get("S5"))
            cluster.run_for(0.15)
            received_before_failover = cluster.nodes["S5"].reconfig.objects_received_total
            cluster.crash(peer)
            ok = cluster.await_condition(
                lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=60
            )
            load.stop()
            cluster.settle(0.5)
            total = cluster.nodes["S5"].reconfig.objects_received_total
            rows.append([strategy_name, ok, received_before_failover, total,
                         total - received_before_failover])
            cluster.check()
        return rows

    once(benchmark, run)
    print_table(
        "E8b — peer fail-over: resume (lazy) vs restart (full), db=300",
        ["strategy", "ok", "objects before fail-over", "objects total",
         "objects after fail-over"],
        rows,
    )
    lazy_row = next(r for r in rows if r[0] == "lazy")
    full_row = next(r for r in rows if r[0] == "full")
    assert lazy_row[1] and full_row[1]
    # Full restarts: the replacement sends a whole copy again.
    assert full_row[4] >= 300
    # Lazy resumes: far less than a whole copy after fail-over.
    assert lazy_row[4] < full_row[4]
