"""E9 — ablations of the paper's design decisions.

(a) RecTable maintenance overhead during normal processing (section 4.5
    estimates it to be small and asynchronous);
(b) GCS-level whole-database transfer (section 4.1) vs database-level
    strategies — the alternative the paper rejects;
(c) uniform (safe) vs plain reliable delivery — section 2.3's atomicity
    argument.
"""

from benchmarks.conftest import once, print_table
from repro import ClusterBuilder, LoadGenerator, NodeConfig, WorkloadConfig
from repro.gcs.config import GCSConfig
from repro.scenarios import run_recovery_experiment
from tests.conftest import quick_cluster, run_load


def test_rectable_maintenance_overhead(benchmark):
    """E9a: RecTable registrations are queued at commit and applied by a
    background task; measure the bookkeeping volume per committed txn."""
    rows = []

    def run():
        cluster = quick_cluster(db_size=200, strategy="rectable", seed=67)
        load = run_load(cluster, duration=2.0, rate=200, writes=2)
        for site in cluster.universe:
            table = cluster.nodes[site].db.rectable
            commits = cluster.nodes[site].db.commits
            rows.append([
                site, commits, table.registrations, table.flushes,
                round(table.registrations / max(commits, 1), 2), len(table),
            ])
        cluster.check()
        return rows

    once(benchmark, run)
    print_table(
        "E9a — RecTable maintenance during normal processing (2s @ 200 txn/s)",
        ["site", "commits", "registrations", "background flushes",
         "registrations/commit", "table size"],
        rows,
    )
    # One registration per write; writes/txn = 2, so the ratio is ~2 and
    # the table is bounded by the database size.
    for row in rows:
        assert row[4] <= 2.5
        assert row[5] <= 200


def test_gcs_level_baseline_vs_database_level(benchmark):
    """E9b: the section-4.1 alternative ships the whole database under a
    transfer-long database lock; compare against RecTable."""
    rows = []

    def run():
        for strategy in ("gcs_level", "rectable"):
            report = run_recovery_experiment(
                strategy=strategy, db_size=500, downtime=0.3,
                arrival_rate=150.0, seed=71,
                node_config=NodeConfig(transfer_obj_time=0.002),
                rejoin_timeout=120.0,
            )
            rows.append([
                strategy, report.completed,
                int(report.extra["objects_sent"]),
                report.extra["recovery_time"],
                report.extra["lock_wait_total"],
            ])
        return rows

    once(benchmark, run)
    print_table(
        "E9b — GCS-level transfer (section 4.1 baseline) vs RecTable",
        ["strategy", "ok", "objects sent", "recovery time", "total lock wait (s)"],
        rows,
    )
    gcs = next(r for r in rows if r[0] == "gcs_level")
    rectable = next(r for r in rows if r[0] == "rectable")
    assert gcs[1] and rectable[1]
    assert gcs[2] >= 500  # always the whole database
    assert rectable[2] < gcs[2] / 3  # only the changed part
    assert rectable[4] < gcs[4]  # and far less blocking


def test_uniform_vs_reliable_delivery(benchmark):
    """E9c: with plain reliable delivery an isolated sequencer can commit
    a transaction the surviving primary never received; uniform (safe)
    delivery makes that impossible."""
    rows = []

    def run_one(uniform: bool):
        cluster = ClusterBuilder(
            n_sites=3, db_size=10, seed=3, strategy="version_check",
            gcs_config=GCSConfig(uniform=uniform),
            node_config=NodeConfig(write_op_time=0.0),
        ).build()
        cluster.start()
        assert cluster.await_all_active(timeout=10)
        violations = 0
        txn = cluster.nodes["S1"].submit([], {"obj0": "phantom"})
        cluster.partition([["S1"], ["S2", "S3"]])
        cluster.run_for(3.0)
        if txn.committed:
            committed_at = {e.site for e in cluster.history.events
                            if e.kind == "commit" and e.gid == txn.gid}
            if committed_at == {"S1"}:
                violations = 1
        return violations

    def run():
        for uniform in (True, False):
            violations = run_one(uniform)
            rows.append(["uniform (safe)" if uniform else "plain reliable", violations])
        return rows

    once(benchmark, run)
    print_table(
        "E9c — atomicity violations: isolated-sequencer interleaving",
        ["delivery mode", "violations"],
        rows,
    )
    assert rows[0][1] == 0  # uniform: impossible
    assert rows[1][1] == 1  # reliable: the section-2.3 anomaly
