"""Microbenchmarks of the substrates (real wall-clock, not simulated).

These are classic library microbenchmarks: how fast are the simulator
kernel, the lock manager and the total-order machinery themselves.
Useful for spotting accidental algorithmic regressions (e.g. a lock
grant scan going quadratic).
"""

from repro.db.locks import LockManager, LockMode
from repro.gcs.messages import Ack, Data
from repro.gcs.total_order import ViewTotalOrder
from repro.gcs.view import View, ViewId
from repro.sim.core import Simulator


def test_simulator_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_lock_manager_grant_release_throughput(benchmark):
    def run():
        lm = LockManager()
        for i in range(5_000):
            txn = f"T{i}"
            lm.request(txn, f"obj{i % 64}", LockMode.EXCLUSIVE)
            lm.release(txn)
        return lm.grants

    assert benchmark(run) == 5_000


def test_lock_manager_contended_queue(benchmark):
    def run():
        lm = LockManager()
        for i in range(300):
            lm.request(f"T{i}", "hot", LockMode.EXCLUSIVE)
        for i in range(300):
            lm.release(f"T{i}")
        return lm.grants

    assert benchmark(run) == 300


def test_total_order_sequencing_throughput(benchmark):
    view = View(ViewId(1, "S1"), ("S1", "S2", "S3"))

    def run():
        outbox = []
        delivered = []
        to = ViewTotalOrder(view, "S1", 0, lambda dst, m: outbox.append(m),
                            delivered.append)
        for i in range(2_000):
            to.on_data(Data(sender="S1", msg_id=i, view_id=view.view_id, payload=i))
            # every member acks immediately
            for member in view.members:
                to.on_ack(Ack(sender=member, view_id=view.view_id, highwater=i))
        return len(delivered)

    assert benchmark(run) == 2_000
