"""E10 — the creation protocol after total failures (section 3).

Measures the cost of resuming from a total failure: every site reports
its log summary, the maximum-cover site becomes the source, applies the
committed work found only in other logs, and serves everyone else.
"""

from benchmarks.conftest import once, print_table
from repro import LoadGenerator, WorkloadConfig
from tests.conftest import quick_cluster, run_load


def run_total_failure(mode: str, seed: int):
    cluster = quick_cluster(mode=mode, db_size=60, strategy="version_check",
                            seed=seed, n_sites=3)
    run_load(cluster, duration=0.6, rate=150)
    cluster.crash("S3")
    run_load(cluster, duration=0.4, rate=150)  # S1/S2 get ahead of S3
    cluster.crash("S1")
    cluster.crash("S2")
    cluster.run_for(0.3)
    crash_time = cluster.sim.now
    for site in ("S3", "S1", "S2"):  # stale site first
        cluster.recover(site)
        cluster.run_for(0.2)
    ok = cluster.await_all_active(timeout=40)
    resume_time = cluster.sim.now - crash_time
    cluster.settle(0.5)
    cluster.check()
    transfers = sum(n.reconfig.transfers_completed for n in cluster.nodes.values())
    covers = {s: cluster.nodes[s].db.cover_gid() for s in cluster.universe}
    return ok, resume_time, transfers, covers


def test_creation_protocol(benchmark):
    rows = []

    def run():
        for mode in ("vs", "evs"):
            ok, resume_time, transfers, covers = run_total_failure(mode, seed=73)
            rows.append([
                mode, ok, resume_time, transfers,
                len(set(covers.values())) == 1,
            ])
        return rows

    once(benchmark, run)
    print_table(
        "E10 — creation protocol after total failure (3 sites, staggered crash)",
        ["mode", "resumed", "resume time (s)", "transfers", "covers converged"],
        rows,
    )
    assert all(r[1] for r in rows)
    assert all(r[4] for r in rows)
