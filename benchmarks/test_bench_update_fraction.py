"""E4 — transfer strategy comparison vs fraction of the database updated
during the joiner's downtime.

Expected shape (section 4.4): "transferring the entire database will
often be highly inefficient, e.g., when the site has been down for a
very short time"; the filtered strategies transfer only the changed
part, so their cost grows with downtime while the full transfer is flat
— with a crossover as the update fraction approaches one.

The parameter grid lives in ``repro.fleet.SWEEPS["update_fraction"]`` —
the same cells ``python -m repro sweep --study update_fraction`` runs in
parallel — so the benchmark table and the sweep fleet can never drift
apart.
"""

from benchmarks.conftest import once, print_table
from repro.fleet import SWEEPS, recovery_kwargs
from repro.scenarios import run_recovery_experiment

STUDY = SWEEPS["update_fraction"]
DB_SIZE = STUDY.grid[0][1]["db_size"]


def test_transfer_cost_vs_update_fraction(benchmark):
    rows = []

    def sweep():
        for _key, params in STUDY.grid:
            report = run_recovery_experiment(**recovery_kwargs(params))
            objects = int(report.extra["objects_sent"])
            rows.append([
                params["strategy"], params["downtime"],
                round(objects / DB_SIZE, 3),
                report.completed, objects, report.extra["recovery_time"],
            ])
        return rows

    once(benchmark, sweep)
    print_table(
        STUDY.title,
        ["strategy", "downtime", "sent/db ratio", "ok", "objects sent", "recovery time"],
        rows,
    )
    assert all(r[3] for r in rows)

    def sent(strategy, downtime):
        return next(r[4] for r in rows if r[0] == strategy and r[1] == downtime)

    # Full transfer is flat in the update fraction...
    assert sent("full", 0.2) == sent("full", 3.0) == DB_SIZE
    # ...filtered strategies grow with downtime...
    for strategy in ("version_check", "rectable"):
        assert sent(strategy, 3.0) > sent(strategy, 0.2)
    # ...and for short downtime they beat full transfer by a wide margin.
    assert sent("rectable", 0.2) <= DB_SIZE / 3
