"""Shared helpers for the benchmark harness.

Every benchmark prints the table/series it regenerates (the shape the
paper's evaluation would have reported) in addition to the
pytest-benchmark wall-clock measurement of the simulated scenario.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest

from repro import scenarios
from repro.obs import collect_cluster_metrics


@pytest.fixture(autouse=True)
def verify_scenario_reports():
    """Re-verify every scenario a benchmark ran.

    Benchmarks measure; they should not each repeat the correctness
    boilerplate.  This hook collects every :class:`ScenarioReport`
    produced during the test (via the scenarios report-hook registry)
    and asserts after the fact that the scenario completed and that its
    cluster still passes the full invariant check — so a benchmark can
    never silently time a broken or unfinished run.
    """
    reports: List[scenarios.ScenarioReport] = []
    hook = scenarios.add_report_hook(reports.append)
    try:
        yield reports
    finally:
        scenarios.remove_report_hook(hook)
    for report in reports:
        assert report.completed, (
            f"benchmarked scenario did not complete: mode={report.mode} "
            f"strategy={report.strategy} notes={report.notes}"
        )
        if report.cluster is not None:
            report.cluster.check()
            # The metric snapshot is a pure pull over existing counters;
            # sanity-check it here so no benchmarked run can produce an
            # inconsistent or empty snapshot for BENCH_results.json.
            snapshot = collect_cluster_metrics(report.cluster)
            assert snapshot["sim.virtual_time"] > 0
            assert snapshot["txn.commits"] <= snapshot["txn.site_commits"]


def print_table(title: str, header: Sequence[str], rows: List[Sequence]) -> None:
    """Render a fixed-width results table to stdout."""
    widths = [len(str(h)) for h in header]
    rendered_rows = []
    for row in rows:
        rendered = [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        rendered_rows.append(rendered)
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for rendered in rendered_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))


def once(benchmark, fn, *args, **kwargs):
    """Run a scenario exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
