"""Deterministic "chaos" schedules: aggressive, overlapping fault
sequences that exercise the cascading-reconfiguration machinery harder
than any single scenario.  Every run must end with all guarantees
intact once the dust settles."""

import pytest

from repro import ClusterBuilder, LoadGenerator, NodeConfig, WorkloadConfig
from repro.reconfig.manager import elect_peer
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


class TestElectPeer:
    def test_round_robin_spread(self):
        utd = ["S1", "S2"]
        joiners = ["S3", "S4", "S5"]
        peers = [elect_peer(utd, j, joiners) for j in joiners]
        assert peers == ["S1", "S2", "S1"]

    def test_deterministic_regardless_of_order(self):
        assert elect_peer(["S2", "S1"], "S4", ["S4", "S3"]) == elect_peer(
            ["S1", "S2"], "S4", ["S3", "S4"]
        )

    def test_no_candidates(self):
        assert elect_peer([], "S3", ["S3"]) is None


def run_chaos(schedule, n_sites=5, seed=31, mode="vs", strategy="rectable",
              rate=80.0):
    cluster = quick_cluster(n_sites=n_sites, db_size=60, seed=seed,
                            strategy=strategy, mode=mode,
                            node_config=NodeConfig(transfer_obj_time=0.001))
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=rate,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    for action, arg, pause in schedule:
        if action == "crash" and cluster.nodes[arg].alive:
            cluster.crash(arg)
        elif action == "recover" and not cluster.nodes[arg].alive:
            cluster.recover(arg)
        elif action == "partition":
            cluster.partition(arg)
        elif action == "heal":
            cluster.heal()
        cluster.run_for(pause)
    # settle: everything back
    cluster.heal()
    for site in cluster.universe:
        if not cluster.nodes[site].alive:
            cluster.recover(site)
    ok = cluster.await_all_active(timeout=60)
    load.stop()
    cluster.settle(1.0)
    assert ok, {s: cluster.nodes[s].status for s in cluster.universe}
    cluster.check()
    return cluster, load


class TestChaos:
    def test_rolling_restarts(self):
        schedule = []
        for site in ("S5", "S4", "S3", "S2"):
            schedule.append(("crash", site, 0.4))
            schedule.append(("recover", site, 0.6))
        run_chaos(schedule)

    def test_overlapping_crashes(self):
        schedule = [
            ("crash", "S5", 0.2),
            ("crash", "S4", 0.4),
            ("recover", "S5", 0.2),
            ("crash", "S3", 0.3),   # S3 dies while S5 still catching up
            ("recover", "S4", 0.4),
            ("recover", "S3", 0.4),
        ]
        run_chaos(schedule)

    def test_partition_during_recovery(self):
        schedule = [
            ("crash", "S5", 0.4),
            ("recover", "S5", 0.1),  # transfer starts...
            ("partition", [["S1", "S2", "S3"], ["S4", "S5"]], 0.8),
            ("heal", None, 0.5),
        ]
        run_chaos(schedule)

    def test_crash_during_partition(self):
        schedule = [
            ("partition", [["S1", "S2", "S3"], ["S4", "S5"]], 0.4),
            ("crash", "S4", 0.4),     # minority member dies while isolated
            ("heal", None, 0.3),
            ("recover", "S4", 0.5),
        ]
        run_chaos(schedule)

    def test_flip_flopping_partitions(self):
        schedule = [
            ("partition", [["S1", "S2", "S3"], ["S4", "S5"]], 0.5),
            ("heal", None, 0.3),
            ("partition", [["S1", "S2"], ["S3", "S4", "S5"]], 0.5),
            ("heal", None, 0.3),
            ("partition", [["S1", "S4", "S5"], ["S2", "S3"]], 0.5),
            ("heal", None, 0.3),
        ]
        run_chaos(schedule)

    @pytest.mark.parametrize("strategy", ["full", "lazy", "log_filter"])
    def test_overlapping_crashes_other_strategies(self, strategy):
        schedule = [
            ("crash", "S5", 0.3),
            ("recover", "S5", 0.1),
            ("crash", "S4", 0.5),
            ("recover", "S4", 0.5),
        ]
        run_chaos(schedule, strategy=strategy)

    def test_chaos_under_evs(self):
        schedule = [
            ("crash", "S5", 0.4),
            ("recover", "S5", 0.3),
            ("partition", [["S1", "S2", "S3", "S4"], ["S5"]], 0.6),
            ("heal", None, 0.4),
        ]
        run_chaos(schedule, mode="evs")

    def test_double_failure_of_peers(self):
        """Both elected peers die in sequence during one recovery."""
        cluster = quick_cluster(n_sites=5, db_size=200, seed=33,
                                node_config=NodeConfig(transfer_obj_time=0.003,
                                                       transfer_batch_size=15))
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.4)
        cluster.crash("S5")
        cluster.run_for(0.4)
        cluster.recover("S5")
        for _ in range(2):
            def transferring():
                return any(n.alive and n.reconfig.sessions_out.get("S5")
                           for n in cluster.nodes.values())
            if not cluster.await_condition(transferring, timeout=15):
                break
            peer = next(s for s, n in cluster.nodes.items()
                        if n.alive and n.reconfig.sessions_out.get("S5"))
            cluster.run_for(0.1)
            cluster.crash(peer)
        for site in cluster.universe:
            if not cluster.nodes[site].alive:
                cluster.recover(site)
        ok = cluster.await_all_active(timeout=60)
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()
