"""Torn-WAL-tail crash faults: damage is detected via checksums at
recovery, the log is truncated at the first corrupt record, and the
site rejoins through data transfer without violating any invariant."""

import pytest

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.checkers import (
    check_decision_agreement,
    check_gid_consistency,
    check_convergence,
    check_one_copy_serializability,
)
from repro.faults.storage import TornTailFaults


def crash_with_dirty_tail(cluster, site, timeout=5.0):
    """Crash ``site`` the moment its WAL holds unflushed records (the
    only window in which a torn tail can exist), mirroring the chaos
    engine's armed-crash behaviour."""
    node = cluster.nodes[site]
    deadline = cluster.sim.now + timeout
    while cluster.sim.now < deadline:
        if node.storage.unflushed_count > 0:
            break
        cluster.run_for(0.001)
    dirty = node.storage.unflushed_count
    cluster.crash(site)
    return dirty


@pytest.mark.parametrize("corrupt", [0.0, 1.0], ids=["clean-tear", "corrupting-tear"])
def test_torn_tail_crash_recovers_and_rejoins(corrupt):
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=1234, strategy="rectable").build()
    model = TornTailFaults(tear_probability=1.0, corrupt_probability=corrupt)
    cluster.install_storage_faults(model, sites=["S3"])
    cluster.start()
    assert cluster.await_all_active(timeout=10)

    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=120, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.3)
    dirty = crash_with_dirty_tail(cluster, "S3")
    assert dirty > 0, "crash was not armed on a dirty WAL tail"
    assert model.tears == 1
    if corrupt:
        assert model.corruptions == 1

    cluster.run_for(0.5)
    cluster.recover("S3")
    assert cluster.await_all_active(timeout=20), "torn site failed to rejoin"
    cluster.run_for(0.5)
    load.stop()
    cluster.settle(2.0)

    check_gid_consistency(cluster.history)
    check_decision_agreement(cluster.history)
    check_one_copy_serializability(cluster.history)
    check_convergence(list(cluster.nodes.values()))


def test_torn_tail_never_loses_flushed_commits():
    """The write-ahead rule: a commit forces the WAL, so a torn tail can
    only ever lose in-flight work — every commit the crashed site
    acknowledged must still be present after recovery."""
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=77, strategy="rectable").build()
    model = TornTailFaults(tear_probability=1.0, corrupt_probability=1.0)
    cluster.install_storage_faults(model, sites=["S2"])
    cluster.start()
    assert cluster.await_all_active(timeout=10)

    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=120, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.4)
    node = cluster.nodes["S2"]
    committed_before = {
        event.gid for event in cluster.history.by_site.get("S2", [])
        if event.kind == "commit"
    }
    crash_with_dirty_tail(cluster, "S2")
    cluster.run_for(0.3)
    cluster.recover("S2")
    assert cluster.await_all_active(timeout=20)
    load.stop()
    cluster.settle(2.0)

    from repro.db.wal import CommitRecord

    node = cluster.nodes["S2"]  # recovery swaps in a fresh db
    recovered_commits = {
        record.gid for record in node.db.storage.records()
        if isinstance(record, CommitRecord)
    }
    # The transfer may have advanced the baseline past old commits; those
    # are subsumed, not lost.  Everything above the baseline must match.
    baseline = node.db.baseline_gid
    lost = {g for g in committed_before if g > baseline} - recovered_commits
    assert not lost, f"flushed commits lost by the torn tail: {sorted(lost)}"
    check_decision_agreement(cluster.history)
    check_convergence(list(cluster.nodes.values()))
