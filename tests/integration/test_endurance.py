"""Integration: the long-horizon endurance engine (repro.endurance).

Pinned-seed regression tests: one run per churn-scenario family, the
composed storm in both delivery modes, byte-stable payload digests, the
availability floor, the sabotage self-test, and the audit/fleet/CLI
wiring.  Seeds and durations are pinned — a failure here is a behaviour
change, not flakiness.
"""

import pytest

from repro.endurance import (
    EnduranceConfig, EnduranceEngine, dump_artifacts, repro_command,
    run_endurance,
)
from repro.replication.node import NodeConfig, SiteStatus
from tests.conftest import quick_cluster, run_load


class TestSegmentFamilies:
    """Each scenario family passes on its own under a pinned seed."""

    @pytest.mark.parametrize("family", ["rolling", "storm", "churn",
                                        "stabilize"])
    def test_single_family_endurance(self, family):
        report = run_endurance(0, duration=4.0, segments=(family,))
        assert report.ok, report.error
        assert report.sweeps >= 1

    def test_storm_interrupts_transfers(self):
        report = run_endurance(2, duration=6.0, segments=("storm",))
        assert report.ok, report.error
        assert report.partition_cycles >= 2

    def test_stabilize_corrupts_and_recovers(self):
        report = run_endurance(1, duration=6.0, segments=("stabilize",))
        assert report.ok, report.error
        assert report.stabilize_starts >= 1


class TestComposedStorm:
    @pytest.mark.parametrize("mode", ["vs", "evs"])
    def test_composed_run_passes_with_availability(self, mode):
        report = run_endurance(0, duration=6.0, mode=mode)
        assert report.ok, report.error
        assert report.sweeps >= 2
        # Availability never zero across the run: some serving bin in
        # every window is the checker's job; here assert the aggregate.
        avail = report.availability()
        assert avail["bins"] > 0
        assert avail["mean_rate"] > 0

    @pytest.mark.parametrize("mode", ["vs", "evs"])
    def test_payload_digests_are_byte_stable(self, mode):
        payloads = [run_endurance(0, duration=5.0, mode=mode).payload()
                    for _ in range(2)]
        assert payloads[0] == payloads[1]
        for key in ("schedule_digest", "trace_digest",
                    "availability_digest"):
            assert len(payloads[0][key]) == 64

    def test_composed_run_per_backend(self, backend):
        """Conformance: the churn schedule passes its sweeps and the
        availability floor on every reconfiguration backend."""
        report = run_endurance(0, duration=4.0, backend=backend)
        assert report.ok, report.error
        assert report.sweeps >= 1

    def test_distinct_seeds_distinct_schedules(self):
        a = run_endurance(0, duration=5.0).payload()
        b = run_endurance(1, duration=5.0).payload()
        assert a["schedule_digest"] != b["schedule_digest"]


class TestStrategyAndBackendCoverage:
    """Pinned churn runs over the transfer strategies the composed storm
    did not previously exercise, and over the logless backend."""

    @pytest.mark.parametrize("strategy", ["gcs_level", "log_filter"])
    def test_composed_storm_with_strategy(self, strategy):
        report = run_endurance(3, duration=5.0, strategy=strategy)
        assert report.ok, report.error
        assert report.sweeps >= 1

    def test_logless_backend_composed_run(self):
        report = run_endurance(0, duration=6.0, backend="logless")
        assert report.ok, report.error
        assert report.sweeps >= 2
        avail = report.availability()
        assert avail["bins"] > 0
        assert avail["mean_rate"] > 0

    def test_logless_payload_digests_are_byte_stable(self):
        payloads = [run_endurance(0, duration=5.0,
                                  backend="logless").payload()
                    for _ in range(2)]
        assert payloads[0] == payloads[1]

    def test_repro_command_names_backend_and_strategy(self):
        config = EnduranceConfig(seed=3, duration=5.0, backend="logless",
                                 strategy="log_filter")
        command = repro_command(config)
        assert "--backend logless" in command
        assert "--strategy log_filter" in command

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EnduranceConfig(seed=0, backend="bogus").validate()


class TestSabotage:
    def test_skipped_outcome_merge_fails_the_run(self):
        """The sabotage hook proves the sweeps have teeth: a site that
        silently drops the peer's outcome table must be caught."""
        clean = run_endurance(0, duration=8.0)
        assert clean.ok, clean.error
        sabotaged = run_endurance(0, duration=8.0,
                                  sabotage_outcome_merge=True)
        assert not sabotaged.ok
        assert sabotaged.error is not None


class TestMajorityCreation:
    def test_flag_defaults_off(self):
        assert NodeConfig().creation_majority is False

    def test_majority_view_creates_when_enabled(self):
        """With creation_majority on (and uniform delivery), two of three
        recovered sites suffice — the §3 all-sites wait is waived."""
        cluster = quick_cluster(
            db_size=30, node_config=NodeConfig(creation_majority=True))
        run_load(cluster, duration=0.4)
        for site in cluster.universe:
            cluster.crash(site)
        cluster.run_for(0.3)
        cluster.recover("S1")
        cluster.recover("S2")  # majority present, S3 still down
        ok = cluster.await_condition(
            lambda: all(cluster.nodes[s].status is SiteStatus.ACTIVE
                        for s in ("S1", "S2")),
            timeout=30,
        )
        assert ok, "majority view did not run the creation protocol"
        cluster.recover("S3")
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        cluster.check()


class TestArtifacts:
    def test_dump_writes_the_full_evidence_set(self, tmp_path):
        engine = EnduranceEngine(EnduranceConfig(seed=0, duration=4.0))
        engine.run()
        written = dump_artifacts(engine, str(tmp_path))
        names = {path.rsplit("/", 1)[-1] for path in written}
        assert {"repro.txt", "schedule.txt", "availability.tsv",
                "trace.txt", "metrics.txt"} <= names
        assert {f"wal_S{i}.log" for i in range(1, 5)} <= names
        repro_text = (tmp_path / "repro.txt").read_text()
        assert "python -m repro chaos --endurance --seed 0" in repro_text
        wal_text = (tmp_path / "wal_S1.log").read_text()
        assert "durable prefix" in wal_text


class TestWiring:
    def test_audit_has_endurance_cases(self):
        from repro import audit

        endurance_ids = [cid for cid in audit.CASES
                         if audit.CASES[cid].kind == "endurance"]
        assert "endurance:vs:0" in endurance_ids
        assert "endurance:evs:0" in endurance_ids

    def test_audit_variant_replays_identically(self):
        from repro import audit

        a = audit.execute_variant("endurance:vs:0", "a", materials=False)
        b = audit.execute_variant("endurance:vs:0", "b", materials=False)
        assert a == b
        assert a["counters"]["ok"] is True

    def test_fleet_runs_seeds_in_order(self):
        from repro.fleet import run_endurance_fleet

        results = run_endurance_fleet([1, 0], duration=4.0,
                                      segments=("rolling",))
        assert list(results) == [1, 0]
        assert all(payload["ok"] for payload in results.values())

    def test_fleet_dumps_artifacts_on_failure(self, tmp_path):
        from repro.fleet import run_endurance_fleet

        results = run_endurance_fleet(
            [0], duration=8.0, sabotage_outcome_merge=True,
            artifacts_dir=str(tmp_path))
        payload = results[0]
        assert not payload["ok"]
        assert payload["artifacts"], "failed worker left no evidence"
        assert any(path.endswith("repro.txt")
                   for path in payload["artifacts"])


class TestCli:
    def test_endurance_single_run(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--endurance", "--seed", "0",
                     "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "endurance seed=0: PASS" in out
        assert "availability timeline" in out
        assert "availability floor held" in out

    def test_endurance_failure_dumps_artifacts(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["chaos", "--endurance", "--seed", "0",
                     "--duration", "8", "--sabotage-outcome-merge",
                     "--artifacts-dir", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAILURE" in err
        assert "reproduce: PYTHONPATH=src python -m repro chaos" in err
        assert (tmp_path / "seed0-vs" / "schedule.txt").exists()

    def test_endurance_fleet_table(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--endurance", "--seeds", "0,1",
                     "--duration", "4", "--segments", "rolling"]) == 0
        out = capsys.readouterr().out
        assert "schedule digest" in out
        assert "2 endurance runs" in out

    def test_bad_segment_rejected(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--endurance", "--segments", "bogus"]) == 2
        assert "unknown segment" in capsys.readouterr().err
