"""Application-level invariant tests: money conservation in a replicated
bank (read-two/write-two transfers), through contention and faults."""

import pytest

from repro import ClusterBuilder
from repro.replication.node import SiteStatus

ACCOUNTS = 12
INITIAL = 100


def make_bank(seed=12, n_sites=3, **kwargs):
    cluster = ClusterBuilder(n_sites=n_sites, db_size=ACCOUNTS, seed=seed,
                             strategy="rectable", initial_value=INITIAL,
                             **kwargs).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    return cluster


def total(node) -> int:
    return sum(node.db.store.value(f"obj{i}") for i in range(ACCOUNTS))


def submit_transfer(cluster, site, src, dst, amount):
    node = cluster.nodes[site]
    a, b = f"obj{src}", f"obj{dst}"
    balance_a = node.db.store.value(a)
    balance_b = node.db.store.value(b)
    return node.submit(reads=[a, b],
                       writes={a: balance_a - amount, b: balance_b + amount})


def run_transfers(cluster, count, settle_every=1):
    rng = cluster.sim.rng
    txns = []
    for i in range(count):
        active = cluster.active_sites()
        if not active:
            cluster.run_for(0.1)
            continue
        site = active[rng.randrange(len(active))]
        src, dst = rng.randrange(ACCOUNTS), rng.randrange(ACCOUNTS)
        if src == dst:
            continue
        txns.append(submit_transfer(cluster, site, src, dst, rng.randrange(1, 20)))
        if i % settle_every == 0:
            cluster.run_for(0.02)
    cluster.settle(1.0)
    return txns


class TestConservation:
    def test_sequential_transfers_conserve(self):
        cluster = make_bank()
        run_transfers(cluster, 60, settle_every=1)
        for site in cluster.universe:
            assert total(cluster.nodes[site]) == ACCOUNTS * INITIAL
        cluster.check()

    def test_concurrent_conflicting_transfers_conserve(self):
        """Several in-flight transfers touching the same accounts: the
        version check must abort the losers entirely (no partial money)."""
        cluster = make_bank(seed=13)
        rng = cluster.sim.rng
        for _ in range(25):
            # burst of concurrent transfers without settling in between
            for _ in range(4):
                src, dst = rng.randrange(3), rng.randrange(3)  # hot accounts
                if src == dst:
                    continue
                site = cluster.active_sites()[rng.randrange(3)]
                submit_transfer(cluster, site, src, dst, rng.randrange(1, 10))
            cluster.settle(0.1)
        cluster.settle(1.0)
        for site in cluster.universe:
            assert total(cluster.nodes[site]) == ACCOUNTS * INITIAL
        cluster.check()

    def test_conservation_across_crash_recovery(self):
        cluster = make_bank(seed=14)
        run_transfers(cluster, 30)
        cluster.crash("S3")
        run_transfers(cluster, 30)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        run_transfers(cluster, 20)
        for site in cluster.universe:
            assert total(cluster.nodes[site]) == ACCOUNTS * INITIAL
        cluster.check()

    def test_conservation_across_partition(self):
        cluster = make_bank(seed=15, n_sites=5)
        run_transfers(cluster, 20)
        cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
        run_transfers(cluster, 20)
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        run_transfers(cluster, 10)
        for site in cluster.universe:
            assert total(cluster.nodes[site]) == 12 * INITIAL
        cluster.check()

    def test_no_partial_transfers_ever(self):
        """Every committed transfer moved money atomically: replaying the
        committed history account-by-account reaches the final state."""
        cluster = make_bank(seed=16)
        run_transfers(cluster, 60)
        balances = {f"obj{i}": INITIAL for i in range(ACCOUNTS)}
        committed = {}
        for event in cluster.history.events:
            if event.kind == "commit":
                committed[event.gid] = event.message
        for gid in sorted(committed):
            for obj, value in committed[gid].write_set:
                balances[obj] = value
        node = cluster.nodes["S1"]
        for obj, value in balances.items():
            assert node.db.store.value(obj) == value
