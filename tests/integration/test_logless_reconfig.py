"""Integration: the logless reconfiguration backend and its registry.

The logless backend (docs/RECONFIG_BACKENDS.md) keeps the member
configuration as *replicated state*: a versioned ``ReplicatedConfig``
object updated by ``ConfigChange`` messages in the uniform total-order
stream, applied by a version compare-and-swap — no membership entries
in the database log.  These tests pin its observable semantics: the
CAS apply rule, bootstrap/creation/repair proposals, announcement-free
operation, flush-state re-learning, and the audit/sweep wiring.
"""

import pytest

from repro.reconfig.backends import (
    ALL_BACKEND_NAMES, backend_by_name, resolve_backend,
)
from repro.reconfig.evs_manager import EvsReconfigManager
from repro.reconfig.logless import LoglessReconfigManager, ReplicatedConfig
from repro.reconfig.manager import VsReconfigManager
from repro.replication.messages import ConfigChange
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster, run_load


class TestRegistry:
    def test_registry_names_are_pinned(self):
        assert ALL_BACKEND_NAMES == ("evs", "logless", "vs")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backend_by_name("paxos")

    def test_explicit_backend_overrides_mode(self):
        assert resolve_backend("evs", "logless").name == "logless"
        assert resolve_backend("vs", "evs").name == "evs"

    def test_mode_names_the_backend_when_unset(self):
        assert resolve_backend("vs", None).name == "vs"
        assert resolve_backend("evs", None).name == "evs"

    def test_gcs_modes(self):
        # logless replaces the reconfiguration layer, not the GCS: it
        # runs on the plain virtual-synchrony membership layer.
        assert backend_by_name("vs").gcs_mode == "vs"
        assert backend_by_name("evs").gcs_mode == "evs"
        assert backend_by_name("logless").gcs_mode == "vs"

    def test_cluster_gets_the_right_manager(self):
        expected = {"vs": VsReconfigManager, "evs": EvsReconfigManager,
                    "logless": LoglessReconfigManager}
        for name, manager_type in expected.items():
            cluster = quick_cluster(backend=name)
            assert cluster.backend_name == name
            for node in cluster.nodes.values():
                assert type(node.reconfig) is manager_type
                assert node.reconfig.backend_name == name


class TestReplicatedConfig:
    def test_bootstrap_installs_full_membership(self):
        cluster = quick_cluster(backend="logless")
        configs = {site: node.reconfig.config
                   for site, node in cluster.nodes.items()}
        assert len({(c.version, c.members) for c in configs.values()}) == 1
        config = configs["S1"]
        assert config.version >= 1
        assert config.members == tuple(sorted(cluster.universe))

    def test_crash_recover_cycle_advances_config(self):
        cluster = quick_cluster(backend="logless", db_size=30)
        v0 = cluster.nodes["S1"].reconfig.config.version
        cluster.crash("S3")
        run_load(cluster, duration=0.4)
        # Coordinator repair removed the crashed site.
        assert "S3" not in cluster.nodes["S1"].reconfig.config.members
        cluster.recover("S3")
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        configs = {(n.reconfig.config.version, n.reconfig.config.members)
                   for n in cluster.nodes.values()}
        assert len(configs) == 1, "sites disagree on the config"
        version, members = next(iter(configs))
        # At least remove + re-add beyond the bootstrap version.
        assert version >= v0 + 2
        assert members == tuple(sorted(cluster.universe))
        cluster.check()

    def test_stale_proposal_is_discarded_by_the_cas(self):
        cluster = quick_cluster(backend="logless")
        manager = cluster.nodes["S1"].reconfig
        before = manager.config
        conflicts = manager.config_conflicts
        manager.on_config_message(
            ConfigChange(proposer="S9", base_version=before.version + 5,
                         add=("S9",)),
            gseq=10_000)
        assert manager.config == before
        assert manager.config_conflicts == conflicts + 1

    def test_replace_installs_membership_wholesale(self):
        # Unit-level on a throwaway cluster: the creation path's
        # replace-proposal semantics.
        cluster = quick_cluster(backend="logless")
        manager = cluster.nodes["S1"].reconfig
        version = manager.config.version
        manager.on_config_message(
            ConfigChange(proposer="S1", base_version=version,
                         replace=("S1", "S2"), reason="creation"),
            gseq=10_001)
        assert manager.config == ReplicatedConfig(
            version=version + 1, members=("S1", "S2"))

    def test_no_up_to_date_announcements_multicast(self):
        """The backend's whole point: membership travels as ConfigChange
        state updates, never as UpToDateAnnouncement log entries."""
        cluster = quick_cluster(backend="logless", db_size=30)
        cluster.crash("S3")
        run_load(cluster, duration=0.3)
        cluster.recover("S3")
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        for node in cluster.nodes.values():
            manager = node.reconfig
            # Every "announcement" the counters report is a config
            # proposal (the counter is kept for cross-backend metrics).
            assert manager.announcements_sent == manager.config_proposals_sent
            assert manager.config_changes_applied >= 1

    def test_flush_extra_carries_the_config(self):
        cluster = quick_cluster(backend="logless")
        extra = cluster.nodes["S1"].reconfig.flush_extra()
        assert extra["config_version"] >= 1
        assert tuple(extra["config_members"]) == tuple(
            sorted(cluster.universe))
        state = cluster.nodes["S1"].flush_state()
        assert state["repl"]["config_version"] == extra["config_version"]

    def test_vs_and_evs_flush_extra_stays_empty(self):
        # Byte-identity guarantee for the pre-existing backends: the
        # refactor's hooks must add nothing to their flush state.
        for name in ("vs", "evs"):
            cluster = quick_cluster(backend=name)
            assert cluster.nodes["S1"].reconfig.flush_extra() == {}

    def test_total_failure_relearns_config_from_flush_state(self):
        cluster = quick_cluster(backend="logless", db_size=30,
                                strategy="version_check")
        run_load(cluster, duration=0.4)
        for site in ("S3", "S1", "S2"):
            cluster.crash(site)
            cluster.run_for(0.2)
        for site in ("S2", "S3", "S1"):
            cluster.recover(site)
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        configs = {(n.reconfig.config.version, n.reconfig.config.members)
                   for n in cluster.nodes.values()}
        assert len(configs) == 1
        _, members = next(iter(configs))
        assert members == tuple(sorted(cluster.universe))
        cluster.check()

    def test_repropose_limit_validated(self):
        from repro.replication.node import NodeConfig

        with pytest.raises(ValueError, match="logless_repropose_limit"):
            NodeConfig(logless_repropose_limit=0).validate()


class TestAuditAndSweepWiring:
    def test_logless_audit_cases_registered(self):
        from repro import audit

        for case_id in ("backend:logless:chaos", "backend:logless:endurance"):
            assert case_id in audit.CASES
            assert audit.CASES[case_id].params["backend"] == "logless"

    def test_logless_audit_case_replays_identically(self):
        from repro import audit

        a = audit.execute_variant("backend:logless:chaos", "a",
                                  materials=False)
        b = audit.execute_variant("backend:logless:chaos", "b",
                                  materials=False)
        assert a == b
        assert a["counters"]["ok"] is True

    def test_sabotage_makes_the_logless_audit_fail(self, monkeypatch,
                                                   tmp_path):
        """Non-vacuity: the audit must be able to fail on this backend
        (a comparator that cannot fail audits nothing)."""
        from repro import audit

        monkeypatch.setenv(audit.SABOTAGE_ENV, "1")
        outcome = audit.run_audit(["backend:logless:chaos"], jobs=1,
                                  dump_dir=str(tmp_path))
        assert not outcome.ok
        assert any(f.case_id == "backend:logless:chaos"
                   for f in outcome.failures)

    def test_e7_study_covers_all_backends_and_storms(self):
        from repro.fleet import SWEEPS

        study = SWEEPS["E7"]
        cells = {key for key, _ in study.grid}
        assert cells == {f"{backend}/storm={storm}"
                         for backend in ALL_BACKEND_NAMES
                         for storm in ("none", "partition")}
        assert "extra.abort_rate" in study.columns
        for _, params in study.grid:
            # Identical pinned storm parameters per cell: only the
            # backend differs, which is what makes E7 a fair head-to-head.
            assert params["seed"] == 23
            assert params["n_sites"] == 5

    def test_e7_partition_cell_runs(self):
        from repro.scenarios import run_recovery_experiment

        report = run_recovery_experiment(
            backend="logless", fault_storm="partition", n_sites=5,
            db_size=120, downtime=0.6, arrival_rate=100.0, seed=23)
        assert report.completed
        assert report.mode == "logless"
        assert 0.0 <= report.extra["abort_rate"] <= 1.0

    def test_fault_storm_requires_enough_sites(self):
        from repro.scenarios import run_recovery_experiment

        with pytest.raises(ValueError, match="n_sites >= 5"):
            run_recovery_experiment(fault_storm="partition", n_sites=3)

    def test_differential_runner_gates_on_invariants(self):
        from repro.differential import run_differential

        report = run_differential([9], backends=("evs", "logless"),
                                  duration=1.0, clients=4)
        assert report.ok, report.failures
        rendered = report.render()
        assert "PASS" in rendered and "FAIL" not in rendered
        for backend in ("evs", "logless"):
            assert report.metric(9, backend, "commits") > 0

    def test_differential_runner_rejects_bad_input(self):
        from repro.differential import run_differential

        with pytest.raises(ValueError, match="unknown backend"):
            run_differential([1], backends=("bogus",))
        with pytest.raises(ValueError, match="kind"):
            run_differential([1], kind="bench")
