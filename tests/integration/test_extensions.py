"""Integration tests for the paper's extension features:

* serial vs concurrent application of delivered transactions (§2.2);
* coarse-granularity transfer locks (§4.3);
* per-partition lazy round 1 with partition-level fail-over (§4.7);
* reconciliation of phantom commits (§2.3);
* the dynamic primary-view definition (§2.1) driving availability.
"""

import pytest

from repro import (
    ClusterBuilder,
    FullTransferStrategy,
    LoadGenerator,
    NodeConfig,
    WorkloadConfig,
)
from repro.gcs.config import GCSConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster, run_load


class TestSerialProcessing:
    def test_serial_outcomes_match_concurrent(self):
        """Same seeds, same workload: commit/abort decisions and final
        state must be identical — only timing differs."""
        digests = {}
        for serial in (False, True):
            nc = NodeConfig(serial_processing=serial)
            cluster = quick_cluster(db_size=60, seed=91, node_config=nc)
            load = run_load(cluster, duration=1.0, rate=150)
            cluster.settle(1.0)
            cluster.check()
            digests[serial] = cluster.nodes["S1"].db.store.content_digest()
            assert not load.unresolved()
        assert digests[False] == digests[True]

    def test_serial_latency_suffers_under_load(self):
        from repro.workload.metrics import summarize_latencies

        latencies = {}
        for serial in (False, True):
            nc = NodeConfig(write_op_time=0.003, serial_processing=serial)
            cluster = quick_cluster(db_size=300, seed=93, node_config=nc)
            load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=250,
                                                         reads_per_txn=0,
                                                         writes_per_txn=2))
            load.start()
            cluster.run_for(1.5)
            load.stop()
            cluster.settle(5.0)
            latencies[serial] = summarize_latencies(load.latencies()).p95
            cluster.check()
        assert latencies[True] > latencies[False] * 2

    def test_serial_mode_recovers_too(self):
        nc = NodeConfig(serial_processing=True)
        cluster = quick_cluster(db_size=60, seed=95, node_config=nc)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()


class TestCoarseGranularity:
    def test_partition_granularity_transfer_correct(self):
        nc = NodeConfig(partition_count=8, transfer_obj_time=0.001)
        cluster = quick_cluster(
            db_size=200, seed=81,
            strategy=FullTransferStrategy(granularity="partition"),
            node_config=nc,
        )
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(0.5)
        assert ok
        cluster.check()

    def test_partition_granularity_uses_fewer_transfer_locks(self):
        grants = {}
        for granularity in ("object", "partition"):
            nc = NodeConfig(partition_count=8, transfer_obj_time=0.0005)
            cluster = quick_cluster(
                db_size=200, seed=83,
                strategy=FullTransferStrategy(granularity=granularity),
                node_config=nc,
            )
            cluster.crash("S3")
            cluster.submit_via("S1", [], {"obj0": 1})
            cluster.settle(0.3)
            before = {s: cluster.nodes[s].db.locks.grants for s in cluster.universe}
            cluster.recover("S3")
            assert cluster.await_condition(
                lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
            )
            peer = max(
                cluster.universe,
                key=lambda s: cluster.nodes[s].reconfig.transfers_started,
            )
            grants[granularity] = cluster.nodes[peer].db.locks.grants - before[peer]
            cluster.check()
        # 8 partition locks instead of 200 object locks (plus noise).
        assert grants["partition"] < grants["object"] / 3

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            FullTransferStrategy(granularity="page")


class TestPartitionedLazyFailover:
    def test_done_partitions_skipped_on_resume(self):
        nc = NodeConfig(partition_count=6, transfer_obj_time=0.002,
                        transfer_batch_size=20)
        cluster = quick_cluster(n_sites=5, db_size=300, seed=5, strategy="lazy",
                                node_config=nc)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")

        def transfer_running():
            return any(n.alive and n.reconfig.sessions_out.get("S5")
                       for n in cluster.nodes.values())

        assert cluster.await_condition(transfer_running, timeout=10)
        peer = next(s for s, n in cluster.nodes.items()
                    if n.alive and n.reconfig.sessions_out.get("S5"))
        assert cluster.await_condition(
            lambda: len(cluster.nodes["S5"].reconfig._done_partitions) >= 2, timeout=20
        )
        received_before = cluster.nodes["S5"].reconfig.objects_received_total
        cluster.crash(peer)
        ok = cluster.await_condition(
            lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=60
        )
        load.stop()
        cluster.settle(0.5)
        assert ok
        cluster.check()
        after = cluster.nodes["S5"].reconfig.objects_received_total - received_before
        assert after < 300  # strictly less than a from-scratch full copy


class TestReconciliation:
    def build(self, uniform=False):
        cluster = ClusterBuilder(
            n_sites=3, db_size=10, seed=3, strategy="version_check",
            gcs_config=GCSConfig(uniform=uniform),
            node_config=NodeConfig(write_op_time=0.0),
        ).build()
        cluster.start()
        assert cluster.await_all_active(timeout=10)
        return cluster

    def phantom_commit(self, cluster):
        txn = cluster.nodes["S1"].submit([], {"obj0": "phantom"})
        cluster.partition([["S1"], ["S2", "S3"]])
        cluster.run_for(3.0)
        return txn

    def test_phantom_rolled_back_on_rejoin(self):
        cluster = self.build(uniform=False)
        txn = self.phantom_commit(cluster)
        assert txn.committed
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        assert cluster.nodes["S1"].db.store.value("obj0") == 0
        digests = {s: cluster.nodes[s].db.store.content_digest()
                   for s in cluster.universe}
        assert len(set(digests.values())) == 1

    def test_reconciliation_survives_crash(self):
        cluster = self.build(uniform=False)
        self.phantom_commit(cluster)
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        cluster.crash("S1")
        cluster.run_for(0.3)
        cluster.recover("S1")
        assert cluster.await_all_active(timeout=30)
        assert cluster.nodes["S1"].db.store.value("obj0") == 0

    def test_uniform_mode_skips_the_gate(self):
        """Under safe delivery the suspect list is empty by construction."""
        cluster = self.build(uniform=True)
        txn = self.phantom_commit(cluster)
        assert not txn.committed  # could not even commit
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        cluster.check()

    def test_legitimate_commits_not_rolled_back(self):
        cluster = self.build(uniform=False)
        txn = cluster.nodes["S1"].submit([], {"obj5": "legit"})
        cluster.settle(0.3)
        assert txn.committed
        cluster.crash("S1")
        cluster.run_for(0.5)
        cluster.recover("S1")
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.3)
        assert cluster.nodes["S1"].db.store.value("obj5") == "legit"


class TestDynamicPrimaryAvailability:
    def test_dynamic_policy_keeps_shrunken_cluster_available(self):
        """5 sites; {S3,S4,S5} primary after a split; then S5 leaves.
        Static policy: processing stops (2 of 5).  Dynamic-linear: the
        {S3,S4} remnant is a majority of the previous primary and keeps
        committing."""
        outcomes = {}
        for policy in ("static", "dynamic_linear"):
            cluster = ClusterBuilder(
                n_sites=5, db_size=40, seed=97, strategy="rectable",
                gcs_config=GCSConfig(primary_policy=policy),
            ).build()
            cluster.start()
            assert cluster.await_all_active(timeout=10)
            cluster.partition([["S3", "S4", "S5"], ["S1", "S2"]])
            cluster.run_for(1.5)
            assert cluster.nodes["S3"].status is SiteStatus.ACTIVE
            cluster.partition([["S3", "S4"], ["S5"], ["S1", "S2"]])
            cluster.run_for(1.5)
            outcomes[policy] = cluster.nodes["S3"].status
            if outcomes[policy] is SiteStatus.ACTIVE:
                txn = cluster.submit_via("S3", [], {"obj0": "still-alive"})
                cluster.settle(0.3)
                assert txn.committed
        assert outcomes["static"] is not SiteStatus.ACTIVE
        assert outcomes["dynamic_linear"] is SiteStatus.ACTIVE
