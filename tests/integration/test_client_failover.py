"""End-to-end client sessions under chaos: exactly-once failover.

Three layers of evidence:

* the pinned chaos regression seeds re-run in client mode (closed-loop
  ClientSession fleets with failover) must satisfy the full invariant
  suite *plus* ``check_exactly_once`` over the session ledger;
* a sabotaged run — dedup table disabled at every site — must FAIL the
  exactly-once checker, proving the checker actually catches double
  execution (a checker that cannot fail verifies nothing);
* the replicated dedup table answers a resubmitted request from the
  table instead of re-executing it, observable on a healthy cluster.
"""

import pytest

from repro.faults.chaos import run_chaos
from repro.replication.messages import RequestId
from tests.conftest import quick_cluster

#: Same pinned storms as test_chaos_regressions, driven by 6 sessions.
CLIENT_CASES = [
    ("evs", 9),
    ("evs", 2),   # once: tentative outcome rows answered clients from
                  # phantom gids / leaked through creation reports
    ("evs", 14),
    ("evs", 23),  # heaviest failover traffic of the pinned set
    ("evs", 12),
    ("vs", 23),
]


@pytest.mark.parametrize("mode,seed", CLIENT_CASES)
def test_pinned_seeds_are_exactly_once(mode, seed):
    report = run_chaos(seed=seed, mode=mode, clients=6)
    assert report.ok, f"chaos {mode} seed={seed} clients=6: {report.error}"
    # The run must have actually exercised the client path.
    assert report.metrics["client.requests"] > 0
    assert report.metrics["client.unresolved"] == 0


@pytest.mark.parametrize("seed", [9, 23])
def test_pinned_seeds_are_exactly_once_per_backend(backend, seed):
    """Conformance: the exactly-once ledger holds under the heaviest
    pinned storms on every reconfiguration backend."""
    report = run_chaos(seed=seed, backend=backend, clients=6)
    assert report.ok, f"chaos {backend} seed={seed} clients=6: {report.error}"
    assert report.metrics["client.requests"] > 0
    assert report.metrics["client.unresolved"] == 0


@pytest.mark.parametrize("mode,seed", [("evs", 12), ("vs", 23)])
def test_sabotaged_dedup_is_caught(mode, seed):
    """With the outcome table disabled, resubmission after an in-doubt
    crash re-executes the request; the checker must call it out."""
    report = run_chaos(seed=seed, mode=mode, clients=6, sabotage_dedup=True)
    assert not report.ok
    assert "committed under 2 distinct gids" in report.error


def test_resubmission_is_answered_from_the_table(backend):
    cluster = quick_cluster(backend=backend)
    node = cluster.nodes[cluster.active_sites()[0]]
    results = []
    first = node.submit(["obj0"], {"obj1": 111},
                        request=RequestId("CX", 1, 1),
                        on_done=results.append)
    cluster.settle(1.0)
    assert first.committed and first.gid is not None
    suppressed_before = node.duplicates_suppressed
    # Same (client_id, seq), bumped attempt: a failover resubmission.
    second = node.submit(["obj0"], {"obj1": 222},
                         request=RequestId("CX", 1, 2),
                         on_done=results.append)
    cluster.settle(1.0)
    assert second.committed
    assert second.gid == first.gid  # answered with the original commit
    assert node.duplicates_suppressed > suppressed_before
    # The duplicate write-set was never applied anywhere.
    for site_node in cluster.nodes.values():
        assert site_node.db.store.read("obj1")[0] == 111
    assert len(results) == 2


def test_client_metrics_surface_in_report():
    report = run_chaos(seed=23, mode="evs", clients=6)
    assert report.ok
    for key in ("client.sessions", "client.requests", "client.committed",
                "client.failovers", "client.in_doubt_resolved",
                "dedup.suppressed"):
        assert key in report.metrics, key
    assert report.metrics["client.sessions"] == 6.0
