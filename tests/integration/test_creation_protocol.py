"""Integration: the creation protocol after total failures (section 3)."""

import pytest

from repro import LoadGenerator, WorkloadConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster, run_load


def total_failure_and_recovery(cluster, order):
    """Crash every site (staggered), then recover in ``order``."""
    load = run_load(cluster, duration=0.6, rate=120)
    cluster.crash("S3")
    run_load(cluster, duration=0.3, rate=120)  # S1, S2 get ahead of S3
    cluster.crash("S1")
    cluster.crash("S2")
    cluster.run_for(0.5)
    for site in order:
        cluster.recover(site)
        cluster.run_for(0.3)
    return cluster.await_all_active(timeout=30)


class TestCreation:
    @pytest.mark.parametrize("mode", ["vs", "evs"])
    def test_total_failure_recovery(self, mode):
        cluster = quick_cluster(mode=mode, db_size=50, strategy="version_check")
        ok = total_failure_and_recovery(cluster, ["S3", "S1", "S2"])
        assert ok
        cluster.settle(1.0)
        cluster.check()

    def test_total_failure_recovery_backends(self, backend):
        """Conformance: the creation protocol holds on every backend."""
        cluster = quick_cluster(backend=backend, db_size=50,
                                strategy="version_check")
        ok = total_failure_and_recovery(cluster, ["S3", "S1", "S2"])
        assert ok
        cluster.settle(1.0)
        cluster.check()

    def test_source_is_most_current_site(self):
        """The stale site (S3, crashed first) must not become the source:
        the max-cover site provides the state."""
        cluster = quick_cluster(db_size=50, strategy="version_check")
        ok = total_failure_and_recovery(cluster, ["S3", "S1", "S2"])
        assert ok
        # S3's database must now include work it missed while down.
        digests = {
            s: cluster.nodes[s].db.store.content_digest() for s in cluster.universe
        }
        assert digests["S3"] == digests["S1"] == digests["S2"]

    def test_creation_waits_for_all_sites(self, backend):
        """Section 3: neither a majority nor the last primary view
        suffices — the logs of *all* sites must be considered."""
        cluster = quick_cluster(db_size=30, backend=backend)
        run_load(cluster, duration=0.4)
        for site in cluster.universe:
            cluster.crash(site)
        cluster.run_for(0.3)
        cluster.recover("S1")
        cluster.recover("S2")  # majority present, but S3 still down
        cluster.run_for(3.0)
        assert cluster.nodes["S1"].status is SiteStatus.SUSPENDED
        assert cluster.nodes["S2"].status is SiteStatus.SUSPENDED
        cluster.recover("S3")
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        cluster.check()

    def test_papers_three_site_example(self):
        """The section-3 scenario: a transaction commits only at one site
        which then fails; the other sites leave before committing.  After
        total failure, only that site's log has the commit — creation
        must still surface it."""
        cluster = quick_cluster(db_size=20, strategy="version_check")
        txn = cluster.submit_via("S1", [], {"obj0": "phantom"})
        cluster.settle(0.5)
        assert txn.committed  # committed everywhere in this run
        # Now force the asymmetric case: S1 commits more work than S2/S3
        # ever process, by crashing S2/S3 right after submission.
        txn2 = cluster.submit_via("S1", [], {"obj1": "only-s1"})
        cluster.run_for(0.004)  # delivered+committed at S1; others mid-ack
        cluster.crash("S2")
        cluster.crash("S3")
        cluster.run_for(0.2)
        cluster.crash("S1")
        cluster.run_for(0.2)
        for site in ("S2", "S3", "S1"):
            cluster.recover(site)
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        # Whatever S1 committed must have survived into everyone's state.
        if txn2.committed:
            for site in cluster.universe:
                assert cluster.nodes[site].db.store.value("obj1") == "only-s1"
        cluster.check()

    def test_processing_resumes_after_creation(self, backend):
        cluster = quick_cluster(db_size=30, backend=backend)
        assert total_failure_and_recovery(cluster, ["S1", "S2", "S3"])
        txn = cluster.submit_via("S2", [], {"obj0": "post-creation"})
        cluster.settle(0.5)
        assert txn.committed
        cluster.check()

    def test_bootstrap_without_initial_majority_blocks(self):
        """Only one site of three started: no primary view, no processing."""
        cluster = quick_cluster.__wrapped__ if hasattr(quick_cluster, "__wrapped__") else None
        from repro import ClusterBuilder

        cluster = ClusterBuilder(n_sites=3, db_size=10, seed=2).build()
        cluster.start(only=["S1"])
        cluster.run_for(2.0)
        assert cluster.nodes["S1"].status is not SiteStatus.ACTIVE
        with pytest.raises(RuntimeError):
            cluster.nodes["S1"].submit([], {"obj0": 1})
