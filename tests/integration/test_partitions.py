"""Integration: network partitions, minority stall, merge recovery."""

import pytest

from repro import LoadGenerator, WorkloadConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


def partitioned_cluster(mode="vs", strategy="rectable", n_sites=5, seed=21,
                        backend=None):
    cluster = quick_cluster(n_sites=n_sites, db_size=60, strategy=strategy,
                            mode=mode, seed=seed, backend=backend)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)
    cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
    cluster.run_for(1.5)
    return cluster, load


class TestMinorityBehaviour:
    @pytest.mark.parametrize("mode", ["vs", "evs"])
    def test_minority_stalls_majority_continues(self, mode):
        cluster, load = partitioned_cluster(mode=mode)
        for site in ("S1", "S2", "S3"):
            assert cluster.nodes[site].status is SiteStatus.ACTIVE
        for site in ("S4", "S5"):
            assert cluster.nodes[site].status is SiteStatus.STALLED
        load.stop()

    def test_minority_stalls_on_every_backend(self, backend):
        """Conformance: quorum stall semantics are backend-independent."""
        cluster, load = partitioned_cluster(backend=backend)
        for site in ("S1", "S2", "S3"):
            assert cluster.nodes[site].status is SiteStatus.ACTIVE
        for site in ("S4", "S5"):
            assert cluster.nodes[site].status is SiteStatus.STALLED
        load.stop()

    def test_minority_rejects_submissions(self):
        cluster, load = partitioned_cluster()
        with pytest.raises(RuntimeError):
            cluster.nodes["S4"].submit([], {"obj0": 1})
        load.stop()

    def test_majority_commits_during_partition(self):
        cluster, load = partitioned_cluster()
        before = len(load.committed())
        cluster.run_for(0.5)
        load.stop()
        cluster.settle(0.5)
        assert len(load.committed()) > before

    def test_minority_local_transactions_aborted(self):
        cluster = quick_cluster(n_sites=5, db_size=60)
        txn = cluster.submit_via("S4", ["obj0", "obj1", "obj2"], {"obj3": 1})
        cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
        cluster.run_for(1.5)
        # Either committed before the partition took effect or aborted when
        # S4 left the primary component — never left dangling.
        assert txn.done

    def test_even_split_stalls_everyone(self):
        cluster = quick_cluster(n_sites=4, db_size=40)
        cluster.partition([["S1", "S2"], ["S3", "S4"]])
        cluster.run_for(1.5)
        statuses = {cluster.nodes[s].status for s in cluster.universe}
        assert statuses == {SiteStatus.STALLED}


class TestMergeRecovery:
    @pytest.mark.parametrize("mode,strategy", [
        ("vs", "rectable"), ("vs", "lazy"), ("evs", "rectable"), ("evs", "full"),
    ])
    def test_heal_brings_minority_back(self, mode, strategy):
        cluster, load = partitioned_cluster(mode=mode, strategy=strategy)
        cluster.heal()
        ok = cluster.await_all_active(timeout=30)
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()

    def test_heal_brings_minority_back_backends(self, backend):
        """Conformance: merge recovery works on every backend."""
        cluster, load = partitioned_cluster(backend=backend)
        cluster.heal()
        ok = cluster.await_all_active(timeout=30)
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()

    def test_minority_receives_partition_era_writes(self, backend):
        cluster, load = partitioned_cluster(backend=backend)
        load.stop()
        marker = cluster.submit_via("S1", [], {"obj0": "during-partition"})
        cluster.settle(0.5)
        assert marker.committed
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        assert cluster.nodes["S4"].db.store.value("obj0") == "during-partition"

    def test_repeated_partition_cycles(self):
        cluster = quick_cluster(n_sites=5, db_size=50)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80, reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        for _ in range(2):
            cluster.run_for(0.4)
            cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
            cluster.run_for(0.8)
            cluster.heal()
            assert cluster.await_all_active(timeout=30)
        load.stop()
        cluster.settle(1.0)
        cluster.check()

    def test_alternating_minorities(self):
        cluster = quick_cluster(n_sites=5, db_size=50)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80, reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.4)
        cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
        cluster.run_for(0.8)
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        cluster.run_for(0.4)
        cluster.partition([["S3", "S4", "S5"], ["S1", "S2"]])
        cluster.run_for(0.8)
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        load.stop()
        cluster.settle(1.0)
        cluster.check()

    def test_transaction_atomicity_across_partition(self):
        """Section 2.3: a transaction committed by the primary side is
        eventually committed at every site that stays long enough."""
        cluster, load = partitioned_cluster()
        load.stop()
        cluster.settle(0.3)
        committed_gids = {
            e.gid for e in cluster.history.events if e.kind == "commit"
        }
        cluster.heal()
        assert cluster.await_all_active(timeout=30)
        cluster.settle(0.5)
        # Every committed write is reflected at the returned minority sites.
        for gid in committed_gids:
            message = next(e.message for e in cluster.history.events if e.gid == gid)
            for obj, _ in message.write_set:
                assert cluster.nodes["S4"].db.store.version(obj) >= -1
        cluster.check()
