"""Integration: EVS-specific reconfiguration semantics (section 5.2)."""

import os

import pytest

# EVS-only semantics (primary subviews, structural up-to-dateness):
# skipped when the CI backend matrix pins another backend.
pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BACKEND", "evs") not in ("", "evs"),
    reason="EVS reconfiguration semantics are specific to the evs backend",
)

from repro import LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


class TestStructuralUpToDate:
    def test_processing_only_in_primary_subview(self):
        cluster = quick_cluster(mode="evs", n_sites=5, db_size=40)
        for node in cluster.nodes.values():
            assert node.evs_member.in_primary_subview()
            assert node.up_to_date

    def test_rejoiner_outside_primary_subview_until_merged(self):
        node_config = NodeConfig(transfer_obj_time=0.003, transfer_batch_size=10)
        cluster = quick_cluster(mode="evs", n_sites=5, db_size=200,
                                node_config=node_config)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=1))
        load.start()
        cluster.run_for(0.3)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        # While recovering, S5 is in the view but not the primary subview.
        cluster.await_condition(
            lambda: cluster.nodes["S5"].member.view.is_primary(5), timeout=10
        )
        node5 = cluster.nodes["S5"]
        assert not node5.evs_member.in_primary_subview()
        assert node5.status is not SiteStatus.ACTIVE
        ok = cluster.await_condition(
            lambda: node5.status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(0.5)
        assert ok
        assert node5.evs_member.in_primary_subview()
        cluster.check()

    def test_no_announcements_under_evs(self):
        """The whole point of EVS: completion is structural, no explicit
        up-to-date announcements are multicast."""
        cluster = quick_cluster(mode="evs", n_sites=5, db_size=40)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        assert cluster.await_all_active(timeout=30)
        assert all(n.reconfig.announcements_sent == 0 for n in cluster.nodes.values())
        assert any(
            getattr(n.reconfig, "sv_merges_issued", 0) > 0
            for n in cluster.nodes.values()
        )

    def test_merge_sequence_matches_paper(self):
        """Subview-SetMerge (reconfiguration starts) strictly before the
        SubviewMerge (final synchronization point)."""
        cluster = quick_cluster(mode="evs", n_sites=5, db_size=40)
        reasons = []
        node = cluster.nodes["S1"]
        original = node.reconfig.on_eview_change

        def spy(eview, reason, states, gseq=None):
            reasons.append(reason)
            return original(eview, reason, states, gseq)

        node.reconfig.on_eview_change = spy
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        assert cluster.await_all_active(timeout=30)
        assert "subview_set_merge" in reasons and "subview_merge" in reasons
        assert reasons.index("subview_set_merge") < reasons.index("subview_merge")


class TestSuspension:
    def test_no_primary_subview_suspends_despite_primary_view(self):
        """Section 5.2: peer loss can shrink the primary subview below a
        majority while the *view* stays primary — everyone suspends."""
        node_config = NodeConfig(transfer_obj_time=0.003, transfer_batch_size=10)
        cluster = quick_cluster(mode="evs", n_sites=4, db_size=200, seed=5,
                                node_config=node_config)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=1))
        load.start()
        cluster.run_for(0.3)
        cluster.crash("S4")
        cluster.run_for(0.5)
        cluster.recover("S4")

        def transfer_running():
            return any(n.alive and n.reconfig.sessions_out.get("S4")
                       for n in cluster.nodes.values())

        assert cluster.await_condition(transfer_running, timeout=10)
        peer = next(s for s, n in cluster.nodes.items()
                    if n.alive and n.reconfig.sessions_out.get("S4"))
        cluster.run_for(0.05)
        cluster.crash(peer)
        load.stop()
        cluster.run_for(3.0)
        survivors = [s for s in cluster.universe if cluster.nodes[s].alive]
        view = cluster.nodes[survivors[0]].member.view
        assert view.is_primary(4)  # 3 of 4: the view IS primary
        for site in survivors:
            assert cluster.nodes[site].status is SiteStatus.SUSPENDED

    def test_suspension_resolved_by_creation_when_all_back(self):
        node_config = NodeConfig(transfer_obj_time=0.003, transfer_batch_size=10)
        cluster = quick_cluster(mode="evs", n_sites=4, db_size=150, seed=5,
                                node_config=node_config)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=1))
        load.start()
        cluster.run_for(0.3)
        cluster.crash("S4")
        cluster.run_for(0.4)
        cluster.recover("S4")

        def transfer_running():
            return any(n.alive and n.reconfig.sessions_out.get("S4")
                       for n in cluster.nodes.values())

        assert cluster.await_condition(transfer_running, timeout=10)
        peer = next(s for s, n in cluster.nodes.items()
                    if n.alive and n.reconfig.sessions_out.get("S4"))
        cluster.run_for(0.05)
        cluster.crash(peer)
        cluster.run_for(1.0)
        cluster.recover(peer)
        ok = cluster.await_all_active(timeout=40)
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()


class TestEvsVsPlainVs:
    def test_same_schedule_both_modes_converge(self):
        from repro.scenarios import run_figure1_scenario

        vs_report = run_figure1_scenario(mode="vs", seed=29)
        evs_report = run_figure1_scenario(mode="evs", seed=29)
        assert vs_report.completed and evs_report.completed

    def test_vs_uses_announcements_evs_uses_merges(self):
        from repro.scenarios import run_figure1_scenario

        vs_report = run_figure1_scenario(mode="vs", seed=31)
        evs_report = run_figure1_scenario(mode="evs", seed=31)
        assert vs_report.announcements > 0
        assert vs_report.svs_merges == vs_report.sv_merges == 0
        assert evs_report.announcements == 0
        assert evs_report.svs_merges > 0 and evs_report.sv_merges > 0
