"""Pinned regression seeds from the chaos-fuzzing campaign.

Each configuration below once produced a safety or liveness violation
under the default chaos storm (see docs/PROTOCOLS.md, "Fault model");
they must stay green.  The chaos engine itself asserts the full
invariant suite on quiescence, so ``report.ok`` is the whole assertion.
"""

import pytest

from repro.faults.chaos import run_chaos

CASES = [
    # (mode, seed) -> the bug the run originally exposed
    ("evs", 9),   # Ordered discarded while frozen for an aborted round:
                  # top-of-sequence loss with no gap below it, never NAKed
    ("evs", 2),   # creation round state kept across views: the old
                  # source skipped its CreationReport in a later view
    ("evs", 14),  # creation source's subview companion never offered a
                  # transfer and never demoted to RECOVERING
    ("evs", 23),  # zombie write phases: transactions rolled back at
                  # suspension resumed from the lock queues and committed
                  # against the creation protocol's rebuilt state
    ("evs", 12),  # stale version tags of rolled-back writers diverged a
                  # later version check across sites
    ("vs", 23),   # VS-mode smoke over the same storm shape
]


@pytest.mark.parametrize("mode,seed", CASES)
def test_pinned_chaos_regressions(mode, seed):
    report = run_chaos(seed=seed, mode=mode)
    assert report.ok, f"chaos {mode} seed={seed}: {report.error}"
