"""Dynamic groups (section 2.1's second named extension): the member set
grows at runtime; new sites discovered by presence join the universe and
are brought up to date with a full online transfer."""

import pytest

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.gcs.config import GCSConfig
from repro.replication.node import SiteStatus


def dynamic_cluster(n_sites=3, seed=7, **kwargs):
    gcs = GCSConfig(dynamic_universe=True, primary_policy="dynamic_linear")
    cluster = ClusterBuilder(n_sites=n_sites, db_size=60, seed=seed,
                             strategy="rectable", gcs_config=gcs, **kwargs).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    return cluster


class TestGuards:
    def test_requires_dynamic_config(self):
        from tests.conftest import quick_cluster

        cluster = quick_cluster()
        with pytest.raises(RuntimeError):
            cluster.add_site("S4")

    def test_dynamic_requires_linear_policy(self):
        with pytest.raises(ValueError):
            GCSConfig(dynamic_universe=True, primary_policy="static").validate()

    def test_dynamic_forbidden_under_evs(self):
        gcs = GCSConfig(dynamic_universe=True, primary_policy="dynamic_linear")
        with pytest.raises(ValueError):
            ClusterBuilder(mode="evs", gcs_config=gcs).build()

    def test_duplicate_site_rejected(self):
        cluster = dynamic_cluster()
        with pytest.raises(ValueError):
            cluster.add_site("S1")


class TestGrowth:
    def test_new_site_joins_and_converges(self):
        cluster = dynamic_cluster()
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                     reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        node = cluster.add_site("S4")
        ok = cluster.await_condition(lambda: node.status is SiteStatus.ACTIVE,
                                     timeout=30)
        load.stop()
        cluster.settle(1.0)
        assert ok
        assert len(node.db.store) == 60
        cluster.check()

    def test_universe_grows_at_every_member(self):
        cluster = dynamic_cluster()
        cluster.add_site("S4")
        assert cluster.await_condition(
            lambda: all("S4" in n.member.universe
                        for n in cluster.nodes.values() if n.alive),
            timeout=15,
        )

    def test_new_site_processes_transactions(self):
        cluster = dynamic_cluster()
        node = cluster.add_site("S4")
        assert cluster.await_condition(lambda: node.status is SiteStatus.ACTIVE,
                                       timeout=30)
        txn = cluster.submit_via("S4", ["obj0"], {"obj1": "hi"})
        cluster.settle(0.3)
        assert txn.committed
        cluster.check()

    def test_sequential_growth_to_double_size(self):
        cluster = dynamic_cluster()
        for index in (4, 5, 6):
            node = cluster.add_site(f"S{index}")
            assert cluster.await_condition(
                lambda n=node: n.status is SiteStatus.ACTIVE, timeout=30
            )
        assert len(cluster.active_sites()) == 6
        cluster.check()

    def test_grown_member_counts_for_availability(self):
        """After growth, the primary lineage includes the new members:
        losing one original site must not stop a grown five-site group."""
        cluster = dynamic_cluster()
        for index in (4, 5):
            node = cluster.add_site(f"S{index}")
            assert cluster.await_condition(
                lambda n=node: n.status is SiteStatus.ACTIVE, timeout=30
            )
        cluster.crash("S1")
        cluster.run_for(1.0)
        txn = cluster.submit_via("S4", [], {"obj0": "still-on"})
        cluster.settle(0.3)
        assert txn.committed
        cluster.check()

    def test_grown_member_can_recover_others(self):
        """A site added at runtime later acts as transfer peer."""
        cluster = dynamic_cluster()
        node = cluster.add_site("S4")
        assert cluster.await_condition(lambda: node.status is SiteStatus.ACTIVE,
                                       timeout=30)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80,
                                                     reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.3)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()
