"""Integration: brand-new sites (no initial copy) and lazy-transfer internals."""

import pytest

from repro import ClusterBuilder, LazyTransferStrategy, LoadGenerator, NodeConfig, WorkloadConfig
from repro.reconfig.strategies import ALL_STRATEGY_NAMES
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


def new_site_cluster(strategy, seed=13, db_size=120, **kwargs):
    cluster = ClusterBuilder(
        n_sites=4, db_size=db_size, seed=seed, strategy=strategy,
        initial_sites=["S1", "S2", "S3"], **kwargs
    ).build()
    cluster.start(only=["S1", "S2", "S3"])
    assert cluster.await_all_active(sites=["S1", "S2", "S3"], timeout=10)
    return cluster


class TestNewSites:
    @pytest.mark.parametrize("strategy", ALL_STRATEGY_NAMES)
    def test_empty_site_joins_and_converges(self, strategy):
        cluster = new_site_cluster(strategy)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80, reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.4)
        cluster.nodes["S4"].start()
        ok = cluster.await_condition(
            lambda: cluster.nodes["S4"].status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        assert len(cluster.nodes["S4"].db.store) == 120
        cluster.check()

    def test_new_site_forces_whole_copy_even_with_filters(self):
        """Section 4.3: a full copy is the only option for a new site;
        the version-check strategy must degrade to it."""
        cluster = new_site_cluster("version_check")
        cluster.nodes["S4"].start()
        assert cluster.await_condition(
            lambda: cluster.nodes["S4"].status is SiteStatus.ACTIVE, timeout=30
        )
        sent = sum(n.reconfig.objects_sent_total for n in cluster.nodes.values())
        assert sent >= 120

    def test_new_site_can_process_after_join(self):
        cluster = new_site_cluster("rectable")
        cluster.nodes["S4"].start()
        assert cluster.await_condition(
            lambda: cluster.nodes["S4"].status is SiteStatus.ACTIVE, timeout=30
        )
        txn = cluster.submit_via("S4", ["obj0"], {"obj1": "from-new-site"})
        cluster.settle(0.5)
        assert txn.committed
        cluster.check()


class TestLazyInternals:
    def make(self, threshold=10, max_rounds=4, rate=150.0, db_size=400):
        strategy = LazyTransferStrategy(round_threshold=threshold, max_rounds=max_rounds)
        node_config = NodeConfig(transfer_obj_time=0.001, transfer_batch_size=40)
        cluster = quick_cluster(db_size=db_size, strategy=strategy, seed=37,
                                node_config=node_config)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=rate, reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        return cluster, load

    def test_lazy_enqueues_less_than_eager(self):
        """The headline advantage of section 4.7: far fewer transaction
        messages must be enqueued and replayed by the joiner."""
        results = {}
        for strategy in ("full", "lazy"):
            node_config = NodeConfig(transfer_obj_time=0.001, transfer_batch_size=40)
            cluster = quick_cluster(db_size=400, strategy=strategy, seed=37,
                                    node_config=node_config)
            load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=150,
                                                         reads_per_txn=1, writes_per_txn=2))
            load.start()
            cluster.run_for(0.5)
            cluster.crash("S3")
            cluster.run_for(0.8)
            cluster.recover("S3")
            assert cluster.await_condition(
                lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=40
            )
            load.stop()
            cluster.settle(0.5)
            results[strategy] = cluster.nodes["S3"].enqueue_high_watermark
            cluster.check()
        assert results["lazy"] < results["full"]

    def test_lazy_transfers_in_multiple_rounds(self):
        cluster, load = self.make()
        cluster.run_for(0.5)
        cluster.crash("S3")
        cluster.run_for(0.8)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(0.5)
        # Round boundaries advanced the joiner's resume point beyond its
        # cover before completion — evidence of multi-round operation.
        cluster.check()

    def test_lazy_discards_before_last_round(self):
        cluster, load = self.make()
        cluster.run_for(0.3)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        node = cluster.nodes["S3"]
        # While the first rounds run, nothing is enqueued (discard phase).
        cluster.await_condition(
            lambda: node.reconfig.joiner_session is not None, timeout=10
        )
        assert node.reconfig.enqueue_mode is False
        assert cluster.await_condition(
            lambda: node.status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(0.5)
        cluster.check()

    def test_lazy_max_rounds_forces_termination(self):
        cluster, load = self.make(threshold=0, max_rounds=2, rate=300.0)
        cluster.run_for(0.4)
        cluster.crash("S3")
        cluster.run_for(0.6)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(0.5)
        assert ok  # termination check I (round budget) fired
        cluster.check()
