"""Integration: cluster bootstrap and normal transaction processing."""

import pytest

from repro import ClusterBuilder
from repro.replication.node import SiteStatus
from repro.replication.transaction import AbortReason, TxnState
from tests.conftest import quick_cluster, run_load


class TestBootstrap:
    @pytest.mark.parametrize("mode", ["vs", "evs"])
    def test_all_sites_become_active(self, mode):
        cluster = quick_cluster(mode=mode)
        assert cluster.active_sites() == list(cluster.universe)

    def test_builder_site_names(self):
        builder = ClusterBuilder(n_sites=4)
        assert builder.site_names() == ("S1", "S2", "S3", "S4")

    def test_initial_database_loaded(self):
        cluster = quick_cluster(db_size=10)
        node = cluster.nodes["S1"]
        assert len(node.db.store) == 10
        assert node.db.store.read("obj0") == (0, -1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ClusterBuilder(mode="nope").build()

    def test_submit_rejected_before_active(self):
        cluster = ClusterBuilder(n_sites=3, db_size=5, seed=1).build()
        cluster.start()
        with pytest.raises(RuntimeError):
            cluster.nodes["S1"].submit([], {"obj0": 1})


class TestTransactionProcessing:
    def test_simple_write_commits_everywhere(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", [], {"obj0": 99})
        cluster.settle(0.5)
        assert txn.committed
        for node in cluster.nodes.values():
            assert node.db.store.value("obj0") == 99

    def test_read_only_transaction_commits(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", ["obj0"], {})
        cluster.settle(0.5)
        assert txn.committed
        assert txn.read_set == {"obj0": -1}

    def test_read_your_own_writes(self):
        cluster = quick_cluster()
        cluster.submit_via("S1", [], {"obj0": 5})
        cluster.settle(0.5)
        txn = cluster.submit_via("S1", ["obj0"], {})
        cluster.settle(0.5)
        assert txn.committed
        version = txn.read_set["obj0"]
        assert version >= 0  # saw the committed write's version

    def test_gid_assigned_from_total_order(self):
        cluster = quick_cluster()
        t1 = cluster.submit_via("S1", [], {"obj0": 1})
        t2 = cluster.submit_via("S2", [], {"obj1": 2})
        cluster.settle(0.5)
        assert t1.gid is not None and t2.gid is not None
        assert t1.gid != t2.gid

    def test_object_version_is_writer_gid(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", [], {"obj3": "x"})
        cluster.settle(0.5)
        for node in cluster.nodes.values():
            assert node.db.store.version("obj3") == txn.gid

    def test_version_check_aborts_stale_reader(self):
        """Two concurrent read-modify-writes on the same object: the one
        serialized second must fail its version check (section 2.2)."""
        cluster = quick_cluster()
        t1 = cluster.submit_via("S1", ["obj0"], {"obj0": "a"})
        t2 = cluster.submit_via("S2", ["obj0"], {"obj0": "b"})
        cluster.settle(0.5)
        outcomes = sorted([t1.state, t2.state], key=lambda s: s.value)
        assert outcomes == [TxnState.ABORTED, TxnState.COMMITTED]
        aborted = t1 if t1.aborted else t2
        assert aborted.abort_reason in (
            AbortReason.VERSION_CHECK, AbortReason.LOCAL_READER_CONFLICT
        )

    def test_non_conflicting_transactions_both_commit(self):
        cluster = quick_cluster()
        t1 = cluster.submit_via("S1", ["obj0"], {"obj1": 1})
        t2 = cluster.submit_via("S2", ["obj2"], {"obj3": 2})
        cluster.settle(0.5)
        assert t1.committed and t2.committed

    def test_local_reader_aborted_by_delivered_writer(self):
        """Phase III.3: a local-phase reader holding a conflicting read
        lock is aborted when a delivered transaction wants the write lock."""
        cluster = quick_cluster()
        # t_writer from S2 will be delivered while t_reader still reads
        # at S1 (read phase takes read_op_time per object).
        t_reader = cluster.submit_via("S1", ["obj0", "obj1", "obj2"], {"obj9": 1})
        t_writer = cluster.submit_via("S2", [], {"obj0": "clash"})
        cluster.settle(0.5)
        assert t_writer.committed
        # The reader either got aborted by III.3 or lost the version check.
        if t_reader.aborted:
            assert t_reader.abort_reason in (
                AbortReason.LOCAL_READER_CONFLICT, AbortReason.VERSION_CHECK
            )

    def test_throughput_under_load(self):
        cluster = quick_cluster()
        load = run_load(cluster, duration=1.0, rate=200)
        assert len(load.committed()) > 100
        assert not load.unresolved()
        cluster.check()

    def test_latencies_recorded(self):
        cluster = quick_cluster()
        load = run_load(cluster, duration=0.5, rate=50)
        latencies = load.latencies()
        assert latencies and all(l > 0 for l in latencies)

    def test_commits_equal_across_sites(self):
        cluster = quick_cluster()
        run_load(cluster, duration=1.0)
        commit_sets = {
            site: set(cluster.history.commits_of(site)) for site in cluster.universe
        }
        values = list(commit_sets.values())
        assert values[0] == values[1] == values[2]

    @pytest.mark.parametrize("mode", ["vs", "evs"])
    def test_full_checker_battery(self, mode):
        cluster = quick_cluster(mode=mode)
        run_load(cluster, duration=1.0)
        cluster.check()


class TestLockDiscipline:
    def test_no_locks_leak_after_quiescence(self):
        cluster = quick_cluster()
        run_load(cluster, duration=0.5)
        cluster.settle(1.0)
        for node in cluster.nodes.values():
            assert node.db.locks.waiting_requests() == []
            assert not node.db.locks._holders

    def test_no_delivered_transactions_stuck(self):
        cluster = quick_cluster()
        run_load(cluster, duration=0.5)
        cluster.settle(1.0)
        for node in cluster.nodes.values():
            assert node._delivered == {}
