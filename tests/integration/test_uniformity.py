"""Integration: uniform delivery vs plain reliable delivery (section 2.3).

"With weaker forms of message delivery (e.g., reliable delivery),
transaction atomicity can be violated: a failed site might have
committed a transaction shortly before the failure even though the
message was not delivered at the sites that continue in a primary view."

These tests construct exactly that interleaving and show that uniform
(safe) delivery prevents it — the basis of ablation benchmark E9c.
"""

import pytest

from repro import ClusterBuilder, NodeConfig
from repro.gcs.config import GCSConfig
from repro.replication.node import SiteStatus


def build(uniform: bool, seed=3):
    gcs = GCSConfig(uniform=uniform)
    # Instant writes so the origin can commit before others hear anything.
    node_config = NodeConfig(write_op_time=0.0)
    cluster = ClusterBuilder(n_sites=3, db_size=10, seed=seed, strategy="version_check",
                             gcs_config=gcs, node_config=node_config).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    return cluster


def run_interleaving(cluster):
    """Submit at the sequencer (S1) and immediately isolate it, so the
    ORDERED message never reaches S2/S3."""
    txn = cluster.submit_via("S1", [], {"obj0": "phantom"})
    # Give S1 (origin = sequencer) a moment shorter than one network hop:
    # it can self-deliver instantly; nobody else can have received it.
    cluster.partition([["S1"], ["S2", "S3"]])
    cluster.run_for(0.0005)
    cluster.run_for(3.0)
    return txn


class TestUniformDelivery:
    def test_uniform_prevents_premature_commit(self):
        cluster = build(uniform=True)
        txn = run_interleaving(cluster)
        # Under safe delivery S1 cannot deliver without S2/S3's acks, so
        # the transaction never commits at the isolated site.
        assert not txn.committed
        s1_commits = set(cluster.history.commits_of("S1"))
        majority_commits = set(cluster.history.commits_of("S2"))
        assert s1_commits <= majority_commits

    def test_non_uniform_allows_atomicity_violation(self):
        cluster = build(uniform=False)
        txn = run_interleaving(cluster)
        # Plain reliable delivery: the sequencer delivered to itself and
        # committed, but the surviving primary never saw the message.
        assert txn.committed
        assert "obj0" in [o for o, _ in txn.writes.items()]
        assert cluster.nodes["S1"].db.store.value("obj0") == "phantom"
        assert cluster.nodes["S2"].db.store.value("obj0") == 0  # never heard of it

    def test_violation_counted_by_checker_inputs(self):
        """The anomaly is visible as a commit event present only at the
        isolated site — the measurement E9c reports."""
        cluster = build(uniform=False)
        txn = run_interleaving(cluster)
        assert txn.gid is not None
        committed_at = {e.site for e in cluster.history.events
                        if e.kind == "commit" and e.gid == txn.gid}
        assert committed_at == {"S1"}

    def test_uniform_is_the_default(self):
        assert GCSConfig().uniform is True
