"""End-to-end tests for the adversarial chaos search: campaign
determinism, corpus replay, the sabotage canary (find + shrink a seeded
bug), and the pinned regression/determinism schedules."""

import json
import os

import pytest

from repro import audit
from repro.search.engine import (
    SearchConfig,
    SearchEngine,
    evaluate_genome,
    replay_schedule,
)
from repro.search.executor import ScheduleExecutor
from repro.search.pinned import PINNED


def smoke_config(**overrides):
    config = SearchConfig.smoke(seed=0)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestSearchDeterminism:
    def test_same_seed_same_corpus_digest(self):
        first = SearchEngine(smoke_config()).run()
        second = SearchEngine(smoke_config()).run()
        assert first.corpus
        assert first.corpus_digest() == second.corpus_digest()
        assert first.summary() == second.summary()

    def test_jobs_do_not_change_the_result(self):
        serial = SearchEngine(smoke_config(jobs=1)).run()
        fanned = SearchEngine(smoke_config(jobs=2)).run()
        assert serial.corpus_digest() == fanned.corpus_digest()

    def test_corpus_files_replay_to_recorded_digests(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        report = SearchEngine(
            smoke_config(corpus_dir=str(corpus_dir))).run()
        index = json.loads((corpus_dir / "corpus.json").read_text())
        assert index["corpus_digest"] == report.corpus_digest()
        assert len(index["entries"]) == len(report.corpus)
        # Replay the first corpus entry from its file: byte-identical.
        entry = index["entries"][0]
        payload = replay_schedule(str(corpus_dir / entry["file"]))
        assert payload["matches"] is True
        assert payload["run_digest"] == entry["run_digest"]


class TestSabotageCanary:
    def test_search_finds_and_shrinks_the_seeded_bug(self, tmp_path):
        config = smoke_config(sabotage=True,
                              artifacts_dir=str(tmp_path / "out"))
        report = SearchEngine(config).run()
        assert not report.ok
        assert report.failures
        failure = report.failures[0]
        # The shrinker made demonstrable progress: strictly smaller.
        assert failure.minimal.schedule_size() < failure.genome.schedule_size()
        # The minimal schedule still fails on its own.
        replay = ScheduleExecutor(failure.minimal, sabotage=True).run()
        assert not replay.ok
        # ... and the artifact bundle carries the replayable genome.
        schedule_files = [p for p in failure.artifacts
                          if p.endswith("schedule.json")]
        assert schedule_files
        payload = replay_schedule(schedule_files[0], sabotage=True)
        assert payload["ok"] is False


class TestPinnedSchedules:
    def test_utd_flush_clobber_regression_passes(self):
        # This schedule once wedged three of five sites behind orphaned
        # transfer locks (stale flushed utd claims clobbering
        # cut-delivered announcements) and split the replicas.  It must
        # pass now and forever.
        payload = evaluate_genome(PINNED["utd-flush-clobber"].genome)
        assert payload["ok"], payload["error"]

    def test_pinned_schedules_replay_deterministically(self):
        for pinned in PINNED.values():
            first = evaluate_genome(pinned.genome)
            second = evaluate_genome(pinned.genome)
            assert first["ok"], (pinned.name, first["error"])
            assert first["run_digest"] == second["run_digest"], pinned.name

    def test_pinned_schedules_are_audit_cases(self):
        for pinned in PINNED.values():
            assert f"schedule:{pinned.name}" in audit.CASES

    def test_audit_schedule_kind_executes(self):
        case_id = "schedule:utd-flush-clobber"
        flat_a = audit._flatten(audit.execute_variant(case_id, "a"))
        flat_b = audit._flatten(audit.execute_variant(case_id, "b"))
        assert flat_a == flat_b
        assert flat_a["ok"] is True

    def test_audit_sabotage_hook_perturbs_schedule_runs(self, monkeypatch):
        # Non-vacuity: the REPRO_AUDIT_SABOTAGE hook must actually
        # change the run, or the audit could silently compare nothing.
        case_id = "schedule:utd-flush-clobber"
        flat_a = audit._flatten(audit.execute_variant(case_id, "a"))
        monkeypatch.setenv(audit.SABOTAGE_ENV, "1")
        flat_b = audit._flatten(audit.execute_variant(case_id, "b"))
        assert flat_a != flat_b
