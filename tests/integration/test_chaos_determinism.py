"""Determinism: the whole stack — simulator, network, GCS, replication,
reconfiguration, fault injection — must be a pure function of the seed.

Two chaos runs with the same ``ChaosConfig`` must produce byte-identical
trace event sequences, the same fault schedule, and equal metrics.  This
is what makes every bug report in this repo reproducible ("seed N
fails") and what the batching-equivalence property in
``tests/properties/test_batching_equivalence.py`` builds on.

The seeds below are pinned, not sampled: each exercises a different
fault mix at moderate intensity, and a regression in any shared-state /
iteration-order hazard (dict ordering, set iteration, RNG sharing)
shows up as a trace diff with a precise first divergence point.
"""

import pytest

from repro.faults import ChaosConfig, ChaosEngine

PINNED_SEEDS = (3, 11, 42)


def run_chaos(seed: int) -> "ChaosReport":
    config = ChaosConfig(
        seed=seed,
        intensity=0.6,
        n_sites=4,
        db_size=40,
        duration=1.5,
        arrival_rate=60.0,
    )
    return ChaosEngine(config).run()


def trace_lines(report) -> str:
    assert report.tracer is not None
    return "\n".join(str(e) for e in report.tracer.events)


class TestChaosDeterminism:
    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_same_seed_same_run(self, seed):
        first = run_chaos(seed)
        second = run_chaos(seed)
        # The fault schedule itself (what chaos injected, when).
        assert first.events == second.events
        # The full interleaved trace, byte for byte.  Comparing the
        # joined strings (not the lists) makes a failure render as a
        # readable unified diff with the first divergent line.
        assert trace_lines(first) == trace_lines(second)
        # Aggregate metrics, including events_processed — a catch-all
        # for any divergence the tracer does not capture.
        assert first.metrics == second.metrics
        assert first.ok and second.ok

    def test_different_seeds_differ(self):
        """Guard against the trivial failure mode where the trace is
        identical because nothing seed-dependent is recorded at all."""
        traces = {trace_lines(run_chaos(seed)) for seed in PINNED_SEEDS}
        assert len(traces) == len(PINNED_SEEDS)
