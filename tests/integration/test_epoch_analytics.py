"""End-to-end guarantees of the epoch analytics + profiler layers on
pinned chaos and endurance runs:

* every epoch's phase durations tile its recovery window exactly,
* every client-visible blocked window of an endurance run is explained
  by (covered by) epoch intervals, with one sampling bin of slack,
* attaching the profiler changes nothing observable (trace digest,
  metrics, schedule) while still collecting cost buckets.
"""

import pytest

from repro.endurance import EnduranceConfig, EnduranceEngine
from repro.faults.chaos import ChaosConfig, ChaosEngine
from repro.obs.epochs import (
    blocked_windows,
    epoch_summary,
    extract_epochs,
    uncovered_blocked_time,
)


def run_chaos(seed, mode, **overrides):
    params = dict(seed=seed, mode=mode, intensity=0.5, n_sites=4,
                  db_size=40, duration=1.5, arrival_rate=60.0)
    params.update(overrides)
    return ChaosEngine(ChaosConfig(**params)).run()


def run_endurance(seed, mode):
    return EnduranceEngine(
        EnduranceConfig(seed=seed, mode=mode, duration=6.0)).run()


class TestPhaseSums:
    @pytest.mark.parametrize("seed,mode", [(3, "vs"), (9, "evs")])
    def test_chaos_epochs_tile_their_windows(self, seed, mode):
        report = run_chaos(seed, mode)
        assert report.ok, report.error
        epochs = report.epochs()
        assert epochs, "pinned storm produced no reconfiguration epochs"
        for epoch in epochs:
            assert sum(epoch.phase_durations().values()) == pytest.approx(
                epoch.duration, abs=1e-9)
            assert epoch.end >= epoch.start

    def test_endurance_epochs_tile_their_windows(self):
        report = run_endurance(0, "vs")
        assert report.ok, report.error
        epochs = report.epochs()
        assert epochs
        for epoch in epochs:
            assert sum(epoch.phase_durations().values()) == pytest.approx(
                epoch.duration, abs=1e-9)

    def test_payload_summary_matches_records(self):
        report = run_chaos(3, "vs")
        epochs = report.epochs()
        summary = report.payload()["epochs"]
        assert summary == epoch_summary(epochs)
        assert summary["count"] == len(epochs)
        assert summary["total_downtime"] == pytest.approx(
            sum(e.duration for e in epochs), abs=1e-6)


class TestBlockedWindowCoverage:
    @pytest.mark.parametrize("seed,mode", [(0, "vs"), (2, "vs"), (1, "evs")])
    def test_blocked_windows_explained_by_epochs(self, seed, mode):
        """Acceptance criterion: the availability checker's blocked
        windows must be covered by epoch intervals (one-bin slack for
        the sampler's quantisation)."""
        report = run_endurance(seed, mode)
        assert report.ok, report.error
        epochs = extract_epochs(report.tracer.events,
                                end_time=report.virtual_time)
        windows = blocked_windows(report.tracer.events,
                                  warmup=report.warmup)
        uncovered = uncovered_blocked_time(epochs, windows,
                                           slack=report.bin_width)
        assert uncovered == pytest.approx(0.0), (
            f"{uncovered:.3f}s of blocked time not explained by any "
            f"reconfiguration epoch (windows={windows})")


class TestProfilerObservationEquivalence:
    def test_profiled_chaos_run_is_byte_identical(self):
        plain = run_chaos(3, "vs")
        profiled = run_chaos(3, "vs", profile=True)
        assert profiled.profiler is not None
        assert profiled.profiler.events > 0
        plain_payload = plain.payload()
        profiled_payload = profiled.payload()
        assert plain_payload["trace_digest"] == profiled_payload["trace_digest"]
        assert plain_payload["metrics"] == profiled_payload["metrics"]
        assert plain_payload["epochs"] == profiled_payload["epochs"]

    def test_profiled_endurance_run_is_byte_identical(self):
        plain = EnduranceEngine(
            EnduranceConfig(seed=1, mode="vs", duration=6.0)).run()
        profiled = EnduranceEngine(
            EnduranceConfig(seed=1, mode="vs", duration=6.0,
                            profile=True)).run()
        assert profiled.profiler is not None
        assert (plain.payload()["schedule_digest"]
                == profiled.payload()["schedule_digest"])
        assert plain.payload()["metrics"] == profiled.payload()["metrics"]

    def test_profiler_buckets_are_deterministic(self):
        first = run_chaos(3, "vs", profile=True).profiler
        second = run_chaos(3, "vs", profile=True).profiler
        assert first.deterministic_summary() == second.deterministic_summary()
