"""Rule-by-rule verification of the EVS manager against section 5.2."""

import os

import pytest

# These tests pin mode="evs" by construction: they assert on subview
# structure and merge rules that only the EVS backend has.  When the
# CI backend matrix forces a different backend via REPRO_BACKEND the
# whole file is skipped rather than silently re-testing EVS.
pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BACKEND", "evs") not in ("", "evs"),
    reason="EVS rules (section 5.2) are specific to the evs backend",
)

from repro import LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


def recovering_evs_cluster(seed=5, db_size=250, n_sites=5):
    """A cluster with S-last crashed and just recovered: transfer pending."""
    node_config = NodeConfig(transfer_obj_time=0.003, transfer_batch_size=15)
    cluster = quick_cluster(mode="evs", n_sites=n_sites, db_size=db_size,
                            seed=seed, node_config=node_config)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(0.4)
    victim = f"S{n_sites}"
    cluster.crash(victim)
    cluster.run_for(0.4)
    cluster.recover(victim)
    return cluster, load, victim


class TestRuleI1:
    def test_exactly_one_member_issues_the_svs_merge(self):
        cluster, load, victim = recovering_evs_cluster()
        cluster.await_condition(
            lambda: any(getattr(n.reconfig, "svs_merges_issued", 0) > 0
                        for n in cluster.nodes.values()),
            timeout=10,
        )
        cluster.run_for(0.3)
        issuers = [s for s, n in cluster.nodes.items()
                   if getattr(n.reconfig, "svs_merges_issued", 0) > 0]
        assert len(issuers) == 1  # the deterministically elected peer
        load.stop()

    def test_merge_delivered_to_all_members(self):
        cluster, load, victim = recovering_evs_cluster()
        ok = cluster.await_condition(
            lambda: all(
                len(n.evs_member.eview.subview_sets()) == 1
                for n in cluster.nodes.values() if n.alive
            ),
            timeout=15,
        )
        assert ok
        load.stop()


class TestRuleII:
    def test_transfer_starts_only_after_svs_merge(self):
        cluster, load, victim = recovering_evs_cluster()
        node = cluster.nodes[victim]

        def transfer_started():
            return any(n.alive and n.reconfig.sessions_out.get(victim)
                       for n in cluster.nodes.values())

        assert cluster.await_condition(transfer_started, timeout=15)
        # At this point the joiner's subview-set must contain the primary.
        eview = node.evs_member.eview
        primary = eview.primary_subview(5)
        assert primary is not None
        assert primary <= eview.subview_set_of(victim)
        load.stop()

    def test_joiner_enqueues_after_merge(self):
        cluster, load, victim = recovering_evs_cluster()
        node = cluster.nodes[victim]
        assert cluster.await_condition(
            lambda: node.reconfig.enqueue_mode, timeout=15
        )
        load.stop()


class TestRuleIII:
    def test_subview_merge_only_after_catch_up(self):
        cluster, load, victim = recovering_evs_cluster()
        node = cluster.nodes[victim]
        assert cluster.await_condition(
            lambda: node.status is SiteStatus.ACTIVE, timeout=40
        )
        # By the time the merge made it active, it had fully caught up.
        assert not node.reconfig.enqueued
        assert node.evs_member.in_primary_subview()
        load.stop()
        cluster.settle(0.5)
        cluster.check()

    def test_all_members_see_joiner_in_primary_subview(self):
        cluster, load, victim = recovering_evs_cluster()
        assert cluster.await_condition(
            lambda: cluster.nodes[victim].status is SiteStatus.ACTIVE, timeout=40
        )
        cluster.settle(0.2)
        for node in cluster.nodes.values():
            primary = node.evs_member.eview.primary_subview(5)
            assert primary is not None and victim in primary
        load.stop()


class TestRuleI4:
    def test_member_leaving_primary_subview_stops_transfers(self):
        cluster, load, victim = recovering_evs_cluster()

        def transfer_started():
            return any(n.alive and n.reconfig.sessions_out.get(victim)
                       for n in cluster.nodes.values())

        assert cluster.await_condition(transfer_started, timeout=15)
        peer = next(s for s, n in cluster.nodes.items()
                    if n.alive and n.reconfig.sessions_out.get(victim))
        # Isolate the peer: it leaves the primary view and subview.
        others = [s for s in cluster.universe if s != peer]
        cluster.partition([others, [peer]])
        assert cluster.await_condition(
            lambda: not cluster.nodes[peer].reconfig.sessions_out, timeout=15
        )
        assert cluster.nodes[peer].status is SiteStatus.STALLED
        cluster.heal()
        for site in cluster.universe:
            if not cluster.nodes[site].alive:
                cluster.recover(site)
        assert cluster.await_all_active(timeout=60)
        load.stop()
        cluster.settle(0.5)
        cluster.check()
