"""Mid-transfer silent stalls: the serving peer's transfer channel goes
one-way-dead (data lost, everything else flows), and the joiner must
still finish its catch-up — via its stall watchdog and peer fail-over —
without any view change being forced."""

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.checkers import (
    check_convergence,
    check_decision_agreement,
    check_gid_consistency,
    check_one_copy_serializability,
)
from repro.faults.injectors import FaultInjector, site_of


class XferBlackout(FaultInjector):
    """Drop transfer-channel traffic *into* one site, leaving the group
    communication endpoints untouched — a silent stall, invisible to the
    failure detector."""

    def __init__(self, dst_site: str) -> None:
        self.dst_site = dst_site

    def transform(self, src, dst, payload, delays, rng, now):
        if dst.endswith(":xfer") and site_of(dst) == self.dst_site:
            return []
        return delays


def test_stalled_transfer_fails_over_without_view_change(backend):
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=5150,
                             strategy="rectable", backend=backend).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)

    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.3)
    cluster.crash("S3")
    cluster.run_for(0.5)

    # Black out S3's inbound transfer channel *before* it rejoins: every
    # offer and batch from the elected peer silently vanishes while all
    # GCS traffic (including S3's own solicits, which travel outbound)
    # still flows.
    blackout = cluster.network.add_injector(XferBlackout("S3"))
    cluster.recover("S3")

    joiner = cluster.nodes["S3"].reconfig
    # Let the stall watchdog observe at least one full silent window.
    deadline = cluster.sim.now + 5.0
    while cluster.sim.now < deadline and joiner.transfer_stalls == 0:
        cluster.run_for(0.1)
    assert joiner.transfer_stalls >= 1, "joiner watchdog never detected the stall"
    assert not cluster.nodes["S3"].up_to_date

    views_at_stall = {
        site: node.member.view.view_id
        for site, node in cluster.nodes.items()
        if site != "S3"
    }

    # Heal the channel: the next solicited peer's offer now gets through
    # and recovery completes — no view change required.
    cluster.network.remove_injector(blackout)
    assert cluster.await_all_active(timeout=20), "joiner never recovered after heal"
    assert joiner.solicits_sent >= 1

    views_after = {
        site: node.member.view.view_id
        for site, node in cluster.nodes.items()
        if site != "S3"
    }
    assert views_after == views_at_stall, "recovery forced a view change"

    cluster.run_for(0.5)
    load.stop()
    cluster.settle(2.0)
    check_gid_consistency(cluster.history)
    check_decision_agreement(cluster.history)
    check_one_copy_serializability(cluster.history)
    check_convergence(list(cluster.nodes.values()))


def test_peer_failover_serves_solicited_joiner(backend):
    """When the elected peer itself is the dead link, a *different*
    up-to-date member answers the joiner's solicit (fail-over), observed
    through the serving-side counter."""
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=4242,
                             strategy="rectable", backend=backend).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)

    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.3)
    cluster.crash("S3")
    cluster.run_for(0.5)

    # Peer election is deterministic (round-robin over sorted up-to-date
    # members): the single joiner S3 always gets S1.  Kill exactly S1's
    # transfer path towards S3 *before* the rejoin, so the elected
    # peer's session is silently stillborn and only a fail-over to S2
    # can complete the recovery.
    class OneWayXfer(FaultInjector):
        def transform(self, src, dst, payload, delays, rng, now):
            if (site_of(src) == "S1" and site_of(dst) == "S3"
                    and dst.endswith(":xfer")):
                return []
            return delays

    cluster.network.add_injector(OneWayXfer())
    cluster.recover("S3")
    assert cluster.await_all_active(timeout=30), "fail-over did not complete"
    failovers = sum(n.reconfig.transfer_failovers for n in cluster.nodes.values())
    assert failovers >= 1, "no peer served the solicited joiner"

    load.stop()
    cluster.settle(2.0)
    check_decision_agreement(cluster.history)
    check_convergence(list(cluster.nodes.values()))
