"""Integration: cascading reconfigurations (section 5) — peer/joiner
failures during the data transfer, and the Figure 1 / Figure 2 scenarios."""

import pytest

from repro import LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus
from repro.scenarios import run_figure1_scenario
from tests.conftest import quick_cluster


def slow_transfer_cluster(mode="vs", strategy="full", n_sites=5, seed=5):
    node_config = NodeConfig(transfer_obj_time=0.002, transfer_batch_size=20)
    cluster = quick_cluster(n_sites=n_sites, db_size=300, strategy=strategy,
                            mode=mode, seed=seed, node_config=node_config)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)
    return cluster, load


def start_recovery(cluster, victim):
    cluster.crash(victim)
    cluster.run_for(0.5)
    cluster.recover(victim)

    def transfer_running():
        return any(
            node.alive and node.reconfig.sessions_out.get(victim)
            for node in cluster.nodes.values()
        )

    assert cluster.await_condition(transfer_running, timeout=10)
    return next(
        site for site, node in cluster.nodes.items()
        if node.alive and node.reconfig.sessions_out.get(victim)
    )


class TestPeerFailure:
    @pytest.mark.parametrize("mode,strategy", [
        ("vs", "full"), ("vs", "rectable"), ("vs", "lazy"),
        ("evs", "full"), ("evs", "lazy"),
    ])
    def test_new_peer_takes_over(self, mode, strategy):
        cluster, load = slow_transfer_cluster(mode=mode, strategy=strategy)
        peer = start_recovery(cluster, "S5")
        # Strike early: the rectable transfer window is ~0.1s of virtual
        # time, and the crash must land while the session is still open.
        cluster.run_for(0.05)
        cluster.crash(peer)
        ok = cluster.await_condition(
            lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()
        # A second transfer session was opened by the replacement peer.
        started = sum(n.reconfig.transfers_started for n in cluster.nodes.values())
        assert started >= 2

    def test_lazy_failover_resumes_not_restarts(self):
        """Section 4.7: the new peer continues from the joiner's reported
        progress instead of transferring everything again."""
        cluster, load = slow_transfer_cluster(strategy="lazy")
        peer = start_recovery(cluster, "S5")
        # Let at least one full round land so resume info exists.
        cluster.await_condition(
            lambda: cluster.nodes["S5"].reconfig._resume_through
            > cluster.nodes["S5"].db.cover_gid(),
            timeout=20,
        )
        first_round_bytes = cluster.nodes["S5"].reconfig.bytes_received_total
        cluster.crash(peer)
        ok = cluster.await_condition(
            lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        total = cluster.nodes["S5"].reconfig.objects_received_total
        # Resume means total received stays well below two full copies.
        assert total < 2 * 300
        cluster.check()

    def test_full_strategy_failover_restarts(self):
        cluster, load = slow_transfer_cluster(strategy="full")
        peer = start_recovery(cluster, "S5")
        cluster.run_for(0.2)  # some batches landed
        received_before = cluster.nodes["S5"].reconfig.objects_received_total
        assert received_before > 0
        cluster.crash(peer)
        ok = cluster.await_condition(
            lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        # Restart: the replacement sent (at least) a whole copy again.
        assert cluster.nodes["S5"].reconfig.objects_received_total >= 300
        cluster.check()


class TestJoinerFailure:
    def test_transfer_stops_when_joiner_dies(self):
        cluster, load = slow_transfer_cluster(strategy="full")
        peer = start_recovery(cluster, "S5")
        cluster.run_for(0.1)
        cluster.crash("S5")
        cluster.await_condition(
            lambda: not cluster.nodes[peer].reconfig.sessions_out.get("S5"), timeout=15
        )
        assert "S5" not in cluster.nodes[peer].reconfig.sessions_out
        load.stop()
        cluster.settle(0.5)
        # Peer released all transfer locks: processing is unimpeded.
        assert not any(
            owner.startswith("xfer:")
            for owner_map in cluster.nodes[peer].db.locks._holders.values()
            for owner in owner_map
        )
        cluster.check()

    def test_joiner_crash_then_second_recovery(self):
        cluster, load = slow_transfer_cluster(strategy="rectable")
        start_recovery(cluster, "S5")
        cluster.run_for(0.1)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=40
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()


class TestFigureScenarios:
    def test_figure1_vs(self):
        report = run_figure1_scenario(mode="vs", strategy="rectable", seed=17)
        assert report.completed
        assert report.announcements >= 1  # the plain-VS sub-protocol ran
        assert report.svs_merges == 0 and report.sv_merges == 0

    def test_figure2_evs(self):
        report = run_figure1_scenario(mode="evs", strategy="rectable", seed=17)
        assert report.completed
        assert report.announcements == 0  # structural: no announcements
        assert report.svs_merges >= 1 and report.sv_merges >= 1

    def test_scenario_with_lazy_strategy(self):
        report = run_figure1_scenario(mode="vs", strategy="lazy", seed=19)
        assert report.completed
