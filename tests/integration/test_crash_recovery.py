"""Integration: single-site crash and online recovery, all strategies."""

import pytest

from repro.reconfig.strategies import ALL_STRATEGY_NAMES
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster, run_load


def crash_recover_cycle(cluster, victim="S3", down=0.6, rate=120.0):
    from repro import LoadGenerator, WorkloadConfig

    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=rate, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.6)
    cluster.crash(victim)
    cluster.run_for(down)
    cluster.recover(victim)
    rejoined = cluster.await_condition(
        lambda: cluster.nodes[victim].status is SiteStatus.ACTIVE, timeout=30
    )
    load.stop()
    cluster.settle(1.0)
    return load, rejoined


class TestAllStrategies:
    @pytest.mark.parametrize("strategy", ALL_STRATEGY_NAMES)
    def test_rejoin_and_consistency_vs(self, strategy):
        cluster = quick_cluster(db_size=80, strategy=strategy)
        _, rejoined = crash_recover_cycle(cluster)
        assert rejoined
        cluster.check()

    @pytest.mark.parametrize("strategy", ["full", "rectable", "lazy", "log_filter"])
    def test_rejoin_and_consistency_evs(self, strategy):
        cluster = quick_cluster(n_sites=5, db_size=80, strategy=strategy, mode="evs")
        _, rejoined = crash_recover_cycle(cluster, victim="S5")
        assert rejoined
        cluster.check()

    @pytest.mark.parametrize("strategy", ["rectable", "lazy"])
    def test_rejoin_and_consistency_backends(self, backend, strategy):
        """Conformance: rejoin + 1CS hold on every backend."""
        cluster = quick_cluster(db_size=80, strategy=strategy, backend=backend)
        _, rejoined = crash_recover_cycle(cluster)
        assert rejoined
        cluster.check()


class TestRecoverySemantics:
    def test_recovered_site_serves_reads_of_new_state(self, backend):
        cluster = quick_cluster(db_size=30, backend=backend)
        cluster.submit_via("S1", [], {"obj0": "pre-crash"})
        cluster.settle(0.3)
        cluster.crash("S3")
        cluster.submit_via("S1", [], {"obj0": "while-down"})
        cluster.settle(0.3)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=20
        )
        assert cluster.nodes["S3"].db.store.value("obj0") == "while-down"

    def test_local_transactions_aborted_on_crash(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S3", ["obj0", "obj1"], {"obj2": 1})
        cluster.crash("S3")  # immediately, mid read-phase
        assert txn.aborted

    def test_missed_writes_arrive_via_transfer_not_messages(self):
        cluster = quick_cluster(db_size=30, strategy="version_check")
        cluster.crash("S3")
        for i in range(5):
            cluster.submit_via("S1", [], {f"obj{i}": f"v{i}"})
        cluster.settle(0.5)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=20
        )
        for i in range(5):
            assert cluster.nodes["S3"].db.store.value(f"obj{i}") == f"v{i}"
        cluster.check()

    def test_filtered_strategy_sends_only_changed_objects(self):
        cluster = quick_cluster(db_size=200, strategy="rectable")
        cluster.crash("S3")
        for i in range(8):
            cluster.submit_via("S1", [], {f"obj{i}": i})
        cluster.settle(0.5)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=20
        )
        sent = sum(n.reconfig.objects_sent_total for n in cluster.nodes.values())
        assert sent <= 16  # roughly the changed set, not the whole database

    def test_full_strategy_sends_whole_database(self):
        cluster = quick_cluster(db_size=200, strategy="full")
        cluster.crash("S3")
        cluster.submit_via("S1", [], {"obj0": 1})
        cluster.settle(0.5)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=20
        )
        sent = sum(n.reconfig.objects_sent_total for n in cluster.nodes.values())
        assert sent >= 200

    def test_transactions_continue_during_transfer(self):
        """Online reconfiguration: the remaining sites keep committing
        while the joiner is brought up to date."""
        from repro import NodeConfig

        cluster = quick_cluster(
            db_size=400, strategy="rectable",
            node_config=NodeConfig(transfer_obj_time=0.002),
        )
        load, rejoined = crash_recover_cycle(cluster, down=1.0, rate=100)
        assert rejoined
        assert len(load.committed()) > 100

    def test_repeated_crash_recover_cycles(self):
        cluster = quick_cluster(db_size=60, strategy="rectable")
        for _ in range(3):
            _, rejoined = crash_recover_cycle(cluster, down=0.4)
            assert rejoined
        cluster.check()

    def test_two_sites_down_sequentially(self):
        cluster = quick_cluster(n_sites=5, db_size=60, strategy="rectable")
        _, ok1 = crash_recover_cycle(cluster, victim="S5", down=0.4)
        _, ok2 = crash_recover_cycle(cluster, victim="S4", down=0.4)
        assert ok1 and ok2
        cluster.check()

    def test_two_concurrent_joiners(self, backend):
        from repro import LoadGenerator, WorkloadConfig

        cluster = quick_cluster(n_sites=5, db_size=80, strategy="rectable",
                                backend=backend)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S4")
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S4")
        cluster.recover("S5")
        ok = cluster.await_all_active(timeout=30)
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()

    def test_peers_share_concurrent_joiners(self):
        """Peer election spreads joiners round-robin over up-to-date sites."""
        cluster = quick_cluster(n_sites=5, db_size=80, strategy="rectable")
        cluster.crash("S4")
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S4")
        cluster.recover("S5")
        assert cluster.await_all_active(timeout=30)
        peers_used = [
            site for site, node in cluster.nodes.items()
            if node.reconfig.transfers_started > 0
        ]
        assert len(peers_used) >= 2


class TestCoverTransaction:
    def test_cover_reported_in_flush_state(self):
        cluster = quick_cluster()
        state = cluster.nodes["S1"].flush_state()
        assert "repl" in state and "cover" in state["repl"]

    def test_cover_advances_with_commits(self):
        cluster = quick_cluster()
        before = cluster.nodes["S1"].db.cover_gid()
        run_load(cluster, duration=0.5)
        assert cluster.nodes["S1"].db.cover_gid() > before

    def test_recovered_site_cover_below_missed_work(self):
        cluster = quick_cluster(db_size=30)
        run_load(cluster, duration=0.3)
        cover_at_crash = cluster.nodes["S3"].db.cover_gid()
        cluster.crash("S3")
        run_load(cluster, duration=0.3)
        from repro.db.database import Database

        recovered, result = Database.recover_from(cluster.nodes["S3"].storage)
        assert result.cover_gid <= cover_at_crash + 5
