"""Pinned regression seeds from the loss-fuzzing campaign.

Each of these exact configurations once produced a safety violation
(see EXPERIMENTS.md, "Hardening findings"); they must stay green.
"""

import pytest

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.checkers import (
    check_decision_agreement,
    check_gid_consistency,
    check_one_copy_serializability,
)

CASES = [
    # (seed, loss, fault) -> the bug the run originally exposed
    (101, 0.10, "none"),       # silent staleness: lost SYNC, stale utd claim
    (101, 0.05, "crash"),      # joiner gseq gap -> join restart
    (0, 0.02, "partition"),    # stale version tags vs transferred state
    (408, 0.10, "partition"),  # replay races a replacement session
]


@pytest.mark.parametrize("seed,loss,fault", CASES)
def test_pinned_loss_regressions(seed, loss, fault):
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=seed,
                             strategy="rectable", loss_rate=loss).build()
    cluster.start()
    if not cluster.await_all_active(timeout=20):
        pytest.skip("bootstrap did not finish under loss (liveness, not safety)")
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)
    if fault == "crash":
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
    elif fault == "partition":
        cluster.partition([["S1", "S2"], ["S3"]])
        cluster.run_for(0.8)
        cluster.heal()
    elif fault == "none":
        cluster.run_for(1.0)
    cluster.run_for(1.0)
    load.stop()
    cluster.settle(2.0)
    check_gid_consistency(cluster.history)
    check_decision_agreement(cluster.history)
    check_one_copy_serializability(cluster.history)
