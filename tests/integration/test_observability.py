"""End-to-end tests for the observability layer on a live cluster."""

import json

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.obs import attach_observability, chrome_trace, collect_cluster_metrics
from repro.replication.node import SiteStatus


def observed_recovery_run(seed=7, observe=True):
    """A crash + recovery under load; optionally with obs attached."""
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=seed,
                             strategy="rectable").build()
    obs = attach_observability(cluster) if observe else None
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80.0))
    load.start()
    cluster.run_for(0.3)
    cluster.crash("S3")
    cluster.run_for(0.5)
    cluster.recover("S3")
    assert cluster.await_condition(
        lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30)
    cluster.run_for(0.3)
    load.stop()
    cluster.settle(0.5)
    cluster.check()
    return cluster, obs


class TestObservedRecovery:
    def test_spans_cover_transactions_and_reconfiguration(self):
        cluster, obs = observed_recovery_run()
        run = obs.run_data("integration run")

        txn_roots = [s for s in run.spans if s.category == "txn"]
        assert txn_roots, "no transaction spans recorded"
        finished = [s for s in txn_roots if not s.attrs.get("open_at_end")]
        assert finished, "every txn span was still open at end of run"
        assert all(s.end >= s.start for s in run.spans if s.end is not None)

        reconfig = [s for s in run.spans if s.category == "reconfig"]
        assert len(reconfig) == 1, "expected exactly one recovery span"
        root = reconfig[0]
        assert root.site == "S3" and root.end is not None
        phases = {s.name for s in run.spans
                  if s.category == "phase" and s.parent_id == root.span_id}
        assert "state_transfer" in phases
        assert "replay" in phases
        # The serving peer's span is parented cross-site to the recovery.
        assert any(s.name == "serve S3" and s.site != "S3" for s in run.spans
                   if s.parent_id == root.span_id)

    def test_chrome_export_is_valid_and_metrics_flow(self, tmp_path):
        cluster, obs = observed_recovery_run()
        trace = chrome_trace(obs.run_data("export run"))
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        reloaded = json.loads(path.read_text())
        events = reloaded["traceEvents"]
        assert events
        assert all("ts" in e for e in events if e["ph"] != "M")

        snapshot = obs.snapshot()
        counters = snapshot["counters"]
        assert counters["txn.commits"] > 0
        assert counters["xfer.transfers_completed"] >= 1
        # Push-side histograms saw traffic while attached.
        histograms = snapshot["histograms"]
        assert histograms["net.delivery_batch_size"]["count"] > 0
        assert histograms["xfer.chunk_objects"]["count"] >= 1

    def test_attach_is_idempotent(self):
        cluster, obs = observed_recovery_run()
        assert cluster.attach_observability() is obs

    def test_observation_does_not_change_outcomes(self):
        """Same seed, with and without obs => identical commit counts."""
        observed, _ = observed_recovery_run(seed=11, observe=True)
        bare, _ = observed_recovery_run(seed=11, observe=False)
        with_obs = collect_cluster_metrics(observed)
        without = collect_cluster_metrics(bare)
        for key in ("txn.commits", "txn.aborts", "txn.site_commits",
                    "net.messages_sent", "gcs.views_installed"):
            assert with_obs[key] == without[key], key
        assert with_obs["sim.virtual_time"] == without["sim.virtual_time"]
