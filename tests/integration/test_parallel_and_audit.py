"""Integration tests for the parallel fleet and the determinism audit.

Three end-to-end guarantees:

* ``bench --jobs N`` is *invisible* in the output: the deterministic
  payload produced by a 2-worker run is byte-identical to the serial
  run's (only wall-clock fields may differ, and they are stripped).
* ``repro audit`` passes on a pinned chaos regression case — the
  determinism claim the whole gate rests on actually holds.
* The auditor is not vacuous: with the ``REPRO_AUDIT_SABOTAGE`` hook
  injecting real nondeterminism (a perturbed seed on the second run),
  the audit must fail, name the diverging digests, write dump
  artifacts, and print a minimal repro command.
"""

import json

from repro.audit import SABOTAGE_ENV, run_audit
from repro.bench import deterministic_payload, run_matrix


def canonical(results):
    return json.dumps(deterministic_payload(results), sort_keys=True,
                      indent=2)


def test_bench_jobs_payload_identical_to_serial():
    serial = run_matrix(smoke=True, only=["figure1", "chaos"], jobs=1)
    fleet = run_matrix(smoke=True, only=["figure1", "chaos"], jobs=2)
    assert canonical(fleet) == canonical(serial)


def test_audit_passes_on_pinned_chaos_case():
    outcome = run_audit(["chaos:vs:23"], jobs=1)
    assert outcome.ok
    assert outcome.passed == ["chaos:vs:23"]


def test_audit_fails_on_injected_nondeterminism(monkeypatch, tmp_path):
    monkeypatch.setenv(SABOTAGE_ENV, "1")
    outcome = run_audit(["chaos:vs:23"], jobs=1, dump_dir=str(tmp_path))
    assert not outcome.ok
    failure = outcome.failures[0]
    assert failure.axis == "determinism"
    assert failure.diverging_keys  # digest keys are named
    assert failure.repro == \
        "PYTHONPATH=src python -m repro audit --case chaos:vs:23"
    assert "chaos:vs:23" in failure.render()
    # Divergence dumps were written for both runs of the pair.
    dumps = sorted(p.name for p in tmp_path.iterdir())
    assert len(dumps) == 2
    assert "dumps:" in failure.detail
    # The sabotage hook must not leak into ordinary runs: with the env
    # cleared the same case is deterministic again.
    monkeypatch.delenv(SABOTAGE_ENV)
    assert run_audit(["chaos:vs:23"], jobs=1).ok
