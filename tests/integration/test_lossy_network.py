"""End-to-end runs over a lossy network: the retransmission machinery
(NAKs, DATA resends, offer retries) must keep every guarantee intact —
only latency may suffer."""

import pytest

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.replication.node import SiteStatus


def lossy_cluster(loss_rate, seed=101, **kwargs):
    defaults = dict(n_sites=3, db_size=40, strategy="rectable")
    defaults.update(kwargs)
    cluster = ClusterBuilder(seed=seed, loss_rate=loss_rate, **defaults).build()
    cluster.start()
    assert cluster.await_all_active(timeout=20), "bootstrap under loss failed"
    return cluster


class TestLossyOperation:
    @pytest.mark.parametrize("loss", [0.02, 0.10])
    def test_workload_correct_under_loss(self, loss):
        cluster = lossy_cluster(loss)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(2.0)
        load.stop()
        cluster.settle(3.0)
        cluster.check()
        assert len(load.committed()) > 50

    def test_recovery_completes_under_loss(self):
        cluster = lossy_cluster(0.05)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=60
        )
        load.stop()
        cluster.settle(2.0)
        assert ok
        cluster.check()

    def test_lazy_transfer_under_loss(self):
        cluster = lossy_cluster(0.05, strategy="lazy")
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=60
        )
        load.stop()
        cluster.settle(2.0)
        assert ok
        cluster.check()

    def test_partition_heal_under_loss(self):
        cluster = lossy_cluster(0.05, n_sites=5, db_size=40)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                     reads_per_txn=1, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
        cluster.run_for(1.0)
        cluster.heal()
        ok = cluster.await_all_active(timeout=60)
        load.stop()
        cluster.settle(2.0)
        assert ok
        cluster.check()
