"""Tests for the conservative replica-control variant (no version check,
reads execute at delivery in total order) and the paper's claim that
reconfiguration is scheme-agnostic."""

import pytest

from repro import LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster, run_load


def conservative_cluster(**kwargs):
    defaults = dict(db_size=40, node_config=NodeConfig(protocol="conservative"))
    defaults.update(kwargs)
    return quick_cluster(**defaults)


class TestConservativeExecution:
    def test_write_commits_everywhere(self):
        cluster = conservative_cluster()
        txn = cluster.submit_via("S1", [], {"obj0": "x"})
        cluster.settle(0.3)
        assert txn.committed
        for node in cluster.nodes.values():
            assert node.db.store.value("obj0") == "x"

    def test_reads_execute_at_delivery(self):
        cluster = conservative_cluster()
        cluster.submit_via("S1", [], {"obj0": "written"})
        cluster.settle(0.3)
        txn = cluster.submit_via("S2", ["obj0"], {})
        cluster.settle(0.3)
        assert txn.committed
        assert txn.read_results == {"obj0": "written"}

    def test_no_aborts_under_contention(self):
        """The defining property: conflicting read-modify-writes are
        serialized by the total order instead of aborting."""
        cluster = conservative_cluster()
        a = cluster.submit_via("S1", ["obj0"], {"obj0": "a"})
        b = cluster.submit_via("S2", ["obj0"], {"obj0": "b"})
        cluster.settle(0.3)
        assert a.committed and b.committed
        # The later gid's write wins; all replicas agree.
        winner = a if a.gid > b.gid else b
        for node in cluster.nodes.values():
            assert node.db.store.value("obj0") == winner.writes["obj0"]

    def test_read_sees_prior_writer_in_gid_order(self):
        cluster = conservative_cluster()
        w = cluster.submit_via("S1", [], {"obj0": "first"})
        r = cluster.submit_via("S2", ["obj0"], {})
        cluster.settle(0.3)
        assert w.committed and r.committed
        if r.gid > w.gid:
            assert r.read_results["obj0"] == "first"
        else:
            assert r.read_results["obj0"] == 0

    def test_workload_conserves_consistency(self):
        cluster = conservative_cluster()
        load = run_load(cluster, duration=1.0, rate=150)
        assert load.abort_rate() == 0.0
        assert not load.unresolved()
        cluster.check()

    def test_zero_aborts_vs_certification_contention(self):
        rates = {}
        for protocol in ("certification", "conservative"):
            cluster = quick_cluster(db_size=4, seed=61,
                                    node_config=NodeConfig(protocol=protocol))
            load = run_load(cluster, duration=1.0, rate=200, reads=2, writes=2)
            rates[protocol] = load.abort_rate()
            cluster.check()
        assert rates["conservative"] == 0.0
        assert rates["certification"] > 0.1


class TestSchemeAgnosticReconfiguration:
    """Section 2.2: "reconfiguration associated with other replica or
    concurrency control schemes will be very similar" — here: identical."""

    @pytest.mark.parametrize("strategy", ["full", "rectable", "lazy"])
    def test_crash_recovery_under_conservative(self, strategy):
        cluster = conservative_cluster(strategy=strategy, db_size=60)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                     reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()

    def test_partition_heal_under_conservative(self):
        cluster = conservative_cluster(n_sites=5, db_size=50)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100,
                                                     reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
        cluster.run_for(1.0)
        cluster.heal()
        ok = cluster.await_all_active(timeout=30)
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()

    def test_evs_mode_under_conservative(self):
        cluster = conservative_cluster(mode="evs", n_sites=5, db_size=50)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=80,
                                                     reads_per_txn=1,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        ok = cluster.await_condition(
            lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=30
        )
        load.stop()
        cluster.settle(1.0)
        assert ok
        cluster.check()
