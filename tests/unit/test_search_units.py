"""Unit tests for the adversarial search building blocks: genome
serialization, policy-bounded generation/mutation, the ddmin shrinker
against synthetic predicates, multi-window availability reporting, and
the shared artifact renderer."""

import json
import random

import pytest

from repro.checkers import availability_violations, check_availability_floor
from repro.checkers import ConsistencyViolation
from repro.obs.epochs import EpochRecord
from repro.search.genome import (
    CorruptGene,
    CrashGene,
    PartitionGene,
    QuietGene,
    RestartGene,
    ScheduleGenome,
    SearchSpace,
    gene_from_dict,
    gene_to_dict,
    mutate,
    random_genome,
)
from repro.search.shrink import shrink


def genome_of(*genes, seed=3, n_sites=5):
    return ScheduleGenome(seed=seed, n_sites=n_sites, segments=tuple(genes))


class TestGenomeSerialization:
    def test_gene_round_trip_every_kind(self):
        genes = [
            CrashGene(victims=(0, 2), downtime=0.25, stagger=0.02),
            PartitionGene(minority=(1, 3), hold=0.4, settle=0.1,
                          shatter=True),
            RestartGene(victims=(4,), hold=0.2),
            CorruptGene(victim=2, op="lost_suffix", downtime=0.3),
            QuietGene(duration_s=0.5),
        ]
        for gene in genes:
            assert gene_from_dict(gene_to_dict(gene)) == gene

    def test_genome_json_round_trip(self):
        genome = genome_of(CrashGene(victims=(0, 1), downtime=0.2),
                           QuietGene(duration_s=0.3))
        again = ScheduleGenome.loads(genome.dumps())
        assert again == genome
        assert again.digest() == genome.digest()

    def test_dumps_is_canonical_json(self):
        genome = genome_of(QuietGene(duration_s=0.1))
        payload = json.loads(genome.dumps())
        assert payload == json.loads(
            json.dumps(payload, sort_keys=True, indent=2))

    def test_unknown_gene_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown gene kind"):
            gene_from_dict({"kind": "meteor", "victims": [0]})

    def test_unknown_corruption_op_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption op"):
            CorruptGene(victim=0, op="bitrot", downtime=0.1)


class TestGenerationBounds:
    def test_random_genomes_respect_the_policy_limit(self):
        rng = random.Random(42)
        space = SearchSpace(n_sites=5)
        limit = space.concurrency_limit()
        assert limit == 2
        for _ in range(200):
            genome = random_genome(rng, space)
            assert (space.min_genes <= len(genome.segments)
                    <= space.max_genes)
            for gene in genome.segments:
                for group in (getattr(gene, "victims", ()),
                              getattr(gene, "minority", ())):
                    assert len(group) <= limit
                    assert all(0 <= v < space.n_sites for v in group)

    def test_mutation_stays_inside_bounds(self):
        rng = random.Random(7)
        space = SearchSpace(n_sites=5)
        genome = random_genome(rng, space)
        for _ in range(300):
            genome = mutate(rng, genome, space)
            assert (space.min_genes <= len(genome.segments)
                    <= space.max_genes)
            assert 0 <= genome.seed < space.seeds
            for gene in genome.segments:
                for group in (getattr(gene, "victims", ()),
                              getattr(gene, "minority", ())):
                    assert len(group) <= space.concurrency_limit()

    def test_mutation_changes_something(self):
        rng = random.Random(1)
        space = SearchSpace(n_sites=5)
        genome = random_genome(rng, space)
        assert any(mutate(rng, genome, space) != genome for _ in range(10))


class TestShrinker:
    def test_single_culprit_gene_isolated(self):
        culprit = CorruptGene(victim=1, op="outcome_amnesia", downtime=0.2)
        filler = [QuietGene(duration_s=0.3) for _ in range(5)]
        genome = genome_of(*(filler[:3] + [culprit] + filler[3:]))

        minimal, evals = shrink(
            genome, lambda g: culprit in g.segments, budget=200)
        assert list(minimal.segments) == [culprit]
        assert evals > 0

    def test_durations_reduced_to_the_floor(self):
        genome = genome_of(QuietGene(duration_s=0.64))
        minimal, _ = shrink(genome, lambda g: True, budget=200)
        assert len(minimal.segments) == 1
        assert minimal.segments[0].duration_s == pytest.approx(0.01)

    def test_result_never_fails_the_predicate(self):
        # Predicate needs BOTH crash genes: the pair survives, the rest
        # goes.
        a = CrashGene(victims=(0,), downtime=0.2)
        b = CrashGene(victims=(1,), downtime=0.3)
        genome = genome_of(QuietGene(duration_s=0.2), a,
                           RestartGene(victims=(2,), hold=0.1), b)

        def needs_both(g):
            kinds = [gene for gene in g.segments
                     if isinstance(gene, CrashGene)]
            return a.victims in [k.victims for k in kinds] and \
                b.victims in [k.victims for k in kinds]

        minimal, _ = shrink(genome, needs_both, budget=300)
        assert needs_both(minimal)
        assert minimal.schedule_size() <= genome.schedule_size()

    def test_budget_bounds_evaluations(self):
        genome = genome_of(*[QuietGene(duration_s=0.5) for _ in range(6)])
        _, evals = shrink(genome, lambda g: True, budget=5)
        assert evals <= 5


def bins(spec, bin_width=0.25, start=0.25):
    samples, t = [], start
    for ch in spec:
        samples.append((t, 0 if ch in "m0" else 5, ch == "m"))
        t += bin_width
    return samples


class TestMultiWindowViolations:
    def test_every_violating_window_reported_longest_first(self):
        spans = availability_violations(
            bins("##00000##0000####"), window=1.0, bin_width=0.25)
        assert [round(s.duration, 2) for s in spans] == [1.25, 1.0]

    def test_min_span_returns_partial_damage(self):
        spans = availability_violations(
            bins("##00##"), window=1.0, bin_width=0.25, min_span=0.25)
        assert len(spans) == 1
        assert spans[0].duration == pytest.approx(0.5)

    def test_checker_message_lists_all_windows(self):
        with pytest.raises(ConsistencyViolation) as err:
            check_availability_floor(bins("##00000##0000##"),
                                     window=1.0, bin_width=0.25)
        message = str(err.value)
        assert "2 window(s)" in message
        assert message.count("t=") == 4  # two start..end pairs

    def test_epoch_classification_blocked_vs_uncovered(self):
        # One dark span fully inside a reconfiguration epoch (blocked),
        # one with no epoch anywhere near it (uncovered).
        epochs = [EpochRecord(site="S1", trigger="crash", start=0.4,
                              end=2.0)]
        spans = availability_violations(
            bins("##0000##u00000##".replace("u", "#")),
            window=1.0, bin_width=0.25, epochs=epochs)
        by_start = sorted(spans, key=lambda s: s.start)
        assert by_start[0].covered is True
        assert by_start[1].covered is False
        assert "[blocked]" in by_start[0].describe()
        assert "[uncovered]" in by_start[1].describe()
