"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["recover"])
        assert args.strategy == "rectable"
        assert args.mode == "vs"
        assert args.downtime == 1.0

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover", "--strategy", "magic"])


class TestCommands:
    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("full", "version_check", "rectable", "log_filter",
                     "lazy", "gcs_level"):
            assert name in out

    def test_demo_runs_and_checks(self, capsys):
        assert main(["demo", "--duration", "0.5", "--db-size", "30",
                     "--rate", "60"]) == 0
        out = capsys.readouterr().out
        assert "all correctness checks passed" in out

    def test_recover_reports_metrics(self, capsys):
        assert main(["recover", "--db-size", "60", "--downtime", "0.4",
                     "--rate", "80"]) == 0
        out = capsys.readouterr().out
        assert "rejoined:        True" in out
        assert "objects_sent" in out

    def test_figure1_vs(self, capsys):
        assert main(["figure1", "--seed", "17"]) == 0
        out = capsys.readouterr().out
        assert "completed:             True" in out

    def test_trace_prints_timeline(self, capsys):
        assert main(["trace", "--db-size", "40", "--downtime", "0.4",
                     "--rate", "60"]) == 0
        out = capsys.readouterr().out
        assert "transfer" in out and "recovery of S3: completed" in out
