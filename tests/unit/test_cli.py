"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["recover"])
        assert args.strategy == "rectable"
        assert args.mode == "vs"
        assert args.downtime == 1.0

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover", "--strategy", "magic"])


class TestCommands:
    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("full", "version_check", "rectable", "log_filter",
                     "lazy", "gcs_level"):
            assert name in out

    def test_demo_runs_and_checks(self, capsys):
        assert main(["demo", "--duration", "0.5", "--db-size", "30",
                     "--rate", "60"]) == 0
        out = capsys.readouterr().out
        assert "all correctness checks passed" in out

    def test_recover_reports_metrics(self, capsys):
        assert main(["recover", "--db-size", "60", "--downtime", "0.4",
                     "--rate", "80"]) == 0
        out = capsys.readouterr().out
        assert "rejoined:        True" in out
        assert "objects_sent" in out

    def test_figure1_vs(self, capsys):
        assert main(["figure1", "--seed", "17"]) == 0
        out = capsys.readouterr().out
        assert "completed:             True" in out

    def test_trace_prints_timeline(self, capsys):
        assert main(["trace", "--db-size", "40", "--downtime", "0.4",
                     "--rate", "60"]) == 0
        out = capsys.readouterr().out
        assert "transfer" in out and "recovery of S3: completed" in out


class TestReportCommand:
    def test_report_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main(["report", "--db-size", "40", "--rate", "60",
                     "--downtime", "0.5", "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "span durations by phase" in out
        assert "txn (submit -> done)" in out
        for name in ("run.jsonl", "trace.json", "metrics.prom"):
            assert (out_dir / name).exists(), name
        trace = json.loads((out_dir / "trace.json").read_text())
        assert trace["traceEvents"]
        prom = (out_dir / "metrics.prom").read_text()
        assert "# TYPE repro_" in prom

    def test_report_reloads_from_jsonl(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main(["report", "--db-size", "40", "--rate", "60",
                     "--downtime", "0.5", "--out-dir", str(out_dir)]) == 0
        first = capsys.readouterr().out
        assert main(["report", "--input", str(out_dir / "run.jsonl")]) == 0
        second = capsys.readouterr().out
        # The summary re-rendered from the file matches the live one.
        assert "span durations by phase" in second
        assert first.splitlines()[0] == second.splitlines()[0]


class TestChaosObservability:
    def test_chaos_flags_write_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "storm.json"
        prom_path = tmp_path / "storm.prom"
        assert main(["chaos", "--seed", "3", "--duration", "2.0",
                     "--trace", str(trace_path),
                     "--metrics", str(prom_path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert "repro_" in prom_path.read_text()

    def test_chaos_without_flags_writes_nothing(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["chaos", "--seed", "3", "--duration", "2.0"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestAuditDumpDirGuard:
    """The audit CLI must refuse to clobber a non-empty --dump-dir."""

    def test_check_dump_dir_refuses_non_empty(self, tmp_path):
        from repro.audit import check_dump_dir

        (tmp_path / "old_case.a.json").write_text("{}")
        with pytest.raises(ValueError, match="--force"):
            check_dump_dir(str(tmp_path))

    def test_check_dump_dir_allows_force_empty_and_missing(self, tmp_path):
        from repro.audit import check_dump_dir

        (tmp_path / "old_case.a.json").write_text("{}")
        check_dump_dir(str(tmp_path), force=True)
        empty = tmp_path / "fresh"
        empty.mkdir()
        check_dump_dir(str(empty))
        check_dump_dir(str(tmp_path / "not-there"))
        check_dump_dir(None)

    def test_audit_cli_exits_2_before_running_any_case(self, capsys, tmp_path):
        (tmp_path / "stale.b.json").write_text("{}")
        assert main(["audit", "--case", "bench:chaos",
                     "--dump-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "--force" in err and "stale.b.json" in err

    def test_audit_cli_force_accepted_by_parser(self):
        args = build_parser().parse_args(["audit", "--force"])
        assert args.force is True
