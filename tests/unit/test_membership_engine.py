"""Targeted tests for membership-round edge cases: competing rounds,
NACKs, timeouts, force-suspicion and round metrics."""

from repro.gcs.config import GCSConfig
from repro.gcs.messages import Propose, round_priority
from tests.conftest import make_group


class TestRoundPriority:
    def test_higher_epoch_wins(self):
        assert round_priority((2, "S9")) > round_priority((1, "S1"))

    def test_lower_initiator_wins_at_equal_epoch(self):
        assert round_priority((3, "S1")) > round_priority((3, "S2"))

    def test_max_selects_winner(self):
        rounds = [(1, "S2"), (2, "S3"), (2, "S1")]
        assert max(rounds, key=round_priority) == (2, "S1")


class TestCompetingRounds:
    def test_nack_aborts_lower_priority_initiator(self):
        sim, net, members, _ = make_group(3, seed=2)
        sim.run(until=2.0)
        s2 = members["S2"]
        s1 = members["S1"]
        # S2 (not the canonical min-id initiator) starts a round...
        s2.membership._initiate(("S1", "S2", "S3"))
        assert s2.membership.initiating
        # ...and S1 starts a higher-epoch round concurrently.
        s1.fd.note_epoch(s2.membership.current_round[0])
        s1.membership._initiate(("S1", "S2", "S3"))
        sim.run(until=3.0)
        # Exactly one view results, everyone agrees.
        views = {m.view for m in members.values()}
        assert len(views) == 1
        assert s2.membership.rounds_aborted >= 1 or not s2.membership.initiating

    def test_participant_switches_to_better_round(self):
        sim, net, members, _ = make_group(3, seed=2)
        sim.run(until=2.0)
        s3 = members["S3"]
        low = Propose(round_id=(members["S3"].epoch_floor + 1, "S2"),
                      members=("S1", "S2", "S3"))
        high = Propose(round_id=(members["S3"].epoch_floor + 5, "S1"),
                       members=("S1", "S2", "S3"))
        s3.membership.on_propose("S2", low)
        assert s3.membership.current_round == low.round_id
        s3.membership.on_propose("S1", high)
        assert s3.membership.current_round == high.round_id

    def test_propose_excluding_me_ignored(self):
        sim, net, members, _ = make_group(3, seed=2)
        sim.run(until=2.0)
        s3 = members["S3"]
        foreign = Propose(round_id=(99, "S1"), members=("S1", "S2"))
        s3.membership.on_propose("S1", foreign)
        assert s3.membership.current_round is None


class TestTimeouts:
    def test_initiator_timeout_force_suspects_silent_members(self):
        config = GCSConfig(flush_timeout=0.3, round_timeout=0.8)
        sim, net, members, _ = make_group(3, seed=2, config=config)
        sim.run(until=2.0)
        # S3 goes silent; S1 starts a round that still proposes it.
        net.take_down("S3")
        s1 = members["S1"]
        s1.membership._initiate(("S1", "S2", "S3"))
        sim.run(until=6.0)
        # The round aborted (missing FLUSH), S3 was force-suspected, and
        # the group reformed without it.
        assert s1.membership.rounds_aborted >= 1
        assert members["S1"].view.members == ("S1", "S2")
        assert members["S1"].view == members["S2"].view

    def test_participant_sync_timeout_recovers(self):
        """A participant that never receives SYNC must not stay frozen."""
        config = GCSConfig(flush_timeout=0.3, round_timeout=0.6)
        sim, net, members, apps = make_group(3, seed=2, config=config)
        sim.run(until=2.0)
        s3 = members["S3"]
        # Fake a PROPOSE from a round whose initiator will never answer.
        ghost = Propose(round_id=(s3.epoch_floor + 50, "S1"),
                        members=("S1", "S2", "S3"))
        s3.membership.on_propose("S1", ghost)
        assert s3._blocked
        sim.run(until=6.0)
        assert not s3._blocked
        # And the group still works end to end.
        members["S1"].multicast("after-ghost-round")
        sim.run(until=8.0)
        assert "after-ghost-round" in apps["S3"].payloads()

    def test_round_metrics_counted(self):
        sim, net, members, _ = make_group(3, seed=2)
        sim.run(until=2.0)
        total_completed = sum(m.membership.rounds_completed for m in members.values())
        assert total_completed >= 1
