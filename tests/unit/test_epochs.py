"""Unit tests for epoch extraction (repro.obs.epochs).

Covers the edge cases the reconstruction must survive: overlapping
epochs during partition storms, aborted transfers with peer fail-over,
epochs truncated at run end or chained by a second crash, churn-context
trigger classification, the exact phase-sum property, and the
blocked-window coverage logic.
"""

import pytest

from repro.obs.epochs import (
    PHASE_ORDER,
    blocked_windows,
    epoch_summary,
    extract_epochs,
    merge_epoch_summaries,
    render_epoch_table,
    render_phase_comparison,
    uncovered_blocked_time,
)
from repro.tracing import TraceEvent


def ev(time, site, category, kind, detail="", data=None):
    return TraceEvent(time, site, category, kind, detail, data)


def full_recovery(site="S1", base=0.0):
    """A complete crash -> active trace for one site, offset by base."""
    return [
        ev(base + 1.0, site, "status", "down", "crashed"),
        ev(base + 2.0, site, "status", "stalled", "restarted"),
        # The restart installs a transitional singleton view at the same
        # timestamp; the full view lands after membership agreement.
        ev(base + 2.0, site, "view", "install", "v5 {S1}"),
        ev(base + 2.2, site, "view", "install", "v6 {S1,S2,S3}"),
        ev(base + 2.2, site, "status", "recovering", ""),
        ev(base + 2.3, site, "transfer", "accept", "from S2",
           data={"peer": "S2", "bytes_received": 100,
                 "objects_received": 4, "retransmissions": 0}),
        ev(base + 2.5, site, "transfer", "complete", "",
           data={"bytes_received": 5220, "objects_received": 24,
                 "retransmissions": 1}),
        ev(base + 2.6, site, "replay", "start", ""),
        ev(base + 2.7, site, "replay", "caught_up", "", data={"replayed": 9}),
        ev(base + 2.75, site, "status", "active", ""),
    ]


class TestPhaseDecomposition:
    def test_full_recovery_phases(self):
        epochs = extract_epochs(full_recovery())
        assert len(epochs) == 1
        epoch = epochs[0]
        assert epoch.site == "S1"
        assert epoch.trigger == "crash"
        assert not epoch.truncated
        durations = epoch.phase_durations()
        assert durations["down"] == pytest.approx(1.0)
        assert durations["membership"] == pytest.approx(0.2)
        assert durations["transfer_wait"] == pytest.approx(0.1)
        assert durations["transfer"] == pytest.approx(0.2)
        assert durations["replay"] == pytest.approx(0.2)
        assert durations["drain"] == pytest.approx(0.05)

    def test_phase_sum_equals_window(self):
        """Acceptance criterion: phase durations tile the recovery
        window exactly (well under one sim tick)."""
        epochs = extract_epochs(full_recovery())
        epoch = epochs[0]
        assert sum(epoch.phase_durations().values()) == pytest.approx(
            epoch.duration, abs=1e-9)

    def test_transfer_economics_are_snapshot_deltas(self):
        epoch = extract_epochs(full_recovery())[0]
        assert epoch.bytes_received == 5120
        assert epoch.objects_received == 20
        assert epoch.retransmissions == 1
        assert epoch.replayed == 9

    def test_phase_durations_padded_to_full_order(self):
        events = [
            ev(1.0, "S1", "status", "down", ""),
            ev(2.0, "S1", "status", "active", ""),
        ]
        durations = extract_epochs(events)[0].phase_durations()
        assert tuple(durations) == PHASE_ORDER


class TestEdgeCases:
    def test_truncated_at_run_end(self):
        events = full_recovery()[:-1]  # never reaches ACTIVE
        epochs = extract_epochs(events, end_time=5.0)
        assert len(epochs) == 1
        epoch = epochs[0]
        assert epoch.truncated
        assert epoch.end == 5.0
        assert sum(epoch.phase_durations().values()) == pytest.approx(
            epoch.duration, abs=1e-9)

    def test_second_crash_chains_a_new_epoch(self):
        events = [
            ev(1.0, "S1", "status", "down", ""),
            ev(2.0, "S1", "status", "stalled", ""),
            ev(2.5, "S1", "status", "down", ""),  # crashes again mid-recovery
            ev(3.0, "S1", "status", "stalled", ""),
            ev(3.4, "S1", "status", "active", ""),
        ]
        epochs = extract_epochs(events)
        assert len(epochs) == 2
        first, second = epochs
        assert first.truncated and first.end == 2.5
        assert not second.truncated
        assert second.start == 2.5 and second.end == 3.4
        assert second.trigger == "crash"

    def test_peer_failover_counts_superseded_accepts(self):
        events = [
            ev(1.0, "S1", "status", "down", ""),
            ev(2.0, "S1", "status", "stalled", ""),
            ev(2.1, "S1", "transfer", "accept", "from S2",
               data={"peer": "S2", "bytes_received": 0,
                     "objects_received": 0, "retransmissions": 0}),
            # Peer S2 dies; replacement offers accepted mid-epoch.
            ev(2.4, "S1", "transfer", "accept", "from S3",
               data={"peer": "S3", "bytes_received": 40,
                     "objects_received": 2, "retransmissions": 0}),
            ev(2.8, "S1", "transfer", "complete", "",
               data={"bytes_received": 900, "objects_received": 30,
                     "retransmissions": 2}),
            ev(3.0, "S1", "status", "active", ""),
        ]
        epoch = extract_epochs(events)[0]
        assert epoch.failovers == 1
        # Economics use the FIRST accept as the baseline, so the whole
        # epoch's traffic (including the aborted session) is attributed.
        assert epoch.bytes_received == 900
        # transfer_wait ends at the first accept.
        assert epoch.phase_durations()["transfer_wait"] == pytest.approx(0.1)
        assert epoch.phase_durations()["transfer"] == pytest.approx(0.7)

    def test_partition_storm_overlapping_epochs(self):
        """Several sites suspended simultaneously each get their own
        epoch; extraction handles the interleaved events."""
        events = [
            ev(1.0, "S2", "status", "suspended", ""),
            ev(1.1, "S3", "status", "suspended", ""),
            ev(1.5, "S2", "view", "install", ""),
            ev(1.6, "S3", "view", "install", ""),
            ev(2.0, "S2", "status", "active", ""),
            ev(2.1, "S3", "status", "active", ""),
        ]
        epochs = extract_epochs(events)
        assert [(e.site, e.trigger) for e in epochs] == [
            ("S2", "partition"), ("S3", "partition")]
        assert epochs[0].start == 1.0 and epochs[0].end == 2.0
        assert epochs[1].start == 1.1 and epochs[1].end == 2.1

    def test_stalled_without_open_epoch_opens_nothing(self):
        # A stray restart marker (e.g. tracing attached mid-run) must
        # not fabricate an epoch.
        events = [
            ev(1.0, "S1", "status", "stalled", ""),
            ev(2.0, "S1", "status", "active", ""),
        ]
        assert extract_epochs(events) == []

    def test_partition_storm_cluster_epoch(self):
        """Network splits block commits cluster-wide without any site
        status change; the storm itself becomes a site='--' epoch from
        split to post-heal view agreement."""
        events = [
            ev(1.0, "--", "endurance", "partition", "[S1] | [S2,S3]"),
            ev(1.5, "--", "endurance", "merge", "S1"),
            # Another wave lands before the healed view is agreed.
            ev(1.6, "--", "endurance", "partition", "[S2] | [S1,S3]"),
            ev(2.0, "--", "endurance", "merge", "S2"),
            ev(2.3, "S1", "view", "install", "v9 {S1,S2,S3}"),
        ]
        epochs = extract_epochs(events)
        assert len(epochs) == 1
        storm = epochs[0]
        assert storm.site == "--"
        assert storm.trigger == "partition_storm"
        assert not storm.truncated
        assert storm.start == 1.0 and storm.end == 2.3
        durations = storm.phase_durations()
        # down = split until the last heal, membership = heal -> view.
        assert durations["down"] == pytest.approx(1.0)
        assert durations["membership"] == pytest.approx(0.3)
        assert sum(durations.values()) == pytest.approx(storm.duration)

    def test_unhealed_storm_truncates_at_run_end(self):
        events = [
            ev(1.0, "--", "fault", "chaos_partition", ""),
        ]
        epochs = extract_epochs(events, end_time=3.0)
        assert len(epochs) == 1
        assert epochs[0].truncated and epochs[0].end == 3.0

    def test_churn_segment_context_classifies_trigger(self):
        events = [
            ev(0.5, "--", "endurance", "segment", "rolling"),
            ev(1.0, "S1", "status", "recovering", ""),
            ev(1.5, "S1", "status", "active", ""),
            ev(2.0, "--", "endurance", "segment_done", "rolling"),
            ev(3.0, "S2", "status", "recovering", ""),
            ev(3.5, "S2", "status", "active", ""),
        ]
        epochs = extract_epochs(events)
        assert epochs[0].trigger == "churn:rolling"
        assert epochs[1].trigger == "join"


class TestBlockedWindows:
    def samples(self, rows):
        return [
            ev(t, "--", "endurance", "availability_sample", "",
               data={"t": t, "commits": commits, "maintenance": maint})
            for t, commits, maint in rows
        ]

    def test_gap_rule_matches_availability_floor(self):
        events = self.samples([
            (0.25, 5, False), (0.50, 0, False), (0.75, 0, False),
            (1.00, 3, False), (1.25, 0, False),
        ])
        windows = blocked_windows(events)
        # A zero bin ending at t covers [t - bin, t]; adjacent zeros
        # merge; a trailing zero run extends to the last sample.
        assert windows == [
            (pytest.approx(0.25), pytest.approx(0.75)),
            (pytest.approx(1.0), pytest.approx(1.25)),
        ]

    def test_warmup_and_maintenance_bins_skipped(self):
        events = self.samples([
            (0.25, 0, False),  # inside warmup
            (0.50, 5, False), (0.75, 0, True),  # maintenance
            (1.00, 4, False),
        ])
        assert blocked_windows(events, warmup=0.3) == []

    def test_uncovered_blocked_time_merges_epoch_intervals(self):
        epochs = extract_epochs([
            ev(1.0, "S2", "status", "suspended", ""),
            ev(1.1, "S3", "status", "suspended", ""),
            ev(2.0, "S2", "status", "active", ""),
            ev(2.1, "S3", "status", "active", ""),
        ])
        # Window [0.5, 2.5]; merged epoch cover is [1.0, 2.1].
        uncovered = uncovered_blocked_time(epochs, [(0.5, 2.5)])
        assert uncovered == pytest.approx(0.5 + 0.4)
        # One bin of slack on each side swallows the quantisation.
        assert uncovered_blocked_time(
            epochs, [(0.5, 2.5)], slack=0.5) == pytest.approx(0.0)

    def test_fully_covered_window(self):
        epochs = extract_epochs([
            ev(1.0, "S1", "status", "down", ""),
            ev(3.0, "S1", "status", "active", ""),
        ])
        assert uncovered_blocked_time(epochs, [(1.2, 2.8)]) == 0.0


class TestSummaries:
    def test_epoch_summary_rollup(self):
        epochs = extract_epochs(full_recovery("S1") + full_recovery("S2", 10))
        summary = epoch_summary(epochs)
        assert summary["count"] == 2
        assert summary["completed"] == 2
        assert summary["truncated"] == 0
        assert summary["total_downtime"] == pytest.approx(2 * 1.75)
        assert summary["bytes_received"] == 2 * 5120
        assert summary["replayed"] == 18
        assert summary["triggers"] == {"crash": 2}
        assert summary["phase_seconds"]["down"] == pytest.approx(2.0)
        assert summary["worst"]["duration"] == pytest.approx(1.75)

    def test_merge_epoch_summaries(self):
        one = epoch_summary(extract_epochs(full_recovery("S1")))
        two = epoch_summary(extract_epochs(full_recovery("S2", 5)))
        merged = merge_epoch_summaries([one, two, {}])
        assert merged["count"] == 2
        assert merged["total_downtime"] == pytest.approx(
            one["total_downtime"] + two["total_downtime"])
        assert merged["triggers"] == {"crash": 2}
        assert merged["worst"]["duration"] == pytest.approx(1.75)

    def test_render_epoch_table(self):
        epochs = extract_epochs(full_recovery())
        table = render_epoch_table(epochs)
        assert "S1" in table and "crash" in table
        for name in PHASE_ORDER:
            assert name in table
        assert render_epoch_table([]) == "no reconfiguration epochs"

    def test_render_epoch_table_marks_truncation(self):
        epochs = extract_epochs(full_recovery()[:-1], end_time=5.0)
        assert "truncated" in render_epoch_table(epochs)

    def test_render_phase_comparison(self):
        summaries = {
            "evs": epoch_summary(extract_epochs(full_recovery())),
            "logless": epoch_summary([]),
        }
        table = render_phase_comparison(summaries)
        assert "evs" in table and "logless" in table
        assert "total downtime" in table
