"""Unit tests for the per-view total order state machine (sequencer)."""

from repro.gcs.messages import Ack, Data, Nak, Ordered
from repro.gcs.total_order import ViewTotalOrder
from repro.gcs.view import View, ViewId


class Harness:
    """Drives one member's ViewTotalOrder with a loopback transport."""

    def __init__(self, me="S1", members=("S1", "S2", "S3"), base_gseq=0, uniform=True):
        self.sent = []  # (dst, msg)
        self.delivered = []
        view = View(ViewId(1, "S1"), members)
        self.to = ViewTotalOrder(
            view=view,
            me=me,
            base_gseq=base_gseq,
            send=lambda dst, msg: self.sent.append((dst, msg)),
            deliver=self.delivered.append,
            uniform=uniform,
        )

    def ordered(self, seq, sender="S2", payload=None, gseq=None):
        return Ordered(
            view_id=self.to.view.view_id,
            seq=seq,
            gseq=self.to.base_gseq + seq if gseq is None else gseq,
            sender=sender,
            msg_id=seq,
            payload=payload if payload is not None else f"m{seq}",
        )

    def ack_from_all(self, highwater):
        for member in self.to.view.members:
            self.to.on_ack(Ack(sender=member, view_id=self.to.view.view_id, highwater=highwater))


class TestSequencing:
    def test_sequencer_is_min_member(self):
        assert Harness(me="S1").to.sequencer == "S1"

    def test_sequencer_assigns_and_multicasts(self):
        h = Harness(me="S1")
        h.to.on_data(Data(sender="S2", msg_id=0, view_id=h.to.view.view_id, payload="x"))
        ordered = [msg for _, msg in h.sent if isinstance(msg, Ordered)]
        assert len(ordered) == 2  # to S2 and S3; self handled locally
        assert ordered[0].seq == 0 and ordered[0].gseq == 0

    def test_sequencer_dedupes_retransmitted_data(self):
        h = Harness(me="S1")
        data = Data(sender="S2", msg_id=0, view_id=h.to.view.view_id, payload="x")
        h.to.on_data(data)
        before = len(h.sent)
        h.to.on_data(data)
        assert len(h.sent) == before

    def test_non_sequencer_ignores_data(self):
        h = Harness(me="S2")
        h.to.on_data(Data(sender="S3", msg_id=0, view_id=h.to.view.view_id, payload="x"))
        assert h.sent == []

    def test_gseq_uses_base(self):
        h = Harness(me="S1", base_gseq=100)
        h.to.on_data(Data(sender="S2", msg_id=0, view_id=h.to.view.view_id, payload="x"))
        ordered = next(m for _, m in h.sent if isinstance(m, Ordered))
        assert ordered.gseq == 100

    def test_nak_retransmits_from_history(self):
        h = Harness(me="S1")
        h.to.on_data(Data(sender="S2", msg_id=0, view_id=h.to.view.view_id, payload="x"))
        h.sent.clear()
        h.to.on_nak(Nak(sender="S3", view_id=h.to.view.view_id, missing=(0,)))
        assert any(isinstance(m, Ordered) and m.seq == 0 for dst, m in h.sent if dst == "S3")


class TestUniformDelivery:
    def test_not_delivered_until_all_ack(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        assert h.delivered == []  # only our own ack so far
        h.ack_from_all(0)
        assert [m.seq for m in h.delivered] == [0]

    def test_in_order_delivery_with_gap(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(1))
        h.ack_from_all(1)
        assert h.delivered == []  # seq 0 missing
        h.to.on_ordered(h.ordered(0))
        h.ack_from_all(1)
        assert [m.seq for m in h.delivered] == [0, 1]

    def test_ack_broadcast_on_highwater_advance(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        acks = [m for _, m in h.sent if isinstance(m, Ack)]
        assert acks and acks[-1].highwater == 0

    def test_duplicate_ordered_ignored(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        count = len(h.sent)
        h.to.on_ordered(h.ordered(0))
        assert len(h.sent) == count

    def test_wrong_view_ordered_ignored(self):
        h = Harness(me="S2")
        bad = Ordered(ViewId(9, "S9"), 0, 0, "S2", 0, "x")
        h.to.on_ordered(bad)
        assert h.to.received == {}

    def test_ack_from_non_member_ignored(self):
        h = Harness(me="S2")
        h.to.on_ack(Ack(sender="S9", view_id=h.to.view.view_id, highwater=5))
        assert "S9" not in h.to.ack_high

    def test_non_uniform_delivers_on_receipt(self):
        h = Harness(me="S2", uniform=False)
        h.to.on_ordered(h.ordered(0))
        assert [m.seq for m in h.delivered] == [0]


class TestFlushSupport:
    def test_gaps_reported(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        h.to.on_ordered(h.ordered(2))
        h.to.on_ordered(h.ordered(5))
        assert h.to.gaps() == (1, 3, 4)

    def test_maintenance_naks_gaps(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(2))
        h.sent.clear()
        h.to.maintenance()
        naks = [m for dst, m in h.sent if isinstance(m, Nak) and dst == "S1"]
        assert naks and naks[0].missing == (0, 1)

    def test_flush_cut_excludes_delivered(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        h.ack_from_all(0)
        h.to.on_ordered(h.ordered(1))
        cut = h.to.flush_cut()
        assert [m.seq for m in cut] == [1]

    def test_deliver_sync_delivers_gap_free_prefix(self):
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        h.ack_from_all(0)
        union = (h.ordered(1), h.ordered(3))  # 2 missing everywhere
        h.to.deliver_sync(union)
        assert [m.seq for m in h.delivered] == [0, 1]
        assert h.to.closed

    def test_deliver_sync_ignores_own_unstable_buffer(self):
        """A message only this member holds must not be delivered by the
        flush unless the (possibly truncated) union contains it."""
        h = Harness(me="S2")
        h.to.on_ordered(h.ordered(0))
        h.to.deliver_sync(())
        assert h.delivered == []

    def test_stable_seq_property(self):
        h = Harness(me="S2")
        assert h.to.stable_seq == -1
        h.to.on_ordered(h.ordered(0))
        h.ack_from_all(0)
        assert h.to.stable_seq == 0

    def test_next_gseq_tracks_deliveries(self):
        h = Harness(me="S2", base_gseq=10)
        assert h.to.next_gseq == 10
        h.to.on_ordered(h.ordered(0))
        h.ack_from_all(0)
        assert h.to.next_gseq == 11

    def test_closed_blocks_normal_delivery(self):
        h = Harness(me="S2")
        h.to.closed = True
        h.to.on_ordered(h.ordered(0))
        h.ack_from_all(0)
        assert h.delivered == []
