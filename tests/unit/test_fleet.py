"""Unit tests for the parallel run engine (repro.fleet).

The engine's contract is *determinism*: the merged payload of a fleet is
keyed by task and built in task-list order, never in completion order,
so ``--jobs N`` output is indistinguishable from serial output.  These
tests pin that contract with cheap probe tasks (which report the worker
pid and can sleep to force out-of-order completion), plus the seed-spec
parser and the sweep-grid plumbing the CLI builds on.
"""

import os

import pytest

from repro.fleet import (
    SWEEPS,
    FleetTask,
    parse_seed_spec,
    recovery_kwargs,
    run_fleet,
    run_sweep,
)


class TestParseSeedSpec:
    def test_single_seed(self):
        assert parse_seed_spec("7") == [7]

    def test_comma_list(self):
        assert parse_seed_spec("1,2,5") == [1, 2, 5]

    def test_inclusive_range(self):
        assert parse_seed_spec("0..3") == [0, 1, 2, 3]

    def test_mixed_terms_preserve_order(self):
        assert parse_seed_spec("4..5,1,9..9") == [4, 5, 1, 9]

    def test_whitespace_tolerated(self):
        assert parse_seed_spec(" 1 , 2 ") == [1, 2]

    @pytest.mark.parametrize("bad", ["", ",", "x", "1..x", "5..2", "1,,y"])
    def test_bad_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            parse_seed_spec(bad)


def probe(key, token, sleep=0.0):
    return FleetTask(key=key, kind="probe",
                     params={"token": token, "sleep": sleep})


class TestRunFleet:
    def test_serial_merge_in_task_order(self):
        tasks = [probe("c", 1), probe("a", 2), probe("b", 3)]
        result = run_fleet(tasks, jobs=1)
        assert list(result) == ["c", "a", "b"]
        assert [result[k]["token"] for k in result] == [1, 2, 3]
        # jobs<=1 runs inline: no worker process involved.
        assert all(r["pid"] == os.getpid() for r in result.values())

    def test_parallel_merge_ignores_completion_order(self):
        # The first task sleeps, so with 2 workers it *finishes* last;
        # the merged dictionary must still lead with it.
        tasks = [probe("slow", "s", sleep=0.3), probe("fast", "f")]
        result = run_fleet(tasks, jobs=2)
        assert list(result) == ["slow", "fast"]
        assert result["slow"]["token"] == "s"
        assert result["fast"]["token"] == "f"
        # jobs>1 really crossed a process boundary (spawn context).
        assert all(r["pid"] != os.getpid() for r in result.values())

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate fleet task keys"):
            run_fleet([probe("x", 1), probe("x", 2)], jobs=1)

    def test_unknown_kind_becomes_fleet_error_payload(self):
        result = run_fleet([FleetTask(key="k", kind="nope")], jobs=1)
        assert "unknown task kind" in result["k"]["fleet_error"]

    def test_crashing_runner_becomes_fleet_error_payload(self):
        # A bench task with a bogus scenario raises inside the runner;
        # the fleet must capture it instead of aborting the whole run.
        task = FleetTask(key="bad", kind="bench",
                         params={"scenario": "no-such-scenario"})
        result = run_fleet([task], jobs=1)
        assert "fleet_error" in result["bad"]
        assert "no-such-scenario" in result["bad"]["fleet_error"]


class TestSweepPlumbing:
    def test_studies_present_with_unique_cell_keys(self):
        assert set(SWEEPS) == {"db_size", "update_fraction", "throughput",
                               "rw_ratio", "E7"}
        for study in SWEEPS.values():
            keys = [key for key, _ in study.grid]
            assert len(set(keys)) == len(keys)

    def test_cell_selector_finds_params(self):
        params = SWEEPS["db_size"].cell(strategy="full", db_size=1000)
        assert params["downtime"] == 0.5 and params["seed"] == 41
        with pytest.raises(KeyError):
            SWEEPS["db_size"].cell(strategy="full", db_size=12345)

    def test_recovery_kwargs_expands_node_config(self):
        from repro.replication.node import NodeConfig

        kwargs = recovery_kwargs({"strategy": "full",
                                  "node_config": {"transfer_obj_time": 0.001}})
        assert isinstance(kwargs["node_config"], NodeConfig)
        assert kwargs["node_config"].transfer_obj_time == 0.001
        assert recovery_kwargs({"strategy": "full"}) == {"strategy": "full"}

    def test_unknown_study_lists_choices(self):
        with pytest.raises(ValueError, match="valid choices"):
            run_sweep("no_such_study")
