"""Unit tests for the two-level strict lock manager."""

from repro.db.locks import DB_RESOURCE, LockManager, LockMode


def granted_flags(*requests):
    return [r.granted for r in requests]


class TestBasicModes:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        a = lm.request("T1", "x", LockMode.SHARED)
        b = lm.request("T2", "x", LockMode.SHARED)
        assert granted_flags(a, b) == [True, True]

    def test_exclusive_conflicts_with_shared(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.SHARED)
        b = lm.request("T2", "x", LockMode.EXCLUSIVE)
        assert not b.granted

    def test_shared_waits_for_exclusive(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        b = lm.request("T2", "x", LockMode.SHARED)
        assert not b.granted
        lm.release("T1", "x")
        assert b.granted

    def test_different_objects_independent(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        b = lm.request("T2", "y", LockMode.EXCLUSIVE)
        assert b.granted

    def test_same_txn_reentrant(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.SHARED)
        b = lm.request("T1", "x", LockMode.EXCLUSIVE)  # upgrade, no other holders
        assert b.granted
        assert lm.holders("x")["T1"] is LockMode.EXCLUSIVE

    def test_upgrade_does_not_downgrade(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        lm.request("T1", "x", LockMode.SHARED)
        assert lm.holders("x")["T1"] is LockMode.EXCLUSIVE

    def test_on_grant_callback_fires_on_release(self):
        lm = LockManager()
        fired = []
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        lm.request("T2", "x", LockMode.EXCLUSIVE, fired.append)
        assert fired == []
        lm.release("T1")
        assert len(fired) == 1 and fired[0].granted

    def test_release_all_resources(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        lm.request("T1", "y", LockMode.EXCLUSIVE)
        lm.release("T1")
        assert lm.holders("x") == {} and lm.holders("y") == {}


class TestFifoFairness:
    def test_no_overtaking_queued_writer(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        waiting_writer = lm.request("T2", "x", LockMode.EXCLUSIVE)
        late_reader = lm.request("T3", "x", LockMode.SHARED)
        lm.release("T1")
        assert waiting_writer.granted
        assert not late_reader.granted  # behind T2
        lm.release("T2")
        assert late_reader.granted

    def test_concurrent_readers_granted_together(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        r1 = lm.request("T2", "x", LockMode.SHARED)
        r2 = lm.request("T3", "x", LockMode.SHARED)
        lm.release("T1")
        assert r1.granted and r2.granted

    def test_waiting_for_reports_blockers(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        waiting = lm.request("T2", "x", LockMode.EXCLUSIVE)
        assert lm.waiting_for(waiting) == {"T1"}

    def test_cancel_removes_waiting_and_holds(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        waiter = lm.request("T2", "x", LockMode.EXCLUSIVE)
        third = lm.request("T3", "x", LockMode.EXCLUSIVE)
        lm.cancel("T2")
        lm.release("T1")
        assert third.granted
        assert waiter.cancelled and not waiter.granted


class TestDatabaseLock:
    def test_db_shared_conflicts_with_object_writer(self):
        lm = LockManager()
        lm.request("W", "x", LockMode.EXCLUSIVE)
        db = lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        assert not db.granted
        lm.release("W")
        assert db.granted

    def test_object_writer_waits_behind_db_lock(self):
        lm = LockManager()
        lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        writer = lm.request("W", "x", LockMode.EXCLUSIVE)
        assert not writer.granted
        lm.release("XFER")
        assert writer.granted

    def test_db_shared_compatible_with_object_readers(self):
        lm = LockManager()
        lm.request("R", "x", LockMode.SHARED)
        db = lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        assert db.granted

    def test_queued_db_lock_blocks_later_writers(self):
        lm = LockManager()
        lm.request("W1", "x", LockMode.EXCLUSIVE)
        db = lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        w2 = lm.request("W2", "y", LockMode.EXCLUSIVE)  # later than queued DB lock
        assert not w2.granted
        lm.release("W1")
        assert db.granted
        lm.release("XFER")
        assert w2.granted

    def test_inherit_ticket_downgrade(self):
        """The RecTable pattern: object locks inherit the DB lock's
        position so writers queued behind the DB lock stay behind."""
        lm = LockManager()
        db = lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        writer = lm.request("W", "x", LockMode.EXCLUSIVE)  # queued behind DB lock
        fine = lm.request("XFER", "x", LockMode.SHARED, inherit_ticket=db.ticket)
        lm.release("XFER", DB_RESOURCE)
        assert fine.granted
        assert not writer.granted  # still behind the inherited position
        lm.release("XFER", "x")
        assert writer.granted

    def test_without_inherit_ticket_writer_wins(self):
        lm = LockManager()
        lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        writer = lm.request("W", "x", LockMode.EXCLUSIVE)
        fine = lm.request("XFER", "x", LockMode.SHARED)  # fresh ticket, after W
        lm.release("XFER", DB_RESOURCE)
        assert writer.granted
        assert not fine.granted


class TestMetrics:
    def test_wait_times_recorded(self):
        now = {"t": 0.0}
        lm = LockManager(clock=lambda: now["t"])
        lm.request("T1", "x", LockMode.EXCLUSIVE)
        lm.request("T2", "x", LockMode.EXCLUSIVE)
        now["t"] = 2.5
        lm.release("T1")
        assert 2.5 in lm.wait_times

    def test_grant_counter(self):
        lm = LockManager()
        lm.request("T1", "x", LockMode.SHARED)
        lm.request("T2", "x", LockMode.SHARED)
        assert lm.grants == 2
