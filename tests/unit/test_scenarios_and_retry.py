"""Tests for the scenario helpers and the workload retry semantics."""

import pytest

from repro import LoadGenerator, WorkloadConfig
from repro.scenarios import ScenarioReport, run_recovery_experiment
from tests.conftest import quick_cluster


class TestRecoveryExperiment:
    def test_report_fields_present(self):
        report = run_recovery_experiment(strategy="rectable", db_size=60,
                                         downtime=0.3, arrival_rate=60, seed=7)
        assert isinstance(report, ScenarioReport)
        assert report.completed
        for key in ("recovery_time", "objects_sent", "bytes_sent",
                    "enqueue_high_watermark", "throughput_dip",
                    "mean_latency", "p95_latency", "lock_wait_total"):
            assert key in report.extra

    def test_strategy_instance_accepted(self):
        from repro import LazyTransferStrategy

        report = run_recovery_experiment(
            strategy=LazyTransferStrategy(round_threshold=10), db_size=60,
            downtime=0.3, arrival_rate=60, seed=7,
        )
        assert report.completed
        assert report.strategy == "lazy"

    def test_coordination_events_metric(self):
        report = ScenarioReport(
            mode="vs", strategy="x", completed=True, duration=1.0, commits=0,
            aborts=0, transfers_started=0, transfers_completed=0,
            announcements=3, svs_merges=2, sv_merges=1,
        )
        assert report.coordination_events() == 6


class TestRetrySemantics:
    def test_retries_capped(self):
        cluster = quick_cluster(db_size=5)  # tiny db: heavy contention
        config = WorkloadConfig(arrival_rate=400, reads_per_txn=2, writes_per_txn=2,
                                retry_aborted=True, max_retries=2)
        load = LoadGenerator(cluster, config)
        load.start()
        cluster.run_for(1.0)
        load.stop()
        cluster.settle(1.0)
        assert load.retries > 0
        # attempts per logical txn never exceed 1 original + max_retries
        for attempts in load._attempts.values():
            assert attempts <= 1 + config.max_retries
        cluster.check()

    def test_no_retry_when_disabled(self):
        cluster = quick_cluster(db_size=5)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=300,
                                                     reads_per_txn=2,
                                                     writes_per_txn=2))
        load.start()
        cluster.run_for(0.8)
        load.stop()
        cluster.settle(0.5)
        assert load.retries == 0

    def test_crash_aborts_not_retried(self):
        cluster = quick_cluster(db_size=30)
        config = WorkloadConfig(arrival_rate=150, reads_per_txn=1, writes_per_txn=1,
                                retry_aborted=True)
        load = LoadGenerator(cluster, config)
        load.start()
        cluster.run_for(0.3)
        cluster.crash("S3")  # in-flight local txns at S3 abort as SITE_CRASHED
        cluster.run_for(0.5)
        load.stop()
        cluster.settle(0.5)
        from repro.replication.transaction import AbortReason

        crash_aborts = [t for t in load.transactions
                        if t.abort_reason is AbortReason.SITE_CRASHED]
        # none of them may have spawned a retry entry keyed on their id
        for txn in crash_aborts:
            retried_from = [k for k, v in load._attempts.items() if k == txn.txn_id]
            assert not retried_from

    def test_retry_improves_commit_ratio_under_contention(self):
        results = {}
        for retry in (False, True):
            cluster = quick_cluster(db_size=5, seed=55)
            config = WorkloadConfig(arrival_rate=300, reads_per_txn=2,
                                    writes_per_txn=2, retry_aborted=retry,
                                    max_retries=3)
            load = LoadGenerator(cluster, config)
            load.start()
            cluster.run_for(1.0)
            load.stop()
            cluster.settle(1.0)
            results[retry] = len(load.committed())
            cluster.check()
        assert results[True] > results[False]
