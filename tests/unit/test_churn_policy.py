"""ChurnPolicy edges: quorum-boundary caps, the creation-majority
fallback, explicit tightening, and the per-backend quorum registry."""

import pytest

from repro.faults.churn import ChurnPolicy, backend_quorum


class TestBackendQuorum:
    def test_majority_for_all_registered_backends(self):
        for backend in ("vs", "evs", "logless"):
            assert backend_quorum(backend, 5) == 3
            assert backend_quorum(backend, 4) == 3
            assert backend_quorum(backend, 3) == 2

    def test_unknown_and_none_default_to_majority(self):
        assert backend_quorum(None, 5) == 3
        assert backend_quorum("someday-paxos", 5) == 3


class TestConcurrencyLimit:
    def test_five_site_majority_allows_two_down(self):
        assert ChurnPolicy().concurrency_limit(5, "vs") == 2

    def test_even_cluster_is_tighter_than_odd(self):
        # 4 sites: majority is 3, so only one may churn — the boundary
        # the storm composers historically hard-coded.
        assert ChurnPolicy().concurrency_limit(4, "vs") == 1

    def test_quorum_boundary_small_clusters(self):
        policy = ChurnPolicy()
        assert policy.concurrency_limit(1, "vs") == 0
        assert policy.concurrency_limit(2, "vs") == 0
        assert policy.concurrency_limit(3, "vs") == 1

    def test_per_backend_limits_agree_today(self):
        # Every current backend is majority-based; the assertion pins
        # that a future non-majority rule must come with its own tests.
        policy = ChurnPolicy()
        for backend in ("vs", "evs", "logless"):
            assert policy.concurrency_limit(5, backend) == 2

    def test_creation_majority_fallback(self):
        # Paper §3 all-sites creation rule: multi-site churn can wedge a
        # post-partition creation round, so the cap falls back to 1.
        policy = ChurnPolicy()
        assert policy.concurrency_limit(5, "vs", creation_majority=False) == 1
        relaxed = ChurnPolicy(respect_creation_majority=False)
        assert relaxed.concurrency_limit(5, "vs", creation_majority=False) == 2

    def test_max_down_only_tightens(self):
        assert ChurnPolicy(max_down=1).concurrency_limit(5, "vs") == 1
        assert ChurnPolicy(max_down=0).concurrency_limit(5, "vs") == 0
        # A wider explicit cap never exceeds the quorum-derived one.
        assert ChurnPolicy(max_down=4).concurrency_limit(5, "vs") == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChurnPolicy(max_down=-1)
        with pytest.raises(ValueError):
            ChurnPolicy().concurrency_limit(0, "vs")


class TestAdmits:
    def test_admits_below_and_rejects_at_limit(self):
        policy = ChurnPolicy()
        assert policy.admits(0, 5, "vs")
        assert policy.admits(1, 5, "vs")
        assert not policy.admits(2, 5, "vs")

    def test_admits_respects_creation_majority(self):
        policy = ChurnPolicy()
        assert policy.admits(0, 5, "vs", creation_majority=False)
        assert not policy.admits(1, 5, "vs", creation_majority=False)
