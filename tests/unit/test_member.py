"""Tests for GroupMember + MembershipEngine (small multi-member groups).

These run the real protocol over the simulated network — unit-sized
scenarios targeting the paper's section 2.1 guarantees.
"""

import pytest

from repro.gcs.config import GCSConfig
from tests.conftest import make_group


class TestBootstrap:
    def test_members_converge_on_one_view(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        views = {m.view.view_id for m in members.values()}
        assert len(views) == 1
        assert all(len(m.view) == 3 for m in members.values())

    def test_bootstrap_view_is_primary(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        assert all(m.is_primary() for m in members.values())

    def test_singleton_start_view_delivered_to_app(self):
        sim, _, members, apps = make_group(2)
        assert apps["S1"].views[0].members == ("S1",)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GCSConfig(presence_interval=1.0, suspect_timeout=0.5).validate()

    def test_universe_membership_required(self):
        from repro.gcs.member import GroupMember
        from repro.net.network import Network
        from repro.sim.core import Simulator

        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            GroupMember(sim, net, "X9", ("S1", "S2"))


class TestTotalOrderAcrossGroup:
    def test_all_members_deliver_same_order(self):
        sim, _, members, apps = make_group(3, seed=2)
        sim.run(until=2.0)
        members["S1"].multicast("a")
        members["S3"].multicast("b")
        members["S2"].multicast("c")
        sim.run(until=3.0)
        sequences = {node: tuple(app.payloads()) for node, app in apps.items()}
        assert len(set(sequences.values())) == 1
        assert set(sequences["S1"]) == {"a", "b", "c"}

    def test_sender_receives_own_message(self):
        sim, _, members, apps = make_group(3)
        sim.run(until=2.0)
        members["S2"].multicast("mine")
        sim.run(until=3.0)
        assert "mine" in apps["S2"].payloads()

    def test_gseq_agrees_across_members(self):
        sim, _, members, apps = make_group(3)
        sim.run(until=2.0)
        for i in range(5):
            members["S1"].multicast(i)
        sim.run(until=3.0)
        gseq_maps = [
            {payload: gseq for gseq, _, payload in app.messages} for app in apps.values()
        ]
        assert gseq_maps[0] == gseq_maps[1] == gseq_maps[2]

    def test_multicast_from_down_member_rejected(self):
        sim, _, members, _ = make_group(2)
        sim.run(until=2.0)
        members["S1"].crash()
        with pytest.raises(RuntimeError):
            members["S1"].multicast("x")

    def test_cancel_pending_withdraws(self):
        sim, _, members, apps = make_group(3)
        sim.run(until=2.0)
        members["S1"]._blocked = True  # simulate flush window
        members["S1"].multicast("never")
        assert members["S1"].cancel_pending() == 1
        members["S1"]._blocked = False
        sim.run(until=3.0)
        assert "never" not in apps["S2"].payloads()


class TestCrashAndExclusion:
    def test_crash_triggers_view_change(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        members["S3"].crash()
        sim.run(until=4.0)
        assert members["S1"].view.members == ("S1", "S2")
        assert members["S1"].view == members["S2"].view

    def test_messages_flow_after_exclusion(self):
        sim, _, members, apps = make_group(3)
        sim.run(until=2.0)
        members["S3"].crash()
        sim.run(until=4.0)
        members["S1"].multicast("post")
        sim.run(until=5.0)
        assert "post" in apps["S2"].payloads()

    def test_two_of_three_still_primary(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        members["S3"].crash()
        sim.run(until=4.0)
        assert members["S1"].is_primary()

    def test_one_of_three_not_primary(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        members["S2"].crash()
        members["S3"].crash()
        sim.run(until=4.0)
        assert not members["S1"].is_primary()
        assert members["S1"].view.members == ("S1",)

    def test_recovered_member_rejoins(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        members["S3"].crash()
        sim.run(until=4.0)
        members["S3"].start()
        sim.run(until=7.0)
        assert members["S3"].view.members == ("S1", "S2", "S3")
        assert members["S3"].view == members["S1"].view

    def test_epoch_monotone_across_recovery(self):
        sim, _, members, _ = make_group(3)
        sim.run(until=2.0)
        epoch_before = members["S3"].view.view_id.epoch
        members["S3"].crash()
        sim.run(until=4.0)
        members["S3"].start()
        sim.run(until=7.0)
        assert members["S3"].view.view_id.epoch > epoch_before


class TestVirtualSynchrony:
    def test_survivors_deliver_same_set_before_view_change(self):
        """Virtual synchrony: both installers of the next view delivered
        the same messages in the previous one."""
        sim, _, members, apps = make_group(3, seed=4)
        sim.run(until=2.0)
        for i in range(10):
            members["S1"].multicast(f"m{i}")
        members["S3"].crash()
        sim.run(until=5.0)
        assert apps["S1"].payloads() == apps["S2"].payloads()

    def test_gseq_continuity_for_survivors(self):
        sim, _, members, apps = make_group(3, seed=4)
        sim.run(until=2.0)
        members["S1"].multicast("before")
        sim.run(until=3.0)
        members["S3"].crash()
        sim.run(until=5.0)
        members["S1"].multicast("after")
        sim.run(until=6.0)
        gseqs = [g for g, _, _ in apps["S2"].messages]
        assert gseqs == sorted(gseqs)
        assert len(set(gseqs)) == len(gseqs)

    def test_rejoiner_skips_missed_gseqs(self):
        sim, _, members, apps = make_group(3, seed=4)
        sim.run(until=2.0)
        members["S3"].crash()
        sim.run(until=4.0)
        members["S1"].multicast("missed")
        sim.run(until=5.0)
        members["S3"].start()
        sim.run(until=8.0)
        members["S1"].multicast("seen")
        sim.run(until=9.0)
        payloads3 = apps["S3"].payloads()
        assert "missed" not in payloads3 and "seen" in payloads3
        seen_gseq = {p: g for g, _, p in apps["S1"].messages}
        got_gseq = {p: g for g, _, p in apps["S3"].messages}
        assert got_gseq["seen"] == seen_gseq["seen"]


class TestPartitions:
    def expand(self, groups):
        return groups

    def test_majority_side_stays_primary(self):
        sim, net, members, _ = make_group(5, seed=6)
        sim.run(until=2.0)
        net.set_partitions([{"S1", "S2", "S3"}, {"S4", "S5"}])
        sim.run(until=5.0)
        assert members["S1"].is_primary()
        assert not members["S4"].is_primary()
        assert members["S4"].view.members == ("S4", "S5")

    def test_concurrent_views_do_not_overlap(self):
        sim, net, members, _ = make_group(5, seed=6)
        sim.run(until=2.0)
        net.set_partitions([{"S1", "S2", "S3"}, {"S4", "S5"}])
        sim.run(until=5.0)
        side_a = set(members["S1"].view.members)
        side_b = set(members["S4"].view.members)
        assert not (side_a & side_b)

    def test_merge_after_heal(self):
        sim, net, members, _ = make_group(5, seed=6)
        sim.run(until=2.0)
        net.set_partitions([{"S1", "S2", "S3"}, {"S4", "S5"}])
        sim.run(until=5.0)
        net.heal()
        sim.run(until=8.0)
        views = {m.view for m in members.values()}
        assert len(views) == 1
        assert len(members["S1"].view) == 5

    def test_flush_state_exchanged_at_view_change(self):
        sim, _, members, apps = make_group(2, seed=1)
        sim.run(until=2.0)
        # the merge view change carries each member's flush state dict
        states = apps["S1"].states_seen[-1]
        assert set(states) == {"S1", "S2"}
