"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import Event, SimulationError, Simulator
from repro.sim.process import Process, Timer


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(0.5, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 1.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 2)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run(until=4.0)
        assert fired == [1, 2]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, fired.append, "later"))
        sim.run()
        assert fired == ["later"]
        assert sim.now == 5.0

    def test_call_soon_runs_after_pending_same_time_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.call_soon(fired.append, 2)
        sim.run()
        assert fired == [1, 2]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_step_processes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]
        assert sim.step()
        assert not sim.step()

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1

    def test_next_event_time(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.next_event_time() == 1.0
        first.cancel()
        assert sim.next_event_time() == 2.0

    def test_max_events_limit(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_run_until_idle_raises_on_livelock(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_seeded_rng_is_deterministic(self):
        a = Simulator(seed=7).rng.random()
        b = Simulator(seed=7).rng.random()
        assert a == b

    def test_trace_hook_sees_events(self):
        sim = Simulator()
        seen = []
        sim.add_trace_hook(lambda e: seen.append(e.time))
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert seen == [1.0]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, nested)
        sim.run()
        assert len(errors) == 1


class TestTimer:
    def test_fires_after_interval(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [1.0]

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(0.5, timer.restart)
        sim.run()
        assert fired == [1.5]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 1.0, lambda: fired.append(1))
        timer.start()
        timer.cancel()
        sim.run()
        assert fired == []

    def test_start_is_noop_when_armed(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(0.5, timer.start)  # should not re-arm
        sim.run()
        assert fired == [1.0]

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, 1.0, lambda: None)
        assert not timer.armed
        timer.start()
        assert timer.armed
        sim.run()
        assert not timer.armed


class TestProcess:
    def test_after_runs_while_alive(self):
        sim = Simulator()
        proc = Process(sim)
        proc.start()
        fired = []
        proc.after(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]

    def test_stop_cancels_scheduled_work(self):
        sim = Simulator()
        proc = Process(sim)
        proc.start()
        fired = []
        proc.after(1.0, fired.append, "x")
        proc.stop()
        sim.run()
        assert fired == []

    def test_stopped_process_skips_guarded_calls(self):
        sim = Simulator()
        proc = Process(sim)
        proc.start()
        fired = []
        proc.after(1.0, fired.append, "x")
        sim.schedule(0.5, setattr, proc, "alive", False)
        sim.run()
        assert fired == []

    def test_every_repeats_until_stop(self):
        sim = Simulator()
        proc = Process(sim)
        proc.start()
        fired = []
        proc.every(1.0, lambda: fired.append(sim.now))
        sim.schedule(3.5, proc.stop)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_restart_after_stop(self):
        sim = Simulator()
        proc = Process(sim)
        proc.start()
        proc.stop()
        proc.start()
        fired = []
        proc.after(1.0, fired.append, 1)
        sim.run()
        assert fired == [1]


class TestHotPathOverhead:
    """Satellite of the hot-path rewrite: with no profiler attached the
    run loop must not allocate per event — the ``profiler is None``
    check (hoisted to one read per ``run()`` call) is the only cost of
    the profiling seam when it is off.  Wall-clock asserts would flake
    on shared runners, so the claim is pinned via the allocator: a
    drained run leaves no more live blocks than it started with."""

    def test_run_loop_allocates_nothing_per_event_without_profiler(self):
        import gc
        import sys

        sim = Simulator(seed=7)

        def noop() -> None:
            pass

        # Spread across ticks, same-tick bursts, and the overflow heap
        # (> 4 virtual seconds ahead) so every queue path is exercised.
        for i in range(2000):
            sim.schedule((i % 50) * 0.0007 + (i % 3) * 2.5, noop)
        gc.collect()
        before = sys.getallocatedblocks()
        sim.run()
        gc.collect()
        after = sys.getallocatedblocks()
        # Draining 2000 events frees their entries; the loop itself may
        # keep a handful of blocks (interned ints, list growth), never
        # O(events) of them.
        assert after - before < 64, (
            f"run() leaked {after - before} allocator blocks over 2000 "
            f"events; the profiler-off hot path must not allocate"
        )

    def test_profiler_attachment_is_read_once_per_run(self):
        # The hoisted-local design: attaching a profiler mid-run takes
        # effect at the next run() call, never mid-loop.
        sim = Simulator()
        seen = []

        class Probe:
            def run_event(self, event):
                seen.append(event.label)
                event.fn(*event.args)

        def attach() -> None:
            sim.profiler = Probe()

        sim.schedule(0.0, attach, label="attach")
        sim.schedule(0.1, lambda: None, label="same-run")
        sim.run()
        assert seen == []
        sim.schedule(0.1, lambda: None, label="next-run")
        sim.run()
        assert seen == ["next-run"]
