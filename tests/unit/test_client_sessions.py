"""Unit tests for client sessions (repro.client).

The session's supervision logic — timeouts, backoff, failover, giving
up — is exercised against a minimal fake cluster so every edge can be
driven deterministically; the real end-to-end behaviour (including the
replicated dedup table) is covered by the integration tests in
tests/integration/test_client_failover.py.
"""

from typing import Dict, List, Optional

import pytest

from repro.client import ClientSession, RequestState, SessionConfig
from repro.replication.transaction import AbortReason, Transaction, TxnState
from repro.sim.core import Simulator


class FakeNode:
    """Records submissions; the test settles them by hand."""

    def __init__(self, site_id: str) -> None:
        self.site_id = site_id
        self.submissions: List[Transaction] = []
        self.raise_on_submit = False

    def submit(self, reads, writes, request=None, on_done=None) -> Transaction:
        if self.raise_on_submit:
            raise RuntimeError(f"site {self.site_id} is not ACTIVE")
        txn = Transaction(
            txn_id=f"{self.site_id}-T{len(self.submissions) + 1}",
            origin=self.site_id, reads=list(reads), writes=dict(writes),
            request=request, on_done=on_done,
        )
        self.submissions.append(txn)
        return txn

    def settle(self, txn: Transaction, *, commit: bool,
               reason: Optional[AbortReason] = None,
               gid: Optional[int] = None,
               sent: bool = False) -> None:
        txn.state = TxnState.COMMITTED if commit else TxnState.ABORTED
        txn.abort_reason = reason
        txn.gid = gid
        if sent:
            txn.sent_at = 0.0
        if txn.on_done is not None:
            txn.on_done(txn)


class FakeCluster:
    """Just enough surface for a ClientSession: sim, nodes, active set."""

    def __init__(self, sites=("S1", "S2")) -> None:
        self.sim = Simulator(seed=7)
        self.nodes: Dict[str, FakeNode] = {s: FakeNode(s) for s in sites}
        self.active: List[str] = list(sites)

    def active_sites(self) -> List[str]:
        return list(self.active)


CONFIG = SessionConfig(response_timeout=0.5, backoff_base=0.02,
                       backoff_factor=2.0, backoff_max=1.0, max_attempts=3)


def all_submissions(cluster: FakeCluster) -> List[Transaction]:
    """Every submission across sites, in attempt order."""
    txns = [t for node in cluster.nodes.values() for t in node.submissions]
    return sorted(txns, key=lambda t: t.request.attempt)


class TestNoActiveSite:
    def test_waits_without_consuming_attempts(self):
        cluster = FakeCluster()
        cluster.active = []
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        cluster.sim.run(until=1.0)
        assert record.state is RequestState.PENDING
        assert record.attempts_used == 0
        assert session.no_site_waits > 0
        assert all_submissions(cluster) == []

    def test_resumes_when_a_site_returns(self):
        cluster = FakeCluster()
        cluster.active = []
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        cluster.sim.run(until=0.3)
        cluster.active = ["S2"]
        cluster.sim.run(until=0.4)  # next wait tick submits for real
        txns = cluster.nodes["S2"].submissions
        assert len(txns) == 1
        assert txns[0].request.attempt == 1  # the wait burned no attempt
        cluster.nodes["S2"].settle(txns[0], commit=True, gid=10)
        assert record.state is RequestState.COMMITTED
        assert record.committed_gid == 10

    def test_submit_raising_counts_as_no_site(self):
        cluster = FakeCluster(sites=("S1",))
        cluster.nodes["S1"].raise_on_submit = True
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        cluster.sim.run(until=0.5)
        assert record.attempts_used == 0
        assert session.no_site_waits > 0


class TestFailover:
    def test_in_doubt_crash_fails_over_with_bumped_attempt(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})  # attempt 1 is synchronous
        (txn,) = all_submissions(cluster)
        cluster.nodes[txn.origin].settle(
            txn, commit=False, reason=AbortReason.SITE_CRASHED, sent=True)
        cluster.sim.run(until=0.1)  # past the backoff, before the timeout
        txns = all_submissions(cluster)
        assert len(txns) == 2
        assert txns[1].request.key == txns[0].request.key
        assert txns[1].request.attempt == 2
        assert record.in_doubt_attempts == 1
        assert record.failovers == 1

    def test_timeout_is_in_doubt(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        cluster.sim.run(until=CONFIG.response_timeout + 0.01)
        assert record.in_doubt_attempts == 1

    def test_stale_abort_after_failover_is_ignored(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        (first,) = all_submissions(cluster)
        # Time the first attempt out, then deliver its abort late.
        cluster.sim.run(until=0.6)  # timeout at 0.5 + backoff: attempt 2
        assert record.current_attempt == 2
        cluster.nodes[first.origin].settle(
            first, commit=False, reason=AbortReason.SITE_CRASHED, sent=True)
        assert record.state is RequestState.PENDING
        assert record.current_attempt == 2

    def test_late_commit_settles_regardless_of_attempt(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        (first,) = all_submissions(cluster)
        cluster.sim.run(until=0.6)  # attempt 2 is now in flight
        cluster.nodes[first.origin].settle(first, commit=True, gid=42)
        assert record.state is RequestState.COMMITTED
        assert record.committed_gid == 42


class TestExhaustion:
    def test_all_timeouts_exhausts_in_doubt(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        cluster.sim.run(until=20.0)
        assert record.state is RequestState.EXHAUSTED
        assert record.attempts_used == CONFIG.max_attempts
        assert record.in_doubt_attempts == CONFIG.max_attempts

    def test_all_definitive_aborts_is_aborted_not_exhausted(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        for _ in range(CONFIG.max_attempts):
            cluster.sim.run(until=cluster.sim.now + 0.2)
            pending = [t for t in all_submissions(cluster) if not t.done]
            for txn in pending:
                cluster.nodes[txn.origin].settle(
                    txn, commit=False, reason=AbortReason.VERSION_CHECK)
        assert record.state is RequestState.ABORTED
        assert record.in_doubt_attempts == 0
        assert record.failovers == 0

    def test_duplicate_abort_retries_with_fresh_attempt(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        session.submit(["x"], {"y": 1})
        (txn,) = all_submissions(cluster)
        cluster.nodes[txn.origin].settle(
            txn, commit=False, reason=AbortReason.DUPLICATE)
        cluster.sim.run(until=0.1)
        txns = all_submissions(cluster)
        assert len(txns) == 2 and txns[1].request.attempt == 2


class TestBackoffDeterminism:
    def test_backoff_delay_is_a_pure_schedule(self):
        session = ClientSession(FakeCluster(), "C1", CONFIG)
        delays = [session.backoff_delay(k) for k in range(8)]
        assert delays == [min(0.02 * 2.0 ** k, 1.0) for k in range(8)]
        assert delays == sorted(delays)  # monotone up to the cap
        assert delays[-1] == 1.0

    def test_recorded_schedule_matches_the_formula(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        record = session.submit(["x"], {"y": 1})
        cluster.sim.run(until=20.0)  # every attempt times out
        assert record.state is RequestState.EXHAUSTED
        # Attempts 1..max-1 each wait backoff_delay(attempts_used so far);
        # the final attempt exhausts without another wait.
        assert record.backoff_schedule == [
            session.backoff_delay(k) for k in range(1, CONFIG.max_attempts)
        ]

    def test_two_sessions_same_seed_same_schedule(self):
        schedules = []
        for _ in range(2):
            cluster = FakeCluster()
            session = ClientSession(cluster, "C1", CONFIG)
            record = session.submit(["x"], {"y": 1})
            cluster.sim.run(until=20.0)
            schedules.append(list(record.backoff_schedule))
        assert schedules[0] == schedules[1]


class TestSessionConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"response_timeout": 0.0},
        {"backoff_base": 0.0},
        {"backoff_max": -1.0},
        {"backoff_factor": 0.5},
        {"max_attempts": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SessionConfig(**kwargs).validate()

    def test_outstanding_request_guard(self):
        cluster = FakeCluster()
        session = ClientSession(cluster, "C1", CONFIG)
        session.submit(["x"], {"y": 1})
        with pytest.raises(RuntimeError):
            session.submit(["x"], {"y": 2})
