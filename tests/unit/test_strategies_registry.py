"""Unit tests for the strategy registry and shared strategy helpers."""

import pytest

from repro.reconfig.strategies import (
    ALL_STRATEGY_NAMES,
    FullTransferStrategy,
    GcsLevelTransferStrategy,
    LazyTransferStrategy,
    LogFilterStrategy,
    RecTableStrategy,
    VersionCheckStrategy,
    strategy_by_name,
)
from repro.reconfig.strategies.base import NO_COVER, TransferStrategy
from repro.reconfig.transfer import TransferAccept


class TestRegistry:
    def test_all_paper_strategies_present(self):
        assert set(ALL_STRATEGY_NAMES) == {
            "full",
            "version_check",
            "rectable",
            "log_filter",
            "lazy",
            "gcs_level",
        }

    @pytest.mark.parametrize("name", ALL_STRATEGY_NAMES)
    def test_by_name_roundtrip(self, name):
        strategy = strategy_by_name(name)
        assert strategy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            strategy_by_name("osmosis")

    def test_lazy_flag(self):
        assert LazyTransferStrategy().lazy
        for cls in (FullTransferStrategy, VersionCheckStrategy, RecTableStrategy,
                    LogFilterStrategy, GcsLevelTransferStrategy):
            assert not cls().lazy

    def test_lazy_accepts_tuning_kwargs(self):
        strategy = strategy_by_name("lazy", round_threshold=5, max_rounds=2)
        assert strategy.round_threshold == 5 and strategy.max_rounds == 2


class TestEffectiveCover:
    def accept(self, cover, needs_full):
        return TransferAccept(session_id="s", cover_gid=cover, resume_through=cover,
                              needs_full=needs_full)

    def test_normal_cover(self):
        assert TransferStrategy.effective_cover(self.accept(42, False)) == 42

    def test_new_site_degrades_to_full(self):
        """Section 4.3: full copy is "the only solution in the case of a
        new site" — filtered strategies treat its cover as minus infinity."""
        assert TransferStrategy.effective_cover(self.accept(42, True)) == NO_COVER
