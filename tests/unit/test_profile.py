"""Unit tests for the deterministic sim-loop profiler
(repro.obs.profile)."""

import pytest

from repro.obs.profile import (
    SimProfiler,
    _subsystem_of,
    attach_profiler,
    parse_collapsed,
)
from repro.sim.core import Simulator


class TestSubsystemClassification:
    def test_longest_prefix_wins(self):
        assert _subsystem_of("repro.gcs.total_order") == "sequencer"
        assert _subsystem_of("repro.gcs.membership") == "gcs"
        assert _subsystem_of("repro.db.locks") == "locks"
        assert _subsystem_of("repro.db.storage") == "wal"
        assert _subsystem_of("repro.db.versioned") == "db"
        assert _subsystem_of("repro.replication.node") == "apply"

    def test_unknown_module_is_other(self):
        assert _subsystem_of("json") == "other"


def run_profiled(sim=None):
    sim = sim or Simulator(seed=1)
    profiler = SimProfiler().attach(sim)
    hits = []
    sim.schedule(0.5, hits.append, "a", label="tick")
    sim.schedule(1.0, hits.append, "b", label="tick")
    sim.schedule(1.5, hits.append, "c", label="tock")
    sim.run()
    return sim, profiler, hits


class TestSimProfiler:
    def test_detached_by_default(self):
        assert Simulator().profiler is None

    def test_attach_and_count(self):
        sim, profiler, hits = run_profiled()
        assert hits == ["a", "b", "c"]
        assert profiler.events == 3
        counts = {kind: b.count for (_, kind), b in profiler.buckets.items()}
        assert counts == {"tick": 2, "tock": 1}

    def test_virtual_time_gap_attribution(self):
        _, profiler, _ = run_profiled()
        virtual = {kind: b.virtual
                   for (_, kind), b in profiler.buckets.items()}
        # The idle gap ending at an event belongs to that event: tick
        # gets [0, 0.5] + [0.5, 1.0], tock gets [1.0, 1.5].
        assert virtual["tick"] == pytest.approx(1.0)
        assert virtual["tock"] == pytest.approx(0.5)
        assert sum(virtual.values()) == pytest.approx(1.5)

    def test_deterministic_fields_reproduce(self):
        _, first, _ = run_profiled()
        _, second, _ = run_profiled()
        assert first.deterministic_summary() == second.deterministic_summary()

    def test_detach_restores_plain_dispatch(self):
        sim = Simulator()
        profiler = SimProfiler().attach(sim)
        profiler.detach(sim)
        assert sim.profiler is None
        hits = []
        sim.schedule(0.1, hits.append, 1)
        sim.run()
        assert hits == [1] and profiler.events == 0

    def test_observation_equivalence_on_bare_sim(self):
        """Same schedule with and without the profiler: identical clock,
        identical event count, identical callback order."""
        def drive(sim):
            order = []
            for index, delay in enumerate((0.3, 0.1, 0.1, 0.7)):
                sim.schedule(delay, order.append, index)
            sim.run()
            return order, sim.now, sim.events_processed

        plain = drive(Simulator(seed=9))
        profiled_sim = Simulator(seed=9)
        SimProfiler().attach(profiled_sim)
        assert drive(profiled_sim) == plain

    def test_exception_in_callback_still_accounted(self):
        sim = Simulator()
        profiler = SimProfiler().attach(sim)

        def boom():
            raise RuntimeError("boom")

        sim.schedule(0.1, boom, label="boom")
        with pytest.raises(RuntimeError):
            sim.run()
        assert profiler.events == 1
        bucket = profiler.buckets[("other", "boom")]
        assert bucket.count == 1 and bucket.wall >= 0.0

    def test_cost_table_sorted_and_shared(self):
        _, profiler, _ = run_profiled()
        rows = profiler.cost_table()
        walls = [row["wall_seconds"] for row in rows]
        assert walls == sorted(walls, reverse=True)
        assert sum(row["wall_share"] for row in rows) == pytest.approx(1.0)
        assert profiler.top_buckets(1) == rows[:1]

    def test_render_smoke(self):
        _, profiler, _ = run_profiled()
        text = profiler.render()
        assert "profile:" in text and "tick" in text


class TestAttachProfiler:
    class FakeCluster:
        def __init__(self):
            self.sim = Simulator()

    def test_idempotent(self):
        cluster = self.FakeCluster()
        first = attach_profiler(cluster)
        assert attach_profiler(cluster) is first
        assert cluster.sim.profiler is first
        assert cluster.profiler is first


class TestCollapsedStacks:
    def test_round_trip(self, tmp_path):
        _, profiler, _ = run_profiled()
        path = tmp_path / "profile.collapsed"
        profiler.write_collapsed(str(path))
        parsed = parse_collapsed(path.read_text().splitlines())
        assert len(parsed) == len(profiler.buckets)
        frames = {frame for frame, _ in parsed}
        assert any(frame.endswith(";tick") for frame in frames)
        assert all(weight >= 1 for _, weight in parsed)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not collapsed-stack"):
            parse_collapsed(["no weight here"])
        with pytest.raises(ValueError, match="not collapsed-stack"):
            parse_collapsed(["frame -3"])
        with pytest.raises(ValueError, match="empty"):
            parse_collapsed(["", "   "])
