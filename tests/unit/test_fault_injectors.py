"""Unit tests for the composable network fault injectors."""

import random

import pytest

from repro.faults.injectors import (
    DuplicateInjector,
    FaultInjector,
    LatencySpikeInjector,
    OneWayLinkInjector,
    ReorderInjector,
    site_of,
)
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.core import Simulator


def apply(injector, delays, seed=1, src="S1", dst="S2", now=0.0):
    return injector.transform(src, dst, None, list(delays), random.Random(seed), now)


class TestSiteOf:
    def test_plain_endpoint(self):
        assert site_of("S3") == "S3"

    def test_transfer_endpoint(self):
        assert site_of("S3:xfer") == "S3"


class TestDuplicateInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            DuplicateInjector(rate=1.5)
        with pytest.raises(ValueError):
            DuplicateInjector(copies=0)

    def test_rate_one_always_duplicates(self):
        out = apply(DuplicateInjector(rate=1.0, copies=2, spread=0.01), [0.001])
        assert len(out) == 3  # original + 2 copies

    def test_rate_zero_is_identity(self):
        assert apply(DuplicateInjector(rate=0.0), [0.001]) == [0.001]

    def test_copies_scheduled_after_original(self):
        out = apply(DuplicateInjector(rate=1.0, copies=1, spread=0.01), [0.005])
        assert out[0] == 0.005
        assert out[1] >= 0.005


class TestReorderInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReorderInjector(rate=-0.1)
        with pytest.raises(ValueError):
            ReorderInjector(max_extra=0.0)

    def test_extra_delay_is_bounded(self):
        injector = ReorderInjector(rate=1.0, max_extra=0.05)
        for seed in range(50):
            (out,) = apply(injector, [0.001], seed=seed)
            assert 0.001 <= out <= 0.001 + 0.05

    def test_never_drops_or_duplicates(self):
        out = apply(ReorderInjector(rate=1.0, max_extra=0.05), [0.001, 0.002])
        assert len(out) == 2


class TestOneWayLinkInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            OneWayLinkInjector("S1", "S2", loss_rate=2.0)
        with pytest.raises(ValueError):
            OneWayLinkInjector("S1", "S2", extra_latency=-1.0)

    def test_full_blackout_drops_matching_direction(self):
        injector = OneWayLinkInjector("S1", "S2", loss_rate=1.0)
        assert apply(injector, [0.001], src="S1", dst="S2") == []

    def test_reverse_direction_untouched(self):
        injector = OneWayLinkInjector("S1", "S2", loss_rate=1.0)
        assert apply(injector, [0.001], src="S2", dst="S1") == [0.001]

    def test_transfer_endpoints_match_by_site_prefix(self):
        injector = OneWayLinkInjector("S1", "S2", loss_rate=1.0)
        assert apply(injector, [0.001], src="S1:xfer", dst="S2:xfer") == []

    def test_extra_latency_without_loss(self):
        injector = OneWayLinkInjector("S1", "S2", loss_rate=0.0, extra_latency=0.2)
        assert apply(injector, [0.001], src="S1", dst="S2") == [pytest.approx(0.201)]


class TestLatencySpikeInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencySpikeInjector(rate=1.5)
        with pytest.raises(ValueError):
            LatencySpikeInjector(spike=-0.1)

    def test_burst_applies_to_all_messages_while_active(self):
        injector = LatencySpikeInjector(rate=1.0, spike=0.5, burst_duration=1.0)
        (first,) = apply(injector, [0.001], now=0.0)
        assert first == pytest.approx(0.501)
        # Still inside the burst window: even a rate-0 draw is spiked.
        (second,) = apply(injector, [0.002], now=0.5)
        assert second == pytest.approx(0.502)

    def test_burst_expires(self):
        injector = LatencySpikeInjector(rate=1.0, spike=0.5, burst_duration=0.1)
        apply(injector, [0.001], now=0.0)
        assert not injector.in_burst(0.2)


class TestComposition:
    def make_net(self):
        sim = Simulator(seed=7)
        net = Network(sim, latency=FixedLatency(0.001))
        inbox = []
        net.endpoint("S2").attach(lambda src, payload: inbox.append(payload))
        net.endpoint("S1").attach(lambda src, payload: None)
        net.bring_up("S1")
        net.bring_up("S2")
        return sim, net, inbox

    def test_injector_pipeline_applies_left_to_right(self):
        sim, net, inbox = self.make_net()
        net.add_injector(DuplicateInjector(rate=1.0, copies=1, spread=0.01))
        net.add_injector(OneWayLinkInjector("S1", "S2", loss_rate=1.0))
        net.send("S1", "S2", "m")
        sim.run()
        # The duplicate is produced first, then the blackout eats both.
        assert inbox == []

    def test_remove_injector_restores_delivery(self):
        sim, net, inbox = self.make_net()
        blackout = net.add_injector(OneWayLinkInjector("S1", "S2", loss_rate=1.0))
        net.send("S1", "S2", "lost")
        net.remove_injector(blackout)
        net.send("S1", "S2", "kept")
        sim.run()
        assert inbox == ["kept"]

    def test_duplicates_are_delivered(self):
        sim, net, inbox = self.make_net()
        net.add_injector(DuplicateInjector(rate=1.0, copies=2, spread=0.01))
        net.send("S1", "S2", "m")
        sim.run()
        assert inbox == ["m", "m", "m"]

    def test_base_injector_is_identity(self):
        sim, net, inbox = self.make_net()
        net.add_injector(FaultInjector())
        net.send("S1", "S2", "m")
        sim.run()
        assert inbox == ["m"]
