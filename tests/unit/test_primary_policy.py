"""Unit + protocol tests for the primary-view policies (section 2.1)."""

import pytest

from repro.gcs.config import GCSConfig
from repro.gcs.primary import (
    DynamicLinearPolicy,
    PrimaryLineage,
    StaticMajorityPolicy,
    most_recent,
    policy_by_name,
)
from tests.conftest import make_group


class TestPolicies:
    def test_registry(self):
        assert isinstance(policy_by_name("static"), StaticMajorityPolicy)
        assert isinstance(policy_by_name("dynamic_linear"), DynamicLinearPolicy)
        with pytest.raises(ValueError):
            policy_by_name("quorum_of_quorums")

    def test_static_majority(self):
        policy = StaticMajorityPolicy()
        assert policy.decide(("a", "b"), 3, [])
        assert not policy.decide(("a", "b"), 4, [])

    def test_dynamic_bootstrap_uses_universe(self):
        policy = DynamicLinearPolicy()
        assert policy.decide(("a", "b", "c"), 5, [None, None])
        assert not policy.decide(("a", "b"), 5, [None])

    def test_dynamic_majority_of_previous_primary(self):
        policy = DynamicLinearPolicy()
        lineage = PrimaryLineage(3, ("c", "d", "e"))
        # 2 of the 3 previous-primary members: primary even though 2 of 5.
        assert policy.decide(("c", "d"), 5, [lineage])
        assert not policy.decide(("e",), 5, [lineage])
        # Outsiders do not count toward the overlap.
        assert not policy.decide(("a", "b", "e"), 5, [lineage])

    def test_most_recent_picks_highest_generation(self):
        old = PrimaryLineage(1, ("a",))
        new = PrimaryLineage(2, ("b",))
        assert most_recent([old, None, new]) == new
        assert most_recent([None, None]) is None


class TestDynamicPolicyInTheGroup:
    def test_shrinking_primary_chain(self):
        """primary {S1..S5} -> {S3,S4,S5} -> {S3,S4}: under the dynamic
        policy the last view is still primary (majority of the previous
        primary); under the static policy it is not."""
        outcomes = {}
        for policy in ("static", "dynamic_linear"):
            sim, net, members, _ = make_group(
                5, seed=6, config=GCSConfig(primary_policy=policy)
            )
            sim.run(until=2.0)
            net.set_partitions([{"S3", "S4", "S5"}, {"S1", "S2"}])
            sim.run(until=5.0)
            assert members["S3"].is_primary()
            net.set_partitions([{"S3", "S4"}, {"S5"}, {"S1", "S2"}])
            sim.run(until=8.0)
            outcomes[policy] = members["S3"].is_primary()
        assert outcomes == {"static": False, "dynamic_linear": True}

    def test_dynamic_minority_side_never_primary(self):
        sim, net, members, _ = make_group(
            5, seed=6, config=GCSConfig(primary_policy="dynamic_linear")
        )
        sim.run(until=2.0)
        net.set_partitions([{"S3", "S4", "S5"}, {"S1", "S2"}])
        sim.run(until=5.0)
        assert not members["S1"].is_primary()
        net.set_partitions([{"S3", "S4"}, {"S5"}, {"S1", "S2"}])
        sim.run(until=8.0)
        assert not members["S1"].is_primary()
        assert not members["S5"].is_primary()

    def test_lineage_survives_merges(self):
        sim, net, members, _ = make_group(
            5, seed=6, config=GCSConfig(primary_policy="dynamic_linear")
        )
        sim.run(until=2.0)
        net.set_partitions([{"S3", "S4", "S5"}, {"S1", "S2"}])
        sim.run(until=5.0)
        net.heal()
        sim.run(until=8.0)
        assert all(m.is_primary() for m in members.values())
        generations = {m.lineage.generation for m in members.values()}
        assert len(generations) == 1

    def test_static_remains_default(self):
        sim, _, members, _ = make_group(3, seed=1)
        assert members["S1"].primary_policy.name == "static"
