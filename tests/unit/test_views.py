"""Unit tests for views, view ids and the failure detector."""

from repro.gcs.failure_detector import FailureDetector
from repro.gcs.messages import Presence
from repro.gcs.view import View, ViewId, majority, singleton_view
from repro.sim.core import Simulator


class TestViewId:
    def test_ordering_by_epoch_then_coordinator(self):
        assert ViewId(1, "S2") < ViewId(2, "S1")
        assert ViewId(2, "S1") < ViewId(2, "S2")

    def test_str(self):
        assert str(ViewId(3, "S1")) == "3@S1"


class TestView:
    def test_members_sorted_and_deduped_order(self):
        view = View(ViewId(1, "S1"), ("S3", "S1", "S2"))
        assert view.members == ("S1", "S2", "S3")

    def test_contains_and_len(self):
        view = View(ViewId(1, "S1"), ("S1", "S2"))
        assert "S1" in view and "S9" not in view
        assert len(view) == 2

    def test_primary_is_strict_majority(self):
        view = View(ViewId(1, "S1"), ("S1", "S2"))
        assert view.is_primary(3)
        assert not view.is_primary(4)  # 2 of 4 is not a majority
        assert not View(ViewId(1, "S1"), ("S1",)).is_primary(2)

    def test_singleton_view(self):
        view = singleton_view("S5", 7)
        assert view.members == ("S5",)
        assert view.view_id == ViewId(7, "S5")

    def test_majority_helper(self):
        assert majority(["a", "b", "c"], ["a", "b"])
        assert not majority(["a", "b", "c", "d"], ["a", "b"])
        assert not majority(["a", "b"], ["x", "y", "z"])  # outsiders don't count


class TestFailureDetector:
    def make(self, timeout=1.0):
        sim = Simulator()
        fd = FailureDetector(sim, "S1", timeout)
        return sim, fd

    def presence(self, sender, epoch=1):
        return Presence(sender=sender, view_id=ViewId(epoch, sender), view_members=(sender,), epoch=epoch)

    def test_self_always_alive(self):
        _, fd = self.make()
        assert fd.is_alive("S1")

    def test_unheard_node_not_alive(self):
        _, fd = self.make()
        assert not fd.is_alive("S2")

    def test_alive_within_timeout(self):
        sim, fd = self.make(timeout=1.0)
        fd.on_presence(self.presence("S2"))
        sim.now = 0.9
        assert fd.is_alive("S2")
        sim.now = 1.1
        assert not fd.is_alive("S2")

    def test_alive_nodes_set(self):
        sim, fd = self.make(timeout=1.0)
        fd.on_presence(self.presence("S2"))
        fd.on_presence(self.presence("S3"))
        sim.now = 0.5
        fd.on_presence(self.presence("S2"))
        sim.now = 1.2
        assert fd.alive_nodes() == {"S2"}

    def test_force_suspect(self):
        _, fd = self.make()
        fd.on_presence(self.presence("S2"))
        fd.force_suspect("S2")
        assert not fd.is_alive("S2")

    def test_claimed_view_only_for_alive(self):
        sim, fd = self.make(timeout=1.0)
        fd.on_presence(self.presence("S2", epoch=4))
        assert fd.claimed_view("S2") == ViewId(4, "S2")
        sim.now = 2.0
        assert fd.claimed_view("S2") is None

    def test_max_epoch_tracking(self):
        _, fd = self.make()
        fd.on_presence(self.presence("S2", epoch=9))
        fd.note_epoch(4)
        assert fd.max_epoch_seen == 9
        fd.note_epoch(12)
        assert fd.max_epoch_seen == 12

    def test_reset_clears_everything(self):
        _, fd = self.make()
        fd.on_presence(self.presence("S2"))
        fd.reset()
        assert not fd.is_alive("S2")
        assert fd.alive_nodes() == set()
