"""Unit tests for the network substrate."""

import pytest

from repro.net.latency import FixedLatency, UniformLatency
from repro.net.network import Network
from repro.sim.core import Simulator


def make_net(seed=1, latency=0.001, loss=0.0):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(latency), loss_rate=loss)
    return sim, net


def attach(net, node):
    inbox = []
    endpoint = net.endpoint(node)
    endpoint.attach(lambda src, payload: inbox.append((src, payload)))
    net.bring_up(node)
    return endpoint, inbox


class TestLatencyModels:
    def test_fixed(self):
        sim = Simulator()
        assert FixedLatency(0.5).sample(sim.rng) == 0.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)

    def test_uniform_in_range(self):
        sim = Simulator(seed=3)
        model = UniformLatency(0.001, 0.005)
        for _ in range(100):
            value = model.sample(sim.rng)
            assert 0.001 <= value <= 0.005

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)


class TestDelivery:
    def test_basic_delivery_with_latency(self):
        sim, net = make_net(latency=0.25)
        _, inbox = attach(net, "B")
        attach(net, "A")
        net.send("A", "B", "hello")
        sim.run()
        assert inbox == [("A", "hello")]
        assert sim.now == 0.25

    def test_send_from_down_node_dropped(self):
        sim, net = make_net()
        _, inbox = attach(net, "B")
        net.endpoint("A")  # never brought up
        net.send("A", "B", "x")
        sim.run()
        assert inbox == []

    def test_send_to_down_node_dropped(self):
        sim, net = make_net()
        attach(net, "A")
        endpoint_b, inbox = attach(net, "B")
        net.take_down("B")
        net.send("A", "B", "x")
        sim.run()
        assert inbox == []
        assert net.messages_dropped == 1

    def test_crash_while_in_flight_drops(self):
        sim, net = make_net(latency=1.0)
        attach(net, "A")
        _, inbox = attach(net, "B")
        net.send("A", "B", "x")
        sim.schedule(0.5, net.take_down, "B")
        sim.run()
        assert inbox == []

    def test_unknown_destination_dropped(self):
        sim, net = make_net()
        attach(net, "A")
        net.send("A", "nowhere", "x")
        sim.run()
        assert net.messages_dropped == 1

    def test_loss_rate_drops_some(self):
        sim, net = make_net(seed=5, loss=0.5)
        attach(net, "A")
        _, inbox = attach(net, "B")
        for _ in range(200):
            net.send("A", "B", "x")
        sim.run()
        assert 40 < len(inbox) < 160

    def test_loss_rate_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, loss_rate=1.0)

    def test_send_many(self):
        sim, net = make_net()
        endpoint, _ = attach(net, "A")
        _, inbox_b = attach(net, "B")
        _, inbox_c = attach(net, "C")
        endpoint.send_many(["B", "C"], "m")
        sim.run()
        assert inbox_b == [("A", "m")] and inbox_c == [("A", "m")]

    def test_message_counters(self):
        sim, net = make_net()
        endpoint_a, _ = attach(net, "A")
        endpoint_b, inbox = attach(net, "B")
        net.send("A", "B", 1)
        sim.run()
        assert endpoint_a.messages_sent == 1
        assert endpoint_b.messages_received == 1
        assert net.messages_delivered == 1

    def test_tap_observes_deliveries(self):
        sim, net = make_net()
        attach(net, "A")
        attach(net, "B")
        seen = []
        net.add_tap(lambda src, dst, payload: seen.append((src, dst, payload)))
        net.send("A", "B", 7)
        sim.run()
        assert seen == [("A", "B", 7)]


class TestPartitions:
    def test_partition_blocks_cross_component(self):
        sim, net = make_net()
        attach(net, "A")
        _, inbox_b = attach(net, "B")
        _, inbox_c = attach(net, "C")
        net.set_partitions([{"A", "B"}, {"C"}])
        net.send("A", "B", "in")
        net.send("A", "C", "out")
        sim.run()
        assert inbox_b == [("A", "in")]
        assert inbox_c == []

    def test_partition_while_in_flight_drops(self):
        sim, net = make_net(latency=1.0)
        attach(net, "A")
        _, inbox = attach(net, "B")
        net.send("A", "B", "x")
        sim.schedule(0.5, net.set_partitions, [{"A"}, {"B"}])
        sim.run()
        assert inbox == []

    def test_heal_restores_connectivity(self):
        sim, net = make_net()
        attach(net, "A")
        _, inbox = attach(net, "B")
        net.set_partitions([{"A"}, {"B"}])
        net.heal()
        net.send("A", "B", "x")
        sim.run()
        assert inbox == [("A", "x")]

    def test_node_in_two_groups_rejected(self):
        sim, net = make_net()
        attach(net, "A")
        with pytest.raises(ValueError):
            net.set_partitions([{"A"}, {"A"}])

    def test_unlisted_nodes_become_isolated(self):
        sim, net = make_net()
        attach(net, "A")
        attach(net, "B")
        _, inbox_c = attach(net, "C")
        net.set_partitions([{"A", "B"}])
        net.send("A", "C", "x")
        sim.run()
        assert inbox_c == []

    def test_reachable_self_always(self):
        sim, net = make_net()
        attach(net, "A")
        net.set_partitions([{"A"}])
        assert net.reachable("A", "A")

    def test_components_listing(self):
        sim, net = make_net()
        for node in ("A", "B", "C"):
            attach(net, node)
        net.set_partitions([{"A", "B"}, {"C"}])
        components = net.components()
        assert {"A", "B"} in components
        assert {"C"} in components


class TestLossRateValidation:
    def test_constructor_rejects_nan(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            Network(sim, latency=FixedLatency(0.001), loss_rate=float("nan"))

    def test_set_loss_rate_rejects_nan(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_loss_rate(float("nan"))

    def test_set_loss_rate_rejects_one(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_loss_rate(1.0)

    def test_set_loss_rate_rejects_negative(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_loss_rate(-0.01)

    def test_set_loss_rate_rejects_non_numbers(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_loss_rate("0.1")
        with pytest.raises(ValueError):
            net.set_loss_rate(True)

    def test_set_loss_rate_accepts_boundaries(self):
        sim, net = make_net()
        net.set_loss_rate(0.0)
        assert net.loss_rate == 0.0
        net.set_loss_rate(0.999)
        assert net.loss_rate == 0.999

    def test_set_loss_rate_accepts_int_zero(self):
        sim, net = make_net()
        net.set_loss_rate(0)
        assert net.loss_rate == 0.0
