"""Tests for the EVS layer (section 5.1): e-views, merges, fragmenting."""

import pytest

from repro.gcs.config import GCSConfig
from repro.gcs.evs import EnrichedGroupMember, EView
from repro.gcs.view import View, ViewId
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.core import Simulator


class EvsApp:
    def __init__(self):
        self.events = []
        self.messages = []

    def on_eview_change(self, eview, reason, states, gseq=None):
        self.events.append((reason, eview, gseq))

    def on_message(self, sender, payload, gseq):
        self.messages.append((gseq, sender, payload))

    def flush_state(self):
        return {}


def make_evs_group(n=4, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(0.001))
    universe = tuple(f"S{i + 1}" for i in range(n))
    apps = {node: EvsApp() for node in universe}
    members = {
        node: EnrichedGroupMember(sim, net, node, universe, GCSConfig(), apps[node])
        for node in universe
    }
    for member in members.values():
        member.start()
    sim.run(until=2.0)
    return sim, net, members, apps


def bootstrap_single_subview(sim, members):
    """Merge everyone into one subview (the steady state)."""
    lead = members["S1"]
    lead.subview_set_merge(tuple(lead.eview.subview_sets().keys()))
    sim.run(until=sim.now + 0.5)
    lead.subview_merge(tuple(lead.eview.subviews().keys()))
    sim.run(until=sim.now + 0.5)


class TestEViewStructure:
    def test_boot_structure_is_all_singletons(self):
        _, _, members, _ = make_evs_group(3)
        eview = members["S1"].eview
        assert len(eview.subviews()) == 3
        assert len(eview.subview_sets()) == 3

    def test_eview_agreement_across_members(self):
        _, _, members, _ = make_evs_group(3)
        eviews = [m.eview for m in members.values()]
        assert eviews[0] == eviews[1] == eviews[2]

    def test_no_primary_subview_initially(self):
        _, _, members, _ = make_evs_group(3)
        assert members["S1"].eview.primary_subview(3) is None
        assert not members["S1"].in_primary_subview()

    def test_subview_queries(self):
        view = View(ViewId(1, "S1"), ("S1", "S2", "S3"))
        sv = {"S1": "a", "S2": "a", "S3": "b"}
        svs = {"S1": "x", "S2": "x", "S3": "x"}
        eview = EView(view, sv, svs)
        assert eview.subview_of("S1") == {"S1", "S2"}
        assert eview.subview_set_of("S3") == {"S1", "S2", "S3"}
        assert eview.primary_subview(3) == {"S1", "S2"}


class TestMergePrimitives:
    def test_subview_set_merge_unifies_sets(self):
        sim, _, members, _ = make_evs_group(3)
        lead = members["S1"]
        lead.subview_set_merge(tuple(lead.eview.subview_sets().keys()))
        sim.run(until=sim.now + 0.5)
        assert len(members["S2"].eview.subview_sets()) == 1
        assert len(members["S2"].eview.subviews()) == 3  # subviews untouched

    def test_subview_merge_requires_same_subview_set(self):
        sim, _, members, _ = make_evs_group(3)
        lead = members["S1"]
        targets = tuple(lead.eview.subviews().keys())
        lead.subview_merge(targets)  # different subview-sets: must no-op
        sim.run(until=sim.now + 0.5)
        assert len(members["S2"].eview.subviews()) == 3

    def test_full_bootstrap_creates_primary_subview(self):
        sim, _, members, _ = make_evs_group(3)
        bootstrap_single_subview(sim, members)
        assert all(m.in_primary_subview() for m in members.values())

    def test_merge_events_totally_ordered_with_messages(self):
        sim, _, members, apps = make_evs_group(3)
        lead = members["S1"]
        lead.multicast("before")
        lead.subview_set_merge(tuple(lead.eview.subview_sets().keys()))
        lead.multicast("after")
        sim.run(until=sim.now + 0.5)
        app = apps["S3"]
        merge_gseq = next(g for r, _, g in app.events if r == "subview_set_merge")
        gseq_of = {p: g for g, _, p in app.messages}
        assert gseq_of["before"] < merge_gseq < gseq_of["after"]

    def test_stale_merge_request_is_noop(self):
        sim, _, members, apps = make_evs_group(3)
        lead = members["S1"]
        old_ids = tuple(lead.eview.subview_sets().keys())
        lead.subview_set_merge(old_ids)
        sim.run(until=sim.now + 0.5)
        events_before = len(apps["S2"].events)
        lead.subview_set_merge(old_ids)  # ids no longer exist
        sim.run(until=sim.now + 0.5)
        assert len(apps["S2"].events) == events_before

    def test_merge_ids_deterministic_across_members(self):
        sim, _, members, _ = make_evs_group(3)
        bootstrap_single_subview(sim, members)
        ids = {m.eview.subview_id_of("S1") for m in members.values()}
        assert len(ids) == 1


class TestFragmenting:
    def test_partition_fragments_subview(self):
        sim, net, members, _ = make_evs_group(4)
        bootstrap_single_subview(sim, members)
        net.set_partitions([{"S1", "S2", "S3"}, {"S4"}])
        sim.run(until=sim.now + 2.0)
        assert members["S1"].eview.subview_of("S1") == {"S1", "S2", "S3"}
        assert members["S4"].eview.subview_of("S4") == {"S4"}

    def test_reentering_node_is_own_subview_and_set(self):
        """Figure 2's key property: S4 re-enters in its own subview and
        subview-set, *not* silently back in the primary subview."""
        sim, net, members, _ = make_evs_group(4)
        bootstrap_single_subview(sim, members)
        net.set_partitions([{"S1", "S2", "S3"}, {"S4"}])
        sim.run(until=sim.now + 2.0)
        net.heal()
        sim.run(until=sim.now + 3.0)
        eview = members["S1"].eview
        assert len(eview.view) == 4
        assert eview.subview_of("S4") == {"S4"}
        assert eview.subview_set_of("S4") == {"S4"}
        assert eview.subview_of("S1") == {"S1", "S2", "S3"}
        assert members["S1"].in_primary_subview()
        assert not members["S4"].in_primary_subview()

    def test_structure_survives_benign_view_change(self):
        sim, net, members, _ = make_evs_group(4)
        bootstrap_single_subview(sim, members)
        members["S4"].crash()
        sim.run(until=sim.now + 2.0)
        eview = members["S1"].eview
        assert eview.subview_of("S1") == {"S1", "S2", "S3"}
        assert members["S1"].in_primary_subview()

    def test_crashed_node_restarts_as_singleton(self):
        sim, net, members, _ = make_evs_group(4)
        bootstrap_single_subview(sim, members)
        members["S4"].crash()
        sim.run(until=sim.now + 2.0)
        members["S4"].start()
        sim.run(until=sim.now + 3.0)
        eview = members["S1"].eview
        assert eview.subview_of("S4") == {"S4"}
        assert not members["S4"].in_primary_subview()

    def test_reconciliation_merges_rejoiner_back(self):
        sim, net, members, _ = make_evs_group(4)
        bootstrap_single_subview(sim, members)
        net.set_partitions([{"S1", "S2", "S3"}, {"S4"}])
        sim.run(until=sim.now + 2.0)
        net.heal()
        sim.run(until=sim.now + 3.0)
        lead = members["S1"]
        eview = lead.eview
        lead.subview_set_merge(
            (eview.subview_set_id_of("S1"), eview.subview_set_id_of("S4"))
        )
        sim.run(until=sim.now + 0.5)
        eview = lead.eview
        lead.subview_merge((eview.subview_id_of("S1"), eview.subview_id_of("S4")))
        sim.run(until=sim.now + 0.5)
        assert members["S4"].in_primary_subview()
        assert all(m.eview == lead.eview for m in members.values())
