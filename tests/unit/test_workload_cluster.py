"""Unit tests for the workload generator and cluster harness."""

import pytest

from repro import ClusterBuilder, FaultEvent, FaultSchedule, LoadGenerator, WorkloadConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


class TestLoadGenerator:
    def test_generates_transactions_at_rate(self):
        cluster = quick_cluster()
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=200))
        load.start()
        cluster.run_for(1.0)
        load.stop()
        cluster.settle(0.5)
        assert 120 < len(load.transactions) < 300

    def test_stop_stops(self):
        cluster = quick_cluster()
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=200))
        load.start()
        cluster.run_for(0.5)
        load.stop()
        count = len(load.transactions)
        cluster.run_for(0.5)
        assert len(load.transactions) == count

    def test_skips_when_no_active_site(self):
        cluster = quick_cluster()
        for site in cluster.universe:
            cluster.crash(site)
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=100))
        load.start()
        cluster.run_for(0.5)
        assert load.transactions == []
        assert load.skipped > 10

    def test_operation_counts_respected(self):
        cluster = quick_cluster()
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=50,
                                                     reads_per_txn=3, writes_per_txn=2))
        load.start()
        cluster.run_for(0.5)
        load.stop()
        cluster.settle(0.5)
        for txn in load.transactions:
            assert len(txn.writes) <= 2  # duplicate write targets collapse
            assert len(txn.reads) <= 3

    def test_hot_spot_skews_access(self):
        cluster = quick_cluster(db_size=100)
        config = WorkloadConfig(arrival_rate=400, reads_per_txn=0, writes_per_txn=1,
                                hot_fraction=0.1, hot_access_probability=0.9)
        load = LoadGenerator(cluster, config)
        load.start()
        cluster.run_for(1.0)
        load.stop()
        cluster.settle(0.5)
        hot = sorted(cluster.initial_db)[:10]
        hot_writes = sum(1 for t in load.transactions for o in t.writes if o in hot)
        total_writes = sum(len(t.writes) for t in load.transactions)
        assert hot_writes / total_writes > 0.6

    def test_abort_rate_metric(self):
        cluster = quick_cluster()
        load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=50))
        load.start()
        cluster.run_for(0.5)
        load.stop()
        cluster.settle(0.5)
        assert 0.0 <= load.abort_rate() <= 1.0


class TestFaultSchedule:
    def test_fluent_builder_sorts_events(self):
        schedule = FaultSchedule().heal(3.0).crash(1.0, "S1").recover(2.0, "S1")
        # events are appended, applied in time order by the scheduler
        kinds = [(e.time, e.action) for e in schedule.events]
        assert (1.0, "crash") in kinds and (3.0, "heal") in kinds

    def test_schedule_applied_to_cluster(self):
        cluster = quick_cluster()
        schedule = (
            FaultSchedule()
            .crash(0.5, "S3")
            .recover(1.2, "S3")
        )
        cluster.apply_fault_schedule(schedule)
        cluster.run_until(0.8)
        assert not cluster.nodes["S3"].alive
        cluster.run_until(1.5)
        assert cluster.nodes["S3"].alive
        assert cluster.await_all_active(timeout=20)
        cluster.check()

    def test_partition_event(self):
        cluster = quick_cluster(n_sites=5)
        schedule = FaultSchedule().partition(0.5, [["S1", "S2", "S3"], ["S4", "S5"]]).heal(2.0)
        cluster.apply_fault_schedule(schedule)
        cluster.run_until(1.8)
        assert cluster.nodes["S4"].status is SiteStatus.STALLED
        cluster.run_until(3.0)
        assert cluster.await_all_active(timeout=20)

    def test_unknown_action_rejected(self):
        cluster = quick_cluster()
        schedule = FaultSchedule([FaultEvent(1.0, "meteor", "S1")])
        with pytest.raises(ValueError):
            cluster.apply_fault_schedule(schedule)


class TestClusterHelpers:
    def test_reconfig_stats_shape(self):
        cluster = quick_cluster()
        stats = cluster.reconfig_stats()
        assert set(stats) == set(cluster.universe)
        assert "transfers_started" in stats["S1"]

    def test_total_commits_deduplicates_gids(self):
        cluster = quick_cluster()
        cluster.submit_via("S1", [], {"obj0": 1})
        cluster.settle(0.3)
        assert cluster.total_commits() == 1  # one gid, three sites

    def test_await_condition_times_out(self):
        cluster = quick_cluster()
        assert not cluster.await_condition(lambda: False, timeout=0.3)

    def test_initial_sites_subset(self):
        cluster = ClusterBuilder(n_sites=4, db_size=10, seed=1,
                                 initial_sites=["S1", "S2", "S3"]).build()
        assert cluster.nodes["S4"].has_initial_copy is False
        assert cluster.nodes["S1"].has_initial_copy is True
