"""Unit tests for the bench regression gate (repro.bench).

``compare_to_baseline`` is the CI tripwire, so its failure modes are
pinned exhaustively here: scenario-set mismatches in *both* directions,
the deterministic commits-per-simulated-second gate (primary), the
noisy wall-clock gate (secondary), incomplete scenarios, and the
smoke-scale mismatch short-circuit.  Unknown scenario names must be
rejected with the valid choices listed — at the library level and at
the argparse level.
"""

import pytest

from repro import cli
from repro.bench import (
    DEFAULT_SIM_TOLERANCE,
    DEFAULT_TOLERANCE,
    SCENARIOS,
    SCHEMA_VERSION,
    compare_to_baseline,
    run_matrix,
    validate_scenarios,
)


def row(sim=100.0, wall=50.0, completed=True):
    return {
        "commits_per_sim_second": sim,
        "commits_per_wall_second": wall,
        "completed": completed,
    }


def payload(smoke=True, schema=SCHEMA_VERSION, **scenarios):
    return {"smoke": smoke, "schema": schema, "scenarios": scenarios}


class TestCompareToBaseline:
    def test_identical_payloads_pass(self):
        base = payload(a=row(), b=row())
        assert compare_to_baseline(payload(a=row(), b=row()), base) == []

    def test_stale_schema_baseline_fails_loudly(self):
        # The exact bug this gate exists for: a baseline left behind at
        # an older schema must never be silently compared again.
        failures = compare_to_baseline(
            payload(a=row()), payload(schema=SCHEMA_VERSION - 1, a=row()))
        assert len(failures) == 1
        assert "schema mismatch" in failures[0]
        assert f"schema {SCHEMA_VERSION - 1}" in failures[0]
        assert f"schema {SCHEMA_VERSION}" in failures[0]

    def test_schema_mismatch_short_circuits_other_gates(self):
        # One loud failure, not a pile of bogus per-scenario ones.
        failures = compare_to_baseline(
            payload(a=row(sim=1.0, wall=1.0)),
            payload(schema=SCHEMA_VERSION - 1, b=row()))
        assert len(failures) == 1
        assert "schema mismatch" in failures[0]

    def test_baseline_without_schema_key_fails(self):
        base = {"smoke": True, "scenarios": {"a": row()}}
        failures = compare_to_baseline(payload(a=row()), base)
        assert len(failures) == 1
        assert "schema mismatch" in failures[0]
        assert "schema None" in failures[0]

    def test_scenario_missing_from_results_fails(self):
        failures = compare_to_baseline(
            payload(a=row()), payload(a=row(), b=row()))
        assert len(failures) == 1
        assert "b: present in the baseline but missing from the results" \
            in failures[0]

    def test_scenario_missing_from_baseline_fails(self):
        failures = compare_to_baseline(
            payload(a=row(), b=row()), payload(a=row()))
        assert len(failures) == 1
        assert "b: not covered by the baseline" in failures[0]

    def test_mismatches_in_both_directions_reported_together(self):
        failures = compare_to_baseline(
            payload(a=row(), c=row()), payload(a=row(), b=row()))
        assert len(failures) == 2
        assert any("missing from the results" in f for f in failures)
        assert any("not covered by the baseline" in f for f in failures)

    def test_incomplete_scenario_fails(self):
        failures = compare_to_baseline(
            payload(a=row(completed=False)), payload(a=row()))
        assert failures == ["a: scenario did not complete"]

    def test_sim_rate_drop_fails_even_with_healthy_wall_clock(self):
        drop = 1.0 - DEFAULT_SIM_TOLERANCE - 0.02
        failures = compare_to_baseline(
            payload(a=row(sim=100.0 * drop, wall=50.0)),
            payload(a=row()))
        assert len(failures) == 1
        assert "commits per simulated second" in failures[0]
        assert "behaviour change, not noise" in failures[0]

    def test_sim_rate_within_tolerance_passes(self):
        within = 1.0 - DEFAULT_SIM_TOLERANCE / 2
        assert compare_to_baseline(
            payload(a=row(sim=100.0 * within)), payload(a=row())) == []

    def test_wall_clock_drop_fails_as_secondary_gate(self):
        drop = 1.0 - DEFAULT_TOLERANCE - 0.05
        failures = compare_to_baseline(
            payload(a=row(wall=50.0 * drop)), payload(a=row()))
        assert len(failures) == 1
        assert "commits/s" in failures[0]

    def test_wall_clock_noise_within_tolerance_passes(self):
        within = 1.0 - DEFAULT_TOLERANCE / 2
        assert compare_to_baseline(
            payload(a=row(wall=50.0 * within)), payload(a=row())) == []

    def test_smoke_scale_mismatch_short_circuits(self):
        # Comparing smoke results against a full-scale baseline is
        # meaningless; it must fail once, loudly, without piling on
        # bogus per-scenario rate failures.
        failures = compare_to_baseline(
            payload(smoke=True, a=row(sim=1.0, wall=1.0)),
            payload(smoke=False, a=row(), b=row()))
        assert len(failures) == 1
        assert "configuration mismatch" in failures[0]


class TestScenarioValidation:
    def test_unknown_scenario_lists_valid_choices(self):
        with pytest.raises(ValueError) as err:
            validate_scenarios(["figure1", "bogus"])
        assert "bogus" in str(err.value)
        for name in SCENARIOS:
            assert name in str(err.value)

    def test_run_matrix_rejects_unknown_only_upfront(self):
        with pytest.raises(ValueError, match="valid choices"):
            run_matrix(smoke=True, only=["no-such-scenario"])

    def test_cli_rejects_unknown_scenario_at_argparse_level(self, capsys):
        with pytest.raises(SystemExit) as err:
            cli.main(["bench", "--scenario", "bogus"])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "invalid choice" in stderr and "figure1" in stderr
