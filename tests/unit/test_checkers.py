"""Unit tests for the correctness checkers themselves."""

import pytest

from repro.checkers import (
    ConsistencyViolation,
    HistoryRecorder,
    check_decision_agreement,
    check_gid_consistency,
    check_one_copy_serializability,
    check_processing_order,
)
from repro.replication.messages import TransactionMessage


def txn(origin="S1", local_id="S1#1", reads=(), writes=()):
    return TransactionMessage(
        origin=origin, local_id=local_id, read_set=tuple(reads), write_set=tuple(writes)
    )


class TestGidConsistency:
    def test_same_message_ok(self):
        history = HistoryRecorder()
        message = txn()
        history.record("S1", "commit", 0, message)
        history.record("S2", "commit", 0, message)
        check_gid_consistency(history)

    def test_conflicting_binding_detected(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 0, txn(local_id="S1#1"))
        history.record("S2", "commit", 0, txn(local_id="S2#9"))
        with pytest.raises(ConsistencyViolation):
            check_gid_consistency(history)


class TestProcessingOrder:
    def test_duplicate_termination_detected(self):
        history = HistoryRecorder()
        message = txn()
        history.record("S1", "commit", 0, message)
        history.record("S1", "commit", 0, message)
        with pytest.raises(ConsistencyViolation):
            check_processing_order(history)

    def test_out_of_order_termination_allowed(self):
        """Non-conflicting write phases may commit out of gid order."""
        history = HistoryRecorder()
        history.record("S1", "commit", 1, txn(local_id="a"))
        history.record("S1", "commit", 0, txn(local_id="b"))
        check_processing_order(history)


class TestDecisionAgreement:
    def test_disagreement_detected(self):
        history = HistoryRecorder()
        message = txn()
        history.record("S1", "commit", 0, message)
        history.record("S2", "abort", 0, message)
        with pytest.raises(ConsistencyViolation):
            check_decision_agreement(history)

    def test_agreement_ok(self):
        history = HistoryRecorder()
        message = txn()
        history.record("S1", "abort", 0, message)
        history.record("S2", "abort", 0, message)
        check_decision_agreement(history)


class TestSerializability:
    def test_valid_history_passes(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 0, txn(local_id="w0", writes=(("a", 1),)))
        history.record("S1", "commit", 1, txn(local_id="r1", reads=(("a", 0),), writes=(("a", 2),)))
        check_one_copy_serializability(history)

    def test_stale_read_detected(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 0, txn(local_id="w0", writes=(("a", 1),)))
        history.record("S1", "commit", 1, txn(local_id="r1", reads=(("a", -1),)))
        with pytest.raises(ConsistencyViolation):
            check_one_copy_serializability(history)

    def test_aborted_transactions_excluded(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 0, txn(local_id="w0", writes=(("a", 1),)))
        history.record("S1", "abort", 1, txn(local_id="stale", reads=(("a", -1),)))
        history.record("S1", "commit", 2, txn(local_id="r2", reads=(("a", 0),)))
        check_one_copy_serializability(history)

    def test_initial_version_read(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 0, txn(local_id="r0", reads=(("a", -1),)))
        check_one_copy_serializability(history)


class TestRecorder:
    def test_commits_of_site(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 0, txn())
        history.record("S1", "abort", 1, txn(local_id="x"))
        assert history.commits_of("S1") == [0]

    def test_decided_gids(self):
        history = HistoryRecorder()
        history.record("S1", "commit", 3, txn())
        assert history.decided_gids() == {3}

    def test_timestamps_from_clock(self):
        now = {"t": 1.5}
        history = HistoryRecorder(clock=lambda: now["t"])
        history.record("S1", "commit", 0, txn())
        assert history.events[0].time == 1.5
