"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    RunData,
    Span,
    SpanTracker,
    TIME_BUCKETS,
    chrome_trace,
    load_jsonl,
    prometheus_text,
    render_summary,
    write_jsonl,
)
from repro.tracing import TraceEvent


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("net.messages", "help text")
        counter.inc()
        counter.inc(4)
        gauge = registry.gauge("queue.depth")
        gauge.set(7)
        gauge.dec(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["net.messages"] == 5
        assert snapshot["gauges"]["queue.depth"] == 5

    def test_instruments_are_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        registry.counter("a").inc()
        assert registry.snapshot()["counters"]["a"] == 1

    def test_histogram_buckets(self):
        histogram = Histogram("sizes", bounds=(10, 100))
        for value in (5, 10, 50, 1000):
            histogram.observe(value)
        data = histogram.to_dict()
        assert data["count"] == 4
        assert data["sum"] == 1065
        # Per-bucket (non-cumulative): <=10 gets 5 and 10, <=100 gets 50,
        # +Inf gets 1000.
        assert data["buckets"]["10"] == 2
        assert data["buckets"]["100"] == 1
        assert data["buckets"]["+Inf"] == 1
        assert histogram.mean == pytest.approx(1065 / 4)

    def test_collectors_merge_into_counters(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: {"pull.value": 42})
        registry.counter("push.value").inc(3)
        counters = registry.snapshot()["counters"]
        assert counters == {"push.value": 3, "pull.value": 42}

    def test_bucket_presets_are_sorted(self):
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)
        assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)


def event(time, site, category, kind, **data):
    return TraceEvent(time, site, category, kind, data=data or None)


class TestSpanTracker:
    def test_transaction_lifecycle(self):
        tracker = SpanTracker()
        tracker.on_trace_event(event(1.0, "S1", "txn", "submit", txn="S1#0"))
        tracker.on_trace_event(event(1.1, "S1", "txn", "deliver", txn="S1#0", gid=3))
        tracker.on_trace_event(event(1.1, "S2", "txn", "deliver", txn="S1#0", gid=3))
        tracker.on_trace_event(event(1.2, "S1", "txn", "commit", txn="S1#0", gid=3))
        tracker.on_trace_event(event(1.3, "S2", "txn", "commit", txn="S1#0", gid=3))
        tracker.on_trace_event(event(1.2, "S1", "txn", "done", txn="S1#0",
                                     state="committed"))
        roots = tracker.of("txn")
        assert len(roots) == 1
        root = roots[0]
        assert root.start == 1.0 and root.end == 1.2
        assert root.attrs["outcome"] == "committed"
        assert root.attrs["gid"] == 3
        applies = tracker.children_of(root)
        assert sorted(s.site for s in applies) == ["S1", "S2"]
        assert all(s.end is not None for s in applies)

    def test_late_replay_apply_attaches_to_finished_root(self):
        tracker = SpanTracker()
        tracker.on_trace_event(event(1.0, "S1", "txn", "submit", txn="S1#0"))
        tracker.on_trace_event(event(1.2, "S1", "txn", "done", txn="S1#0",
                                     state="committed"))
        # S3 replays the transaction after the origin finished it.
        tracker.on_trace_event(event(5.0, "S3", "txn", "commit", txn="S1#0", gid=3))
        roots = tracker.of("txn")
        assert len(roots) == 1  # no duplicate root
        replayed = tracker.children_of(roots[0])
        assert len(replayed) == 1
        assert replayed[0].name == "apply(replay)"
        assert replayed[0].end == 5.0

    def test_recovery_with_phases(self):
        tracker = SpanTracker()
        tracker.on_trace_event(event(2.0, "S3", "status", "recovering"))
        tracker.on_trace_event(event(2.0, "S1", "transfer", "start",
                                     joiner="S3", sync=10))
        tracker.on_trace_event(event(2.1, "S3", "transfer", "accept", peer="S1"))
        tracker.on_trace_event(event(2.5, "S3", "transfer", "complete", baseline=10))
        tracker.on_trace_event(event(2.5, "S3", "replay", "start"))
        tracker.on_trace_event(event(2.7, "S3", "replay", "caught_up"))
        tracker.on_trace_event(event(2.8, "S3", "status", "active"))
        roots = tracker.of("reconfig")
        assert len(roots) == 1
        root = roots[0]
        assert root.site == "S3" and root.start == 2.0 and root.end == 2.8
        children = {s.name: s for s in tracker.children_of(root)}
        assert set(children) == {"serve S3", "state_transfer", "replay"}
        # The serving peer's span lives on its own timeline but is
        # parented cross-site to the joiner's recovery.
        assert children["serve S3"].site == "S1"
        assert children["serve S3"].end == 2.5
        assert children["state_transfer"].attrs["peer"] == "S1"
        assert children["replay"].duration == pytest.approx(0.2)

    def test_peer_start_before_joiner_status_still_parents(self):
        tracker = SpanTracker()
        # Same view change: the peer's event can arrive first.
        tracker.on_trace_event(event(2.0, "S1", "transfer", "start",
                                     joiner="S3", sync=10))
        tracker.on_trace_event(event(2.0, "S3", "status", "recovering"))
        roots = tracker.of("reconfig")
        assert len(roots) == 1
        serve = [s for s in tracker.spans if s.name == "serve S3"]
        assert serve[0].parent_id == roots[0].span_id

    def test_superseded_transfer_session(self):
        tracker = SpanTracker()
        tracker.on_trace_event(event(2.0, "S3", "status", "recovering"))
        tracker.on_trace_event(event(2.1, "S3", "transfer", "accept", peer="S1"))
        tracker.on_trace_event(event(2.4, "S3", "transfer", "accept", peer="S2"))
        tracker.on_trace_event(event(2.8, "S3", "transfer", "complete", baseline=9))
        transfers = [s for s in tracker.spans if s.name == "state_transfer"]
        assert len(transfers) == 2
        superseded = [s for s in transfers if s.attrs.get("superseded")]
        assert len(superseded) == 1 and superseded[0].end == 2.4

    def test_crash_mid_recovery_abandons(self):
        tracker = SpanTracker()
        tracker.on_trace_event(event(2.0, "S3", "status", "recovering"))
        tracker.on_trace_event(event(2.1, "S3", "transfer", "accept", peer="S1"))
        tracker.on_trace_event(event(2.2, "S3", "status", "down"))
        root = tracker.of("reconfig")[0]
        assert root.end == 2.2 and root.attrs["abandoned"] is True

    def test_finalize_closes_open_spans(self):
        tracker = SpanTracker()
        tracker.on_trace_event(event(1.0, "S1", "txn", "submit", txn="S1#0"))
        tracker.finalize(9.0)
        span = tracker.spans[0]
        assert span.end == 9.0 and span.attrs["open_at_end"] is True

    def test_events_without_data_are_ignored(self):
        tracker = SpanTracker()
        tracker.on_trace_event(TraceEvent(1.0, "S1", "txn", "submit"))
        tracker.on_trace_event(TraceEvent(1.0, "S1", "view", "install"))
        assert tracker.spans == []


def make_run():
    tracker = SpanTracker()
    tracker.on_trace_event(event(1.0, "S1", "txn", "submit", txn="S1#0"))
    tracker.on_trace_event(event(1.1, "S1", "txn", "deliver", txn="S1#0", gid=0))
    tracker.on_trace_event(event(1.2, "S1", "txn", "commit", txn="S1#0", gid=0))
    tracker.on_trace_event(event(1.2, "S1", "txn", "done", txn="S1#0",
                                 state="committed"))
    tracker.on_trace_event(event(2.0, "S2", "status", "recovering"))
    tracker.on_trace_event(event(2.5, "S2", "status", "active"))
    events = [
        TraceEvent(1.0, "S1", "txn", "submit", data={"txn": "S1#0"}),
        TraceEvent(2.0, "S2", "status", "recovering", "was down"),
    ]
    registry = MetricsRegistry()
    registry.counter("net.messages").inc(12)
    registry.histogram("locks.wait_time", (0.001, 0.01)).observe(0.002)
    return RunData(
        meta={"name": "unit run", "virtual_time": 3.0, "sites": ["S1", "S2"]},
        events=events,
        spans=list(tracker.spans),
        metrics=registry.snapshot(),
    )


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        run = make_run()
        path = tmp_path / "run.jsonl"
        write_jsonl(run, str(path))
        loaded = load_jsonl(str(path))
        assert loaded.meta == run.meta
        assert len(loaded.events) == len(run.events)
        assert loaded.events[0].data == {"txn": "S1#0"}
        assert [s.to_dict() for s in loaded.spans] == \
               [s.to_dict() for s in run.spans]
        assert loaded.metrics == run.metrics

    def test_chrome_trace_structure(self):
        run = make_run()
        trace = chrome_trace(run)
        payload = json.dumps(trace)  # must be valid JSON
        assert "traceEvents" in payload
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # One thread_name metadata row per site.
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert {"S1", "S2"} <= names
        # Spans became complete events with microsecond timestamps.
        txn = [e for e in complete if e["name"].startswith("txn ")]
        assert txn and txn[0]["ts"] == 1_000_000 and txn[0]["dur"] == pytest.approx(200_000)
        assert instants, "raw trace events should appear as instants"

    def test_prometheus_text(self):
        run = make_run()
        text = prometheus_text(run.metrics)
        assert "# TYPE repro_net_messages counter" in text
        assert "repro_net_messages 12" in text
        # Cumulative buckets with le labels and +Inf.
        assert 'le="+Inf"' in text
        assert "repro_locks_wait_time_count 1" in text
        assert text.endswith("\n")

    def test_render_summary(self):
        run = make_run()
        summary = render_summary(run)
        assert "unit run" in summary
        assert "net.messages" in summary
        assert "recovery (view change -> active)" in summary
        assert "1 transaction, 1 reconfiguration" in summary

    def test_span_dict_round_trip(self):
        span = Span(3, "apply", "txn_apply", "S2", 1.0, end=1.5,
                    parent_id=1, attrs={"gid": 7})
        assert Span.from_dict(span.to_dict()) == span


class TestMetricKeyPadding:
    """Metric snapshots are padded to one fixed key set across backends
    so bench/diff tables stay column-stable (missing counters read 0)."""

    def build(self, backend):
        from repro import ClusterBuilder

        cluster = ClusterBuilder(n_sites=3, db_size=20, seed=5,
                                 backend=backend).build()
        cluster.start()
        assert cluster.await_all_active(timeout=15)
        return cluster

    def test_same_key_set_across_backends(self):
        from repro.obs import collect_cluster_metrics, metric_key_set

        canonical = metric_key_set()
        for backend in ("vs", "evs", "logless"):
            metrics = collect_cluster_metrics(self.build(backend))
            assert set(metrics) == set(canonical), backend

    def test_missing_backend_counters_read_zero(self):
        from repro.obs import collect_cluster_metrics

        # A VS cluster has no EVS merge or logless consensus counters;
        # they must still be present, as zeros.
        metrics = collect_cluster_metrics(self.build("vs"))
        assert metrics["reconfig.svs_merges"] == 0
        assert metrics["reconfig.config_proposals"] == 0
        assert metrics["reconfig.config_conflicts"] == 0
