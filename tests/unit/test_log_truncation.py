"""Tests for WAL truncation at checkpoints (bounded log growth)."""

from repro.db.database import Database
from repro.db.wal import BaselineRecord, PersistentStorage
from repro.replication.node import NodeConfig
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster, run_load


def make_db():
    storage = PersistentStorage()
    db = Database(storage)
    db.bootstrap({"a": 0, "b": 0})
    return db


class TestTruncation:
    def test_truncate_drops_subsumed_prefix(self):
        db = make_db()
        for gid in range(5):
            db.log_begin(gid)
            db.apply_write(gid, "a", gid)
            db.commit(gid)
        before = len(db.storage)
        db.checkpoint(truncate_log=True)
        assert len(db.storage) < before
        # The summary baseline is present.
        assert any(isinstance(r, BaselineRecord) and r.gid == 4
                   for r in db.storage.records())

    def test_recovery_equivalent_after_truncation(self):
        db = make_db()
        for gid in range(5):
            db.log_begin(gid)
            db.apply_write(gid, "a", gid)
            db.commit(gid)
        db.checkpoint(truncate_log=True)
        # More work after the checkpoint, cut short by a "crash".
        db.log_begin(5)
        db.apply_write(5, "b", "five")
        db.commit(5)
        recovered, result = Database.recover_from(db.storage)
        assert recovered.store.read("a") == (4, 4)
        assert recovered.store.read("b") == ("five", 5)
        assert result.cover_gid == 5

    def test_open_transactions_never_truncated(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", "committed")
        db.commit(0)
        db.log_begin(1)
        db.apply_write(1, "b", "open")  # still running
        db.checkpoint(truncate_log=True)  # cover is -1... gid 1 open -> cover 0
        recovered, result = Database.recover_from(db.storage)
        assert recovered.store.read("b") == (0, -1)  # discarded, not redone
        assert result.cover_gid >= 0

    def test_rectable_rebuild_survives_truncation(self):
        db = make_db()
        for gid, obj in ((0, "a"), (1, "b")):
            db.log_begin(gid)
            db.apply_write(gid, obj, f"v{gid}")
            db.commit(gid)
        db.checkpoint(truncate_log=True)
        recovered, _ = Database.recover_from(db.storage)
        assert recovered.rectable.changed_since(-1) == {"a": 0, "b": 1}

    def test_cluster_log_stays_bounded(self):
        node_config = NodeConfig(checkpoint_interval=0.2,
                                 truncate_log_at_checkpoint=True)
        cluster = quick_cluster(db_size=30, node_config=node_config)
        run_load(cluster, duration=1.0, rate=200)
        first = len(cluster.nodes["S1"].storage)
        run_load(cluster, duration=1.0, rate=200)
        cluster.settle(0.5)
        second = len(cluster.nodes["S1"].storage)
        # Without truncation the log would roughly double; with it, the
        # tail stays around one checkpoint interval of records.
        assert second < first * 1.8
        cluster.check()

    def test_recovery_with_truncation_end_to_end(self):
        node_config = NodeConfig(checkpoint_interval=0.2,
                                 truncate_log_at_checkpoint=True)
        cluster = quick_cluster(db_size=40, node_config=node_config,
                                strategy="version_check")
        run_load(cluster, duration=0.5, rate=150)
        cluster.crash("S3")
        run_load(cluster, duration=0.5, rate=150)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        cluster.settle(0.5)
        cluster.check()
