"""Per-record WAL checksums, torn tails, and recovery truncation."""

import pytest

from repro.db.recovery import run_single_site_recovery
from repro.db.wal import (
    BeginRecord,
    CommitRecord,
    PersistentStorage,
    WriteRecord,
    record_checksum,
)
from repro.faults.storage import TornTailFaults


def filled_storage(n_txns: int = 3, flush_every: bool = True) -> PersistentStorage:
    storage = PersistentStorage()
    for gid in range(n_txns):
        storage.append(BeginRecord(gid))
        storage.append(WriteRecord(gid, f"x{gid}", None, -1, gid * 10))
        storage.append(CommitRecord(gid))
        if flush_every:
            storage.flush()
    return storage


class TestChecksums:
    def test_checksum_is_deterministic(self):
        a = record_checksum(BeginRecord(7))
        b = record_checksum(BeginRecord(7))
        assert a == b

    def test_checksum_distinguishes_records(self):
        assert record_checksum(BeginRecord(7)) != record_checksum(BeginRecord(8))
        assert record_checksum(CommitRecord(7)) != record_checksum(BeginRecord(7))

    def test_clean_log_verifies_fully(self):
        storage = filled_storage()
        records, corrupt_at = storage.verified_records()
        assert corrupt_at is None
        assert len(records) == len(storage)

    def test_corrupt_record_detected_at_index(self):
        storage = filled_storage(flush_every=False)
        storage.tear_tail(keep_unflushed=4, corrupt_next=True)
        _, corrupt_at = storage.verified_records()
        assert corrupt_at == 4
        assert storage.corrupt_records == 1


class TestTearTail:
    def test_tear_drops_only_unflushed_suffix(self):
        storage = PersistentStorage()
        storage.append(BeginRecord(0))
        storage.flush()
        storage.append(BeginRecord(1))
        storage.append(BeginRecord(2))
        dropped = storage.tear_tail(keep_unflushed=1)
        assert dropped == 1
        kept = list(storage.records())
        assert [r.gid for r in kept] == [0, 1]

    def test_tear_never_touches_durable_prefix(self):
        storage = filled_storage(n_txns=2, flush_every=True)
        durable = len(storage)
        storage.append(BeginRecord(99))  # volatile tail
        storage.tear_tail(keep_unflushed=0)
        assert len(storage) == durable
        _, corrupt_at = storage.verified_records()
        assert corrupt_at is None

    def test_truncate_at_removes_corrupt_tail(self):
        storage = filled_storage(flush_every=False)
        storage.tear_tail(keep_unflushed=5, corrupt_next=True)
        _, corrupt_at = storage.verified_records()
        removed = storage.truncate_at(corrupt_at)
        assert removed >= 1
        _, corrupt_after = storage.verified_records()
        assert corrupt_after is None


class TestRecoveryAfterTear:
    def test_recovery_truncates_at_first_corrupt_record(self):
        storage = filled_storage(n_txns=3, flush_every=False)
        # Corrupt from record 4 onwards: only txn 0 (records 0-2) plus
        # the Begin of txn 1 survive as the clean prefix.
        storage.tear_tail(keep_unflushed=4, corrupt_next=True)
        result = run_single_site_recovery(storage)
        assert result.tail_torn
        assert result.corrupt_records >= 1
        assert result.committed_gids == {0}
        # Cover stops below the now-unterminated txn 1.
        assert result.cover_gid == 0

    def test_recovery_of_clean_log_reports_no_tear(self):
        storage = filled_storage()
        result = run_single_site_recovery(storage)
        assert not result.tail_torn
        assert result.corrupt_records == 0
        assert result.committed_gids == {0, 1, 2}


class TestTornTailFaultsModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TornTailFaults(tear_probability=1.5)
        with pytest.raises(ValueError):
            TornTailFaults(corrupt_probability=-0.1)

    def test_no_unflushed_records_means_no_damage(self):
        import random

        storage = filled_storage()
        model = TornTailFaults(tear_probability=1.0)
        assert model.on_crash(storage, random.Random(1)) == 0
        assert model.tears == 0

    def test_certain_tear_damages_dirty_tail(self):
        import random

        storage = filled_storage(flush_every=False)
        model = TornTailFaults(tear_probability=1.0, corrupt_probability=0.0)
        affected = model.on_crash(storage, random.Random(1))
        assert affected >= 1
        assert model.tears == 1
        _, corrupt_at = storage.verified_records()
        assert corrupt_at is None  # clean tear, no corruption requested

    def test_corrupting_tear_leaves_checksum_mismatch(self):
        import random

        storage = filled_storage(flush_every=False)
        model = TornTailFaults(tear_probability=1.0, corrupt_probability=1.0)
        model.on_crash(storage, random.Random(3))
        assert model.corruptions == 1
        _, corrupt_at = storage.verified_records()
        assert corrupt_at is not None
