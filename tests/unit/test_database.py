"""Unit tests for the per-site database facade."""

from repro.db.database import Database
from repro.db.store import INITIAL_VERSION
from repro.db.wal import PersistentStorage


def make_db(initial=None):
    storage = PersistentStorage()
    db = Database(storage)
    db.bootstrap(initial or {"a": 0, "b": 0})
    return db


class TestVersionCheck:
    def test_fresh_read_passes(self):
        db = make_db()
        assert db.version_check({"a": INITIAL_VERSION})

    def test_stale_read_fails(self):
        db = make_db()
        db.tag_writes(5, ["a"])
        assert not db.version_check({"a": INITIAL_VERSION})

    def test_tag_accounts_for_unapplied_writers(self):
        """The check must see transactions that are serialized but whose
        write phase has not run yet (section 2.2 III.2)."""
        db = make_db()
        db.log_begin(3)
        db.tag_writes(3, ["a"])  # write not applied yet
        assert db.effective_version("a") == 3
        assert not db.version_check({"a": INITIAL_VERSION})

    def test_tags_are_monotone(self):
        db = make_db()
        db.tag_writes(7, ["a"])
        db.tag_writes(3, ["a"])
        assert db.effective_version("a") == 7

    def test_tags_survive_writer_abort(self):
        db = make_db()
        db.log_begin(7)
        db.tag_writes(7, ["a"])
        db.abort(7)
        assert db.effective_version("a") == 7

    def test_unknown_object_has_initial_version(self):
        db = make_db()
        assert db.effective_version("ghost") == INITIAL_VERSION

    def test_store_version_from_transfer_overrides_stale_tag(self):
        """Regression: a data transfer can install a version newer than
        any local tag (the site never processed those writers); the
        version check must see the newer one or stale readers would
        commit divergently at the recovered site."""
        db = make_db()
        db.tag_writes(26, ["a"])
        db.store.apply([("a", "transferred", 98)])
        assert db.effective_version("a") == 98
        assert not db.version_check({"a": 26})


class TestCommitAbort:
    def test_commit_applies_and_registers(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 99)
        db.commit(0)
        assert db.store.read("a") == (99, 0)
        db.rectable.ensure_current()
        assert db.rectable.last_writer("a") == 0
        assert db.commits == 1

    def test_abort_restores_before_images(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 99)
        db.abort(0)
        assert db.store.read("a") == (0, INITIAL_VERSION)
        assert db.aborts == 1

    def test_rollback_keeps_transaction_unterminated(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 99)
        db.rollback(0)
        assert db.store.read("a") == (0, INITIAL_VERSION)
        assert db.cover_gid() == -1  # gid 0 still unterminated

    def test_cover_advances_with_terminations(self):
        db = make_db()
        for gid in (0, 1, 2):
            db.log_begin(gid)
        db.commit(0)
        assert db.cover_gid() == 0
        db.abort(2)
        assert db.cover_gid() == 0  # 1 still open
        db.commit(1)
        assert db.cover_gid() == 2

    def test_noop_advances_cover(self):
        db = make_db()
        db.log_noop(0)
        assert db.cover_gid() == 0


class TestBaselineAndCheckpoint:
    def test_set_baseline_floors_cover(self):
        db = make_db()
        db.set_baseline(41)
        assert db.cover_gid() == 41
        assert db.baseline_gid == 41

    def test_checkpoint_excludes_uncommitted(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 99)
        db.checkpoint()
        assert db.storage.checkpoint_image["a"] == (0, INITIAL_VERSION)
        db.commit(0)
        db.checkpoint()
        assert db.storage.checkpoint_image["a"] == (99, 0)

    def test_recover_from_roundtrip(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 99)
        db.commit(0)
        db.log_begin(1)
        db.apply_write(1, "b", 77)  # uncommitted at crash
        recovered, result = Database.recover_from(db.storage)
        assert recovered.store.read("a") == (99, 0)
        assert recovered.store.read("b") == (0, INITIAL_VERSION)
        assert result.cover_gid == 0

    def test_recover_rebuilds_rectable(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 5)
        db.commit(0)
        recovered, _ = Database.recover_from(db.storage)
        assert recovered.rectable.changed_since(-1) == {"a": 0}


class TestVersionSnapshots:
    def test_preserves_pre_limit_version(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", "old")
        db.commit(0)
        db.begin_version_snapshot(5)
        db.log_begin(7)
        db.apply_write(7, "a", "new")
        db.commit(7)
        snap = db.read_as_of(5)
        assert snap["a"] == ("old", 0)
        assert db.store.read("a") == ("new", 7)

    def test_pre_limit_writer_updates_snapshot_view(self):
        db = make_db()
        db.begin_version_snapshot(5)
        db.log_begin(3)
        db.apply_write(3, "a", "three")
        db.commit(3)
        assert db.read_as_of(5)["a"] == ("three", 3)

    def test_only_first_overwrite_preserved(self):
        db = make_db()
        db.begin_version_snapshot(5)
        for gid, value in ((6, "six"), (8, "eight")):
            db.log_begin(gid)
            db.apply_write(gid, "a", value)
            db.commit(gid)
        assert db.read_as_of(5)["a"] == (0, INITIAL_VERSION)

    def test_end_snapshot_releases(self):
        db = make_db()
        db.begin_version_snapshot(5)
        db.end_version_snapshot(5)
        try:
            db.read_as_of(5)
            assert False, "expected KeyError"
        except KeyError:
            pass


class TestCommittedReads:
    def test_read_committed_sees_before_image_of_open_writer(self):
        db = make_db()
        db.log_begin(0)
        db.apply_write(0, "a", 99)
        assert db.read_committed("a") == (0, INITIAL_VERSION)
        db.commit(0)
        assert db.read_committed("a") == (99, 0)


class TestCreationScan:
    def test_committed_writes_above(self):
        db = make_db()
        for gid, value in ((0, "zero"), (1, "one"), (2, "two")):
            db.log_begin(gid)
            db.apply_write(gid, "a", value)
            db.commit(gid)
        db.log_begin(3)
        db.apply_write(3, "a", "uncommitted")
        result = db.committed_writes_above(0)
        assert result == ((1, (("a", "one"),)), (2, (("a", "two"),)))
