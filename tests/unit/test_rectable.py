"""Unit tests for the RecTable (section 4.5)."""

from repro.db.rectable import RecTable


class TestRegistration:
    def test_register_is_deferred_until_flush(self):
        table = RecTable()
        table.register("a", 5)
        assert "a" not in table
        assert table.pending_count == 1
        table.flush_pending()
        assert "a" in table and table.last_writer("a") == 5

    def test_flush_limit(self):
        table = RecTable()
        for i in range(10):
            table.register(f"o{i}", i)
        applied = table.flush_pending(limit=4)
        assert applied == 4 and table.pending_count == 6

    def test_ensure_current_drains_everything(self):
        table = RecTable()
        for i in range(10):
            table.register(f"o{i}", i)
        table.ensure_current()
        assert table.pending_count == 0 and len(table) == 10

    def test_newer_gid_wins(self):
        table = RecTable()
        table.register("a", 3)
        table.register("a", 7)
        table.ensure_current()
        assert table.last_writer("a") == 7

    def test_stale_registration_ignored(self):
        table = RecTable()
        table.register("a", 7)
        table.ensure_current()
        table.register("a", 3)  # out-of-order background apply
        table.ensure_current()
        assert table.last_writer("a") == 7


class TestQueries:
    def test_changed_since(self):
        table = RecTable()
        table.register("a", 3)
        table.register("b", 8)
        table.ensure_current()
        assert table.changed_since(5) == {"b": 8}
        assert table.changed_since(2) == {"a": 3, "b": 8}
        assert table.changed_since(8) == {}

    def test_changed_since_minus_infinity_returns_all(self):
        table = RecTable()
        table.register("a", 0)
        table.ensure_current()
        assert table.changed_since(-(2**60)) == {"a": 0}


class TestPurge:
    def test_purge_below_min_cover(self):
        table = RecTable()
        table.register("a", 3)
        table.register("b", 8)
        table.ensure_current()
        removed = table.purge(5)
        assert removed == 1
        assert "a" not in table and "b" in table

    def test_purge_keeps_equal_boundary_out(self):
        table = RecTable()
        table.register("a", 5)
        table.ensure_current()
        table.purge(5)  # gid <= min cover is deletable
        assert "a" not in table

    def test_counters(self):
        table = RecTable()
        table.register("a", 1)
        table.ensure_current()
        table.purge(10)
        assert table.registrations == 1
        assert table.deletions == 1
        assert table.flushes == 1
