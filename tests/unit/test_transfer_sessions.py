"""Unit tests for the transfer channel sessions, run against a live
mini-cluster so the sessions see real nodes but with scripted events."""

import pytest

from repro.reconfig.transfer import (
    LastRoundReady,
    PartitionComplete,
    ReconcileNotice,
    TransferAccept,
    TransferBatch,
    TransferBatchAck,
    TransferComplete,
    TransferOffer,
)
from tests.conftest import quick_cluster


def make_session(cluster, peer="S1", joiner="S3", strategy="rectable"):
    from repro.reconfig.strategies import strategy_by_name

    node = cluster.nodes[peer]
    from repro.reconfig.transfer import PeerTransferSession

    return PeerTransferSession(node, joiner, strategy_by_name(strategy),
                               sync_gid=node.last_processed_gid)


class TestPeerSession:
    def test_offer_sent_and_retried(self):
        cluster = quick_cluster()
        session = make_session(cluster)
        sent = []
        cluster.network.add_tap(
            lambda s, d, p: sent.append(p) if isinstance(p, TransferOffer) else None
        )
        cluster.run_for(0.2)
        assert len(sent) >= 2  # initial + at least one retry (no accept)
        session.cancel()

    def test_duplicate_accept_ignored(self):
        cluster = quick_cluster()
        session = make_session(cluster)
        accept = TransferAccept(session_id=session.session_id, cover_gid=-1,
                                resume_through=-1, needs_full=False)
        session.on_accept(accept)
        state_after_first = session.accepted
        session.on_accept(accept)
        assert state_after_first and session.accepted

    def test_cancel_releases_locks(self):
        cluster = quick_cluster(strategy="full")
        session = make_session(cluster, strategy="full")
        node = cluster.nodes["S1"]
        held = [o for o, hs in node.db.locks._holders.items() if session.owner in hs]
        assert held  # full strategy grabbed read locks at creation
        session.cancel()
        held = [o for o, hs in node.db.locks._holders.items() if session.owner in hs]
        assert not held

    def test_batching_respects_batch_size(self):
        from repro import NodeConfig

        cluster = quick_cluster(strategy="full", db_size=100,
                                node_config=NodeConfig(transfer_batch_size=10))
        session = make_session(cluster, strategy="full")
        batches = []
        cluster.network.add_tap(
            lambda s, d, p: batches.append(p) if isinstance(p, TransferBatch) else None
        )
        session.on_accept(TransferAccept(session_id=session.session_id, cover_gid=-1,
                                         resume_through=-1, needs_full=True))
        # Ack every batch as it arrives (joiner side is not wired here).
        cluster.run_for(2.0)
        # Nothing acked yet -> a single batch in flight; any extra copies
        # on the wire are retransmissions of it (same sequence number).
        assert {b.seq for b in batches} == {1}
        session.on_batch_ack(TransferBatchAck(session_id=session.session_id, count=10))
        cluster.run_for(0.2)
        assert {b.seq for b in batches} == {1, 2}
        assert all(len(b.items) <= 10 for b in batches)
        session.cancel()

    def test_payload_bytes_accounted(self):
        cluster = quick_cluster(strategy="full", db_size=20)
        session = make_session(cluster, strategy="full")
        session.on_accept(TransferAccept(session_id=session.session_id, cover_gid=-1,
                                         resume_through=-1, needs_full=True))
        cluster.run_for(0.2)
        assert session.bytes_sent == session.objects_sent * 256


class TestJoinerSession:
    def make_joiner(self, cluster, joiner="S3"):
        from repro.reconfig.transfer import JoinerTransferSession

        offer = TransferOffer(session_id="sess", peer="S1", strategy="rectable",
                              sync_gid=10)
        return JoinerTransferSession(cluster.nodes[joiner], offer, resume_through=5)

    def test_batch_applies_items(self):
        cluster = quick_cluster()
        joiner = self.make_joiner(cluster)
        batch = TransferBatch(session_id="sess", round_no=1,
                              items=(("obj0", "new", 9),), payload_bytes=256)
        joiner.on_batch(batch)
        assert cluster.nodes["S3"].db.store.read("obj0") == ("new", 9)
        assert joiner.objects_received == 1

    def test_round_boundary_advances_resume(self):
        cluster = quick_cluster()
        joiner = self.make_joiner(cluster)
        batch = TransferBatch(session_id="sess", round_no=1, items=(),
                              payload_bytes=0, round_boundary=42)
        joiner.on_batch(batch)
        assert joiner.resume_through == 42

    def test_complete_records_baseline(self):
        cluster = quick_cluster()
        joiner = self.make_joiner(cluster)
        joiner.on_complete(TransferComplete(session_id="sess", baseline_gid=77))
        assert joiner.complete and joiner.baseline_gid == 77
        assert joiner.resume_through == 77

    def test_cancelled_session_ignores_batches(self):
        cluster = quick_cluster()
        joiner = self.make_joiner(cluster)
        joiner.cancel()
        joiner.on_batch(TransferBatch(session_id="sess", round_no=1,
                                      items=(("obj0", "x", 9),), payload_bytes=256))
        assert joiner.objects_received == 0

    def test_partition_complete_tracked(self):
        cluster = quick_cluster()
        joiner = self.make_joiner(cluster)
        joiner.on_partition_complete(
            PartitionComplete(session_id="sess", partition="part2", boundary_gid=30)
        )
        assert joiner.done_partitions == {"part2": 30}
        # Boundaries are monotone.
        joiner.on_partition_complete(
            PartitionComplete(session_id="sess", partition="part2", boundary_gid=10)
        )
        assert joiner.done_partitions == {"part2": 30}

    def test_reconcile_notice_triggers_compensation(self):
        cluster = quick_cluster()
        node = cluster.nodes["S3"]
        node.db.log_begin(500)
        node.db.apply_write(500, "obj1", "phantom")
        node.db.commit(500)
        joiner = self.make_joiner(cluster)
        joiner.on_reconcile_notice(
            ReconcileNotice(session_id="sess", phantom_gids=(500,))
        )
        assert node.db.store.value("obj1") == 0
