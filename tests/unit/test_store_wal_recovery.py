"""Unit tests for the object store, WAL and single-site recovery."""

import pytest

from repro.db.recovery import compute_cover, run_single_site_recovery
from repro.db.store import INITIAL_VERSION, ObjectStore
from repro.db.wal import (
    AbortRecord,
    BaselineRecord,
    BeginRecord,
    CommitRecord,
    NoopRecord,
    PersistentStorage,
    WriteRecord,
)


class TestObjectStore:
    def test_initial_objects_have_initial_version(self):
        store = ObjectStore({"a": 1})
        assert store.read("a") == (1, INITIAL_VERSION)

    def test_write_and_read(self):
        store = ObjectStore()
        store.write("a", 5, 3)
        assert store.read("a") == (5, 3)
        assert store.version("a") == 3
        assert store.value("a") == 5

    def test_contains_len_objects(self):
        store = ObjectStore({"b": 0, "a": 0})
        assert "a" in store and len(store) == 2
        assert list(store.objects()) == ["a", "b"]

    def test_missing_object_raises(self):
        with pytest.raises(KeyError):
            ObjectStore().read("ghost")

    def test_snapshot_roundtrip(self):
        store = ObjectStore({"a": 1})
        store.write("b", 2, 7)
        clone = ObjectStore()
        clone.load_snapshot(store.snapshot())
        assert clone.content_digest() == store.content_digest()

    def test_apply_keeps_newest_version(self):
        store = ObjectStore()
        store.write("a", "new", 10)
        store.apply([("a", "old", 5), ("b", "fresh", 3)])
        assert store.read("a") == ("new", 10)
        assert store.read("b") == ("fresh", 3)

    def test_apply_equal_version_overwrites(self):
        store = ObjectStore()
        store.write("a", "x", 5)
        store.apply([("a", "y", 5)])
        assert store.value("a") == "y"

    def test_remove(self):
        store = ObjectStore({"a": 1})
        store.remove("a")
        assert "a" not in store
        store.remove("a")  # idempotent

    def test_content_digest_is_deterministic(self):
        a = ObjectStore({"x": 1, "y": 2})
        b = ObjectStore({"y": 2, "x": 1})
        assert a.content_digest() == b.content_digest()


class TestComputeCover:
    def test_no_deliveries_is_baseline(self):
        assert compute_cover(5, [], set()) == 5

    def test_all_terminated(self):
        assert compute_cover(-1, [0, 1, 2], {0, 1, 2}) == 2

    def test_unterminated_caps_cover(self):
        assert compute_cover(-1, [0, 1, 2, 3], {0, 1, 3}) == 1

    def test_unterminated_below_baseline_keeps_baseline(self):
        # Defensive: baseline wins when stale unterminated entries remain.
        assert compute_cover(10, [11, 12], {12}) == 10

    def test_gaps_in_gids_allowed(self):
        # gseq gaps (minority-view numbering) do not block the cover.
        assert compute_cover(-1, [0, 5, 9], {0, 5, 9}) == 9


class TestRecovery:
    def test_redo_committed_write(self):
        storage = PersistentStorage()
        storage.append(BaselineRecord(-1))
        storage.checkpoint({"a": (0, INITIAL_VERSION)})
        storage.append(BeginRecord(0))
        storage.append(WriteRecord(0, "a", 0, INITIAL_VERSION, 42))
        storage.append(CommitRecord(0))
        result = run_single_site_recovery(storage)
        assert result.store.read("a") == (42, 0)
        assert result.cover_gid == 0
        assert result.redone == 1

    def test_uncommitted_write_discarded(self):
        storage = PersistentStorage()
        storage.checkpoint({"a": (0, INITIAL_VERSION)})
        storage.append(BeginRecord(0))
        storage.append(WriteRecord(0, "a", 0, INITIAL_VERSION, 42))
        result = run_single_site_recovery(storage)
        assert result.store.read("a") == (0, INITIAL_VERSION)
        assert result.cover_gid == -1  # gid 0 unterminated
        assert result.discarded == 1

    def test_aborted_txn_terminates_cover(self):
        storage = PersistentStorage()
        storage.append(BeginRecord(0))
        storage.append(AbortRecord(0))
        result = run_single_site_recovery(storage)
        assert result.cover_gid == 0

    def test_noop_counts_as_terminated(self):
        storage = PersistentStorage()
        storage.append(NoopRecord(0))
        storage.append(BeginRecord(1))
        storage.append(CommitRecord(1))
        result = run_single_site_recovery(storage)
        assert result.cover_gid == 1

    def test_checkpoint_newer_than_log_replay(self):
        """Fuzzy checkpoint may already contain the committed value."""
        storage = PersistentStorage()
        storage.append(BeginRecord(3))
        storage.append(WriteRecord(3, "a", 0, INITIAL_VERSION, 9))
        storage.append(CommitRecord(3))
        storage.checkpoint({"a": (9, 3)})
        result = run_single_site_recovery(storage)
        assert result.store.read("a") == (9, 3)
        assert result.redone == 0

    def test_redo_in_gid_order(self):
        storage = PersistentStorage()
        for gid, value in ((1, "one"), (0, "zero")):
            storage.append(BeginRecord(gid))
            storage.append(WriteRecord(gid, "a", None, INITIAL_VERSION, value))
            storage.append(CommitRecord(gid))
        result = run_single_site_recovery(storage)
        assert result.store.read("a") == ("one", 1)

    def test_baseline_floors_cover(self):
        storage = PersistentStorage()
        storage.append(BaselineRecord(50))
        result = run_single_site_recovery(storage)
        assert result.cover_gid == 50
        assert result.last_delivered_gid == 50

    def test_committed_gids_reported(self):
        storage = PersistentStorage()
        storage.append(BeginRecord(0))
        storage.append(CommitRecord(0))
        storage.append(BeginRecord(1))
        storage.append(AbortRecord(1))
        result = run_single_site_recovery(storage)
        assert result.committed_gids == {0}

    def test_log_bytes_accounting(self):
        storage = PersistentStorage()
        storage.append(BeginRecord(0))
        storage.append(CommitRecord(0))
        assert storage.log_bytes(record_size=10) == 20
