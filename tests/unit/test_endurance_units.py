"""Unit tests for the endurance building blocks: client backoff jitter,
the availability-floor checker, the CRC-valid stable-state corruptor,
the RecTable purge floor, and the endurance helpers themselves."""

import pytest

from repro.checkers import ConsistencyViolation, check_availability_floor
from repro.client.session import ClientSession, SessionConfig
from repro.db.rectable import RecTable
from repro.db.wal import (
    BaselineRecord, CommitRecord, PersistentStorage, WriteRecord,
    record_checksum,
)
from repro.endurance import EnduranceConfig, repro_command
from repro.faults.storage import StableStateCorruptor
from repro.obs.report import render_availability


def session(client_id="C1", jitter=0.0):
    return ClientSession(None, client_id,
                         SessionConfig(backoff_jitter=jitter))


class TestBackoffJitter:
    def test_zero_jitter_is_the_pure_schedule(self):
        s = session()
        for attempt in range(6):
            assert s.jittered_delay(3, attempt) == s.backoff_delay(attempt)

    def test_jitter_stays_within_the_configured_fraction(self):
        s = session(jitter=0.5)
        for seq in range(10):
            for attempt in range(6):
                base = s.backoff_delay(attempt)
                delay = s.jittered_delay(seq, attempt)
                assert base * 0.5 <= delay <= base

    def test_deterministic_per_identity(self):
        a, b = session(jitter=0.5), session(jitter=0.5)
        assert [a.jittered_delay(7, k) for k in range(5)] == \
               [b.jittered_delay(7, k) for k in range(5)]

    def test_distinct_clients_get_distinct_schedules(self):
        a, b = session("C1", jitter=0.5), session("C2", jitter=0.5)
        schedule_a = [a.jittered_delay(0, k) for k in range(5)]
        schedule_b = [b.jittered_delay(0, k) for k in range(5)]
        assert schedule_a != schedule_b

    def test_jitter_bounds_validated(self):
        with pytest.raises(ValueError):
            SessionConfig(backoff_jitter=1.5).validate()


def bins(spec, bin_width=0.25, start=0.25):
    """'m' maintenance, '0' zero commits, '#' serving -> sample rows."""
    samples = []
    t = start
    for ch in spec:
        samples.append((t, 0 if ch in "m0" else 5, ch == "m"))
        t += bin_width
    return samples


class TestAvailabilityFloor:
    def test_steady_commits_pass(self):
        check_availability_floor(bins("#" * 20), window=1.0, bin_width=0.25)

    def test_long_outage_detected(self):
        with pytest.raises(ConsistencyViolation, match="availability floor"):
            check_availability_floor(bins("####000000####"),
                                     window=1.0, bin_width=0.25)

    def test_short_gaps_tolerated(self):
        check_availability_floor(bins("##00##000##0##"),
                                 window=1.0, bin_width=0.25)

    def test_maintenance_bins_break_a_gap(self):
        # The same span of non-serving bins, but the harness itself
        # paused the fleet in the middle: not an outage.
        check_availability_floor(bins("####00mm00####"),
                                 window=1.0, bin_width=0.25)

    def test_warmup_prefix_excluded(self):
        check_availability_floor(bins("000000########"),
                                 window=1.0, bin_width=0.25, warmup=1.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            check_availability_floor([], window=0.0, bin_width=0.25)

    def test_all_maintenance_run_passes(self):
        # A run the harness paused throughout has no observable outage,
        # however long it is: every bin is excluded.
        check_availability_floor(bins("m" * 40), window=1.0, bin_width=0.25)

    def test_single_serving_bin_passes(self):
        check_availability_floor(bins("#"), window=1.0, bin_width=0.25)

    def test_single_zero_bin_spanning_the_window_fails(self):
        # One bin can violate on its own when it is at least as wide as
        # the window: the gap is measured from the bin's *start*.
        with pytest.raises(ConsistencyViolation, match="availability floor"):
            check_availability_floor(bins("0", bin_width=1.0, start=2.0),
                                     window=1.0, bin_width=1.0)

    def test_gap_exactly_at_window_fails(self):
        # >= semantics: a dark span of exactly one window is already a
        # violation, not the last tolerated length.
        with pytest.raises(ConsistencyViolation, match=">= window"):
            check_availability_floor(bins("##0000##"),
                                     window=1.0, bin_width=0.25)

    def test_gap_one_bin_under_window_passes(self):
        check_availability_floor(bins("##000##"),
                                 window=1.0, bin_width=0.25)

    def test_empty_timeline_passes(self):
        # No samples, no observable outage (parameters still validated).
        check_availability_floor([], window=1.0, bin_width=0.25)


def populated_storage(n=8):
    storage = PersistentStorage()
    storage.append(BaselineRecord(gid=-1))
    for gid in range(n):
        storage.append(WriteRecord(gid=gid, obj=f"x{gid}", before_value=0,
                                   before_version=0, after_value=gid))
        storage.append(CommitRecord(gid=gid))
    storage.flush()
    storage.outcome_image = tuple(
        (f"C{i}", i, 0, i, True) for i in range(4)
    )
    # Materialize every checksum, as a fault that touched the records
    # would have: the corruptor must keep all of them valid.
    storage._crcs = [record_checksum(r) for r in storage.log]
    return storage


class TestStableStateCorruptor:
    def test_corrupted_state_still_checksums_clean(self):
        corruptor = StableStateCorruptor(seed=3)
        for _ in range(12):
            storage = populated_storage()
            corruptor.corrupt(storage, "S1")
            good, bad_index = storage.verified_records()
            assert bad_index is None
            assert len(good) == len(storage.log)

    def test_same_seed_same_campaign(self):
        campaigns = []
        for _ in range(2):
            corruptor = StableStateCorruptor(seed=11)
            for _ in range(6):
                corruptor.corrupt(populated_storage(), "S2")
            campaigns.append(corruptor.applied)
        assert campaigns[0] == campaigns[1]

    def test_only_loses_or_duplicates_genuine_records(self):
        corruptor = StableStateCorruptor(seed=5)
        for _ in range(12):
            storage = populated_storage()
            originals = set(map(repr, storage.log))
            corruptor.corrupt(storage, "S3")
            assert set(map(repr, storage.log)) <= originals

    def test_durable_length_never_exceeds_log(self):
        corruptor = StableStateCorruptor(seed=7)
        for _ in range(20):
            storage = populated_storage()
            corruptor.corrupt(storage, "S4")
            assert 0 <= storage.durable_length <= len(storage.log)


class TestRecTablePurgeFloor:
    def test_fresh_table_answers_everything(self):
        table = RecTable()
        assert table.can_answer(-1)
        assert table.can_answer(0)

    def test_purge_raises_the_floor(self):
        table = RecTable()
        for gid, obj in enumerate(("a", "b", "c", "d")):
            table.register(obj, gid)
        table.purge(1)
        assert table.purge_floor == 1
        assert not table.can_answer(0)
        assert table.can_answer(1)
        assert table.can_answer(5)

    def test_floor_is_monotone(self):
        table = RecTable()
        table.purge(4)
        table.purge(2)  # a lower purge cannot lower the floor
        assert table.purge_floor == 4


class TestEnduranceHelpers:
    def test_repro_command_minimal(self):
        command = repro_command(EnduranceConfig(seed=3, mode="evs"))
        assert command == ("PYTHONPATH=src python -m repro chaos "
                           "--endurance --seed 3 --mode evs")

    def test_repro_command_carries_overrides(self):
        config = EnduranceConfig(seed=0, duration=8.0,
                                 segments=("storm", "churn"),
                                 sabotage_outcome_merge=True)
        command = repro_command(config)
        assert "--segments storm,churn" in command
        assert "--duration 8" in command
        assert "--sabotage-outcome-merge" in command

    def test_render_availability_classifies_bins(self):
        samples = [(0.25, 0, False),   # warmup
                   (0.50, 8, False),   # above mean
                   (0.75, 1, False),   # below mean
                   (1.00, 0, False),   # outage
                   (1.25, 0, True)]    # maintenance
        text = render_availability(samples, bin_width=0.25, warmup=0.3)
        assert ".#+0m" in text
        assert "availability timeline" in text
