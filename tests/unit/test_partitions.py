"""Unit tests for the data-partition helpers and partition-aware locking."""

import pytest

from repro.db.locks import DB_RESOURCE, LockManager, LockMode
from repro.db.partitions import (
    PARTITION_PREFIX,
    make_partition_fn,
    partition_names,
    partition_of,
    partition_resource,
)


class TestPartitionMapping:
    def test_stable_assignment(self):
        assert partition_of("obj1", 4) == partition_of("obj1", 4)

    def test_all_partitions_used(self):
        names = {partition_of(f"obj{i}", 4) for i in range(200)}
        assert names == set(partition_names(4))

    def test_partition_resource_prefix(self):
        assert partition_resource("part3") == PARTITION_PREFIX + "part3"

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            partition_of("x", 0)

    def test_make_partition_fn_none_when_disabled(self):
        assert make_partition_fn(0) is None
        fn = make_partition_fn(4)
        assert fn("obj1") == partition_resource(partition_of("obj1", 4))


class TestPartitionLocks:
    def make(self, k=4):
        return LockManager(partition_fn=make_partition_fn(k))

    def obj_in(self, partition, k=4):
        for i in range(1000):
            if partition_of(f"o{i}", k) == partition:
                return f"o{i}"
        raise AssertionError("no object found")

    def test_partition_shared_blocks_object_writer(self):
        lm = self.make()
        obj = self.obj_in("part0")
        lm.request("XFER", partition_resource("part0"), LockMode.SHARED)
        writer = lm.request("W", obj, LockMode.EXCLUSIVE)
        assert not writer.granted
        lm.release("XFER")
        assert writer.granted

    def test_other_partition_unaffected(self):
        lm = self.make()
        obj = self.obj_in("part1")
        lm.request("XFER", partition_resource("part0"), LockMode.SHARED)
        writer = lm.request("W", obj, LockMode.EXCLUSIVE)
        assert writer.granted

    def test_object_writer_blocks_partition_lock(self):
        lm = self.make()
        obj = self.obj_in("part2")
        lm.request("W", obj, LockMode.EXCLUSIVE)
        part = lm.request("XFER", partition_resource("part2"), LockMode.SHARED)
        assert not part.granted
        lm.release("W")
        assert part.granted

    def test_partition_locks_mutually_independent(self):
        lm = self.make()
        a = lm.request("T1", partition_resource("part0"), LockMode.EXCLUSIVE)
        b = lm.request("T2", partition_resource("part1"), LockMode.EXCLUSIVE)
        assert a.granted and b.granted

    def test_db_lock_covers_partitions(self):
        lm = self.make()
        lm.request("XFER", DB_RESOURCE, LockMode.SHARED)
        part = lm.request("W", partition_resource("part0"), LockMode.EXCLUSIVE)
        assert not part.granted

    def test_object_readers_compatible_with_partition_shared(self):
        lm = self.make()
        obj = self.obj_in("part0")
        lm.request("XFER", partition_resource("part0"), LockMode.SHARED)
        reader = lm.request("R", obj, LockMode.SHARED)
        assert reader.granted

    def test_without_partition_fn_no_overlap(self):
        lm = LockManager()  # partitioning disabled
        lm.request("XFER", partition_resource("part0"), LockMode.SHARED)
        writer = lm.request("W", "anything", LockMode.EXCLUSIVE)
        assert writer.granted
