"""Fine-grained tests of the replica control phases (section 2.2)."""

import pytest

from repro.db.locks import LockMode
from repro.replication.transaction import AbortReason, TxnState
from tests.conftest import quick_cluster


class TestReadPhase:
    def test_read_set_versions_recorded(self):
        cluster = quick_cluster()
        cluster.submit_via("S1", [], {"obj0": "x"})
        cluster.settle(0.3)
        txn = cluster.submit_via("S1", ["obj0", "obj1"], {})
        cluster.settle(0.3)
        assert txn.committed
        assert txn.read_set["obj0"] >= 0  # the committed writer's gid
        assert txn.read_set["obj1"] == -1  # untouched object

    def test_read_phase_takes_time(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", ["obj0", "obj1", "obj2"], {"obj3": 1})
        assert txn.sent_at is None  # still in the local read phase
        cluster.settle(0.3)
        assert txn.sent_at is not None
        assert txn.sent_at > txn.submitted_at

    def test_write_only_transaction_skips_read_phase(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", [], {"obj0": 1})
        assert txn.state is not TxnState.LOCAL_READ
        assert txn.sent_at == txn.submitted_at

    def test_read_locks_held_until_commit(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", ["obj0"], {"obj1": 1})
        cluster.run_for(0.002)  # past the read phase, before delivery round-trip
        node = cluster.nodes["S1"]
        if not txn.done:
            assert node.db.locks.holds(txn.txn_id, "obj0")
        cluster.settle(0.3)
        assert txn.committed
        assert not node.db.locks.holds(txn.txn_id, "obj0")


class TestSerializationPhase:
    def test_read_then_write_same_object_upgrades(self):
        """The origin's own shared lock upgrades to exclusive — a
        transaction must never deadlock with itself."""
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", ["obj0"], {"obj0": "rmw"})
        cluster.settle(0.3)
        assert txn.committed
        assert cluster.nodes["S2"].db.store.value("obj0") == "rmw"

    def test_gid_matches_delivery_order(self):
        cluster = quick_cluster()
        first = cluster.submit_via("S1", [], {"obj0": 1})
        cluster.settle(0.2)
        second = cluster.submit_via("S1", [], {"obj1": 2})
        cluster.settle(0.2)
        assert first.gid < second.gid

    def test_version_check_abort_reason_and_gid(self):
        cluster = quick_cluster()
        a = cluster.submit_via("S1", ["obj0"], {"obj0": "a"})
        b = cluster.submit_via("S2", ["obj0"], {"obj0": "b"})
        cluster.settle(0.3)
        loser = a if a.aborted else b
        assert loser.abort_reason in (AbortReason.VERSION_CHECK,
                                      AbortReason.LOCAL_READER_CONFLICT)
        if loser.abort_reason is AbortReason.VERSION_CHECK:
            # aborted at the serialization phase: it had a gid
            assert loser.gid is not None

    def test_aborted_transaction_leaves_no_trace_in_store(self):
        cluster = quick_cluster()
        a = cluster.submit_via("S1", ["obj0"], {"obj0": "a"})
        b = cluster.submit_via("S2", ["obj0"], {"obj0": "b"})
        cluster.settle(0.3)
        winner = a if a.committed else b
        expected = winner.writes["obj0"]
        for node in cluster.nodes.values():
            assert node.db.store.value("obj0") == expected


class TestWriteAndCommitPhases:
    def test_latency_includes_write_phase(self):
        from repro import NodeConfig

        cluster = quick_cluster(node_config=NodeConfig(write_op_time=0.01))
        txn = cluster.submit_via("S1", [], {"obj0": 1, "obj1": 2})
        cluster.settle(0.5)
        assert txn.committed
        assert txn.latency >= 0.01

    def test_disjoint_writes_execute_concurrently(self):
        """Two delivered transactions with disjoint write sets must not
        serialize their write phases (the paper's phase IV concurrency)."""
        from repro import NodeConfig

        results = {}
        for serial in (False, True):
            cluster = quick_cluster(seed=71,
                                    node_config=NodeConfig(write_op_time=0.01,
                                                           serial_processing=serial))
            t1 = cluster.submit_via("S1", [], {"obj0": 1})
            t2 = cluster.submit_via("S2", [], {"obj1": 2})
            cluster.settle(0.5)
            assert t1.committed and t2.committed
            results[serial] = max(t1.latency, t2.latency)
        assert results[False] < results[True]

    def test_version_tag_equals_gid_at_all_sites(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S3", [], {"obj7": "tagged"})
        cluster.settle(0.3)
        for node in cluster.nodes.values():
            assert node.db.store.version("obj7") == txn.gid

    def test_commit_registers_rectable(self):
        cluster = quick_cluster()
        txn = cluster.submit_via("S1", [], {"obj4": 9})
        cluster.settle(0.3)
        for node in cluster.nodes.values():
            node.db.rectable.ensure_current()
            if "obj4" in node.db.rectable:
                assert node.db.rectable.last_writer("obj4") == txn.gid
            else:
                # Garbage-collected: legitimate only once every site's
                # cover is at or past the writer (section 4.5, step II).
                assert node.db.cover_gid() >= txn.gid


class TestMetricsSummary:
    def test_summary_shape(self):
        cluster = quick_cluster()
        cluster.submit_via("S1", [], {"obj0": 1})
        cluster.settle(0.3)
        summary = cluster.metrics_summary()
        assert summary["commits"] == 1
        assert summary["aborts"] == 0
        assert summary["network_messages"] > 0
        assert summary["virtual_time"] == cluster.sim.now
