"""Tests for the tracing subsystem."""

import pytest

from repro.tracing import TraceEvent, Tracer, attach_tracer
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


class TestTracer:
    def test_emit_and_query(self):
        now = {"t": 1.0}
        tracer = Tracer(clock=lambda: now["t"])
        tracer.emit("S1", "view", "install", "v1")
        now["t"] = 2.0
        tracer.emit("S2", "status", "active")
        assert len(tracer.events) == 2
        assert tracer.of("view") == [TraceEvent(1.0, "S1", "view", "install", "v1")]
        assert tracer.of(site="S2")[0].kind == "active"
        assert tracer.kinds("status") == ["active"]

    def test_between(self):
        now = {"t": 0.0}
        tracer = Tracer(clock=lambda: now["t"])
        for t in (0.5, 1.5, 2.5):
            now["t"] = t
            tracer.emit("S1", "txn", f"at{t}")
        assert [e.kind for e in tracer.between(1.0, 2.0)] == ["at1.5"]

    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.enabled = False
        tracer.emit("S1", "view", "install")
        assert tracer.events == []

    def test_assert_order_passes(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "transfer", "start")
        tracer.emit("S1", "transfer", "complete")
        tracer.assert_order(("transfer", "start"), ("transfer", "complete"))

    def test_assert_order_fails(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "transfer", "complete")
        with pytest.raises(AssertionError):
            tracer.assert_order(("transfer", "start"), ("transfer", "complete"))

    def test_timeline_renders(self):
        tracer = Tracer(clock=lambda: 1.25)
        tracer.emit("S1", "view", "install", "v")
        assert "S1" in tracer.timeline()
        assert tracer.timeline(limit=1).count("\n") == 0


class TestAttachedTracer:
    def test_recovery_produces_expected_sequence(self):
        cluster = quick_cluster(db_size=30)
        tracer = attach_tracer(cluster)
        cluster.crash("S3")
        cluster.submit_via("S1", [], {"obj0": 1})
        cluster.settle(0.3)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        cluster.settle(0.3)
        tracer.assert_order(
            ("transfer", "start"),
            ("transfer", "complete"),
            ("status", "active"),
        )
        assert any(e.site == "S3" and e.kind == "recovering"
                   for e in tracer.of("status"))

    def test_evs_run_traces_merges(self):
        cluster = quick_cluster(mode="evs", n_sites=5, db_size=30)
        tracer = attach_tracer(cluster)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        assert cluster.await_all_active(timeout=30)
        kinds = tracer.kinds("eview")
        assert "subview_set_merge" in kinds and "subview_merge" in kinds

    def test_creation_traced(self):
        cluster = quick_cluster(db_size=20)
        tracer = attach_tracer(cluster)
        for site in cluster.universe:
            cluster.crash(site)
        cluster.run_for(0.3)
        for site in cluster.universe:
            cluster.recover(site)
        assert cluster.await_all_active(timeout=30)
        assert tracer.of("creation")
