"""Tests for the tracing subsystem."""

import pytest

from repro.tracing import TraceEvent, Tracer, attach_tracer
from repro.replication.node import SiteStatus
from tests.conftest import quick_cluster


class TestTracer:
    def test_emit_and_query(self):
        now = {"t": 1.0}
        tracer = Tracer(clock=lambda: now["t"])
        tracer.emit("S1", "view", "install", "v1")
        now["t"] = 2.0
        tracer.emit("S2", "status", "active")
        assert len(tracer.events) == 2
        assert tracer.of("view") == [TraceEvent(1.0, "S1", "view", "install", "v1")]
        assert tracer.of(site="S2")[0].kind == "active"
        assert tracer.kinds("status") == ["active"]

    def test_between(self):
        now = {"t": 0.0}
        tracer = Tracer(clock=lambda: now["t"])
        for t in (0.5, 1.5, 2.5):
            now["t"] = t
            tracer.emit("S1", "txn", f"at{t}")
        assert [e.kind for e in tracer.between(1.0, 2.0)] == ["at1.5"]

    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.enabled = False
        tracer.emit("S1", "view", "install")
        assert tracer.events == []

    def test_assert_order_passes(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "transfer", "start")
        tracer.emit("S1", "transfer", "complete")
        tracer.assert_order(("transfer", "start"), ("transfer", "complete"))

    def test_assert_order_fails(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "transfer", "complete")
        with pytest.raises(AssertionError):
            tracer.assert_order(("transfer", "start"), ("transfer", "complete"))

    def test_assert_order_failure_message_names_the_missing_event(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "transfer", "complete")
        with pytest.raises(AssertionError) as excinfo:
            tracer.assert_order(("transfer", "start"), ("transfer", "complete"))
        message = str(excinfo.value)
        # Names the expectation that was not met...
        assert "('transfer', 'start')" in message
        # ...and dumps what actually happened, for debugging.
        assert "('transfer', 'complete')" in message

    def test_assert_order_consumes_events(self):
        # Each expectation must match strictly *after* the previous one:
        # a single event cannot satisfy the same pair twice.
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "transfer", "start")
        tracer.emit("S1", "transfer", "complete")
        with pytest.raises(AssertionError):
            tracer.assert_order(
                ("transfer", "complete"), ("transfer", "start"))

    def test_between_boundaries_are_half_open(self):
        now = {"t": 0.0}
        tracer = Tracer(clock=lambda: now["t"])
        for t in (1.0, 1.5, 2.0):
            now["t"] = t
            tracer.emit("S1", "txn", f"at{t}")
        # [start, end): the event at exactly start is included, the one
        # at exactly end is not.
        assert [e.kind for e in tracer.between(1.0, 2.0)] == ["at1.0", "at1.5"]
        assert [e.kind for e in tracer.between(2.0, 3.0)] == ["at2.0"]
        assert tracer.between(2.5, 2.5) == []

    def test_of_filters_by_kind(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "status", "recovering")
        tracer.emit("S1", "status", "active")
        tracer.emit("S2", "status", "active")
        assert len(tracer.of("status", kind="active")) == 2
        assert len(tracer.of("status", site="S1", kind="active")) == 1
        assert tracer.of("status", kind="down") == []

    def test_kinds_filters_by_site(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.emit("S1", "status", "recovering")
        tracer.emit("S2", "status", "active")
        assert tracer.kinds("status") == ["recovering", "active"]
        assert tracer.kinds("status", site="S2") == ["active"]
        assert tracer.kinds("transfer") == []

    def test_listeners_see_events_as_emitted(self):
        tracer = Tracer(clock=lambda: 0.0)
        seen = []
        tracer.add_listener(seen.append)
        tracer.emit("S1", "txn", "submit", data={"txn": "S1#0"})
        assert len(seen) == 1
        assert seen[0].data == {"txn": "S1#0"}
        tracer.enabled = False
        tracer.emit("S1", "txn", "submit")
        assert len(seen) == 1  # disabled tracer notifies nobody

    def test_timeline_renders(self):
        tracer = Tracer(clock=lambda: 1.25)
        tracer.emit("S1", "view", "install", "v")
        assert "S1" in tracer.timeline()
        assert tracer.timeline(limit=1).count("\n") == 0


class TestAttachedTracer:
    def test_recovery_produces_expected_sequence(self):
        cluster = quick_cluster(db_size=30)
        tracer = attach_tracer(cluster)
        cluster.crash("S3")
        cluster.submit_via("S1", [], {"obj0": 1})
        cluster.settle(0.3)
        cluster.recover("S3")
        assert cluster.await_condition(
            lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=30
        )
        cluster.settle(0.3)
        tracer.assert_order(
            ("transfer", "start"),
            ("transfer", "complete"),
            ("status", "active"),
        )
        assert any(e.site == "S3" and e.kind == "recovering"
                   for e in tracer.of("status"))

    def test_evs_run_traces_merges(self):
        cluster = quick_cluster(mode="evs", n_sites=5, db_size=30)
        tracer = attach_tracer(cluster)
        cluster.crash("S5")
        cluster.run_for(0.5)
        cluster.recover("S5")
        assert cluster.await_all_active(timeout=30)
        kinds = tracer.kinds("eview")
        assert "subview_set_merge" in kinds and "subview_merge" in kinds

    def test_creation_traced(self):
        cluster = quick_cluster(db_size=20)
        tracer = attach_tracer(cluster)
        for site in cluster.universe:
            cluster.crash(site)
        cluster.run_for(0.3)
        for site in cluster.universe:
            cluster.recover(site)
        assert cluster.await_all_active(timeout=30)
        assert tracer.of("creation")
