"""Unit tests for phantom-commit reconciliation at the database layer."""

from repro.db.database import Database
from repro.db.store import INITIAL_VERSION
from repro.db.wal import PersistentStorage, ReconcileRecord


def make_db():
    storage = PersistentStorage()
    db = Database(storage)
    db.bootstrap({"a": 0, "b": 0})
    return db


class TestPhantomQueries:
    def test_committed_gids_above(self):
        db = make_db()
        for gid in (5, 9):
            db.log_begin(gid)
            db.apply_write(gid, "a", gid)
            db.commit(gid)
        assert db.committed_gids_above(-1) == (5, 9)
        assert db.committed_gids_above(5) == (9,)

    def test_reconciled_gids_excluded(self):
        db = make_db()
        db.log_begin(5)
        db.apply_write(5, "a", "x")
        db.commit(5)
        db.reconcile_phantoms([5])
        assert db.committed_gids_above(-1) == ()

    def test_verify_committed_flags_unknown(self):
        db = make_db()
        db.log_begin(5)
        db.commit(5)
        assert db.verify_committed([5, 6, 7]) == (6, 7)

    def test_verify_committed_trusts_baseline(self):
        db = make_db()
        db.set_baseline(10)
        assert db.verify_committed([3, 7]) == ()

    def test_is_committed_locally(self):
        db = make_db()
        db.log_begin(5)
        db.commit(5)
        assert db.is_committed_locally(5)
        assert not db.is_committed_locally(6)
        db.storage.append(ReconcileRecord(5))
        assert not db.is_committed_locally(5)


class TestCompensation:
    def test_restores_before_images(self):
        db = make_db()
        db.log_begin(5)
        db.apply_write(5, "a", "phantom")
        db.commit(5)
        undone = db.reconcile_phantoms([5])
        assert undone == 1
        assert db.store.read("a") == (0, INITIAL_VERSION)

    def test_chained_phantoms_reversed_newest_first(self):
        db = make_db()
        for gid, value in ((5, "v5"), (7, "v7")):
            db.log_begin(gid)
            db.apply_write(gid, "a", value)
            db.commit(gid)
        db.reconcile_phantoms([5, 7])
        assert db.store.read("a") == (0, INITIAL_VERSION)

    def test_skips_objects_overwritten_by_later_writers(self):
        db = make_db()
        db.log_begin(5)
        db.apply_write(5, "a", "phantom")
        db.commit(5)
        db.store.write("a", "legit", 9)  # e.g. installed by a transfer batch
        db.reconcile_phantoms([5])
        assert db.store.read("a") == ("legit", 9)

    def test_recovery_does_not_redo_reconciled(self):
        db = make_db()
        db.log_begin(5)
        db.apply_write(5, "a", "phantom")
        db.commit(5)
        db.reconcile_phantoms([5])
        recovered, result = Database.recover_from(db.storage)
        assert recovered.store.read("a") == (0, INITIAL_VERSION)
        assert 5 not in result.committed_gids
        # And the gid counts as terminated for the cover.
        assert result.cover_gid >= 5

    def test_empty_phantom_list_noop(self):
        db = make_db()
        assert db.reconcile_phantoms([]) == 0
