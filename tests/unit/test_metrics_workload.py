"""Unit tests for metrics helpers and the workload generator config."""

from repro.checkers import HistoryRecorder
from repro.replication.messages import TransactionMessage
from repro.workload.metrics import ThroughputTimeline, summarize_latencies


def message(i):
    return TransactionMessage(origin="S1", local_id=f"t{i}", read_set=(), write_set=())


class TestLatencySummary:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary.count == 0 and summary.mean == 0.0

    def test_single_value(self):
        summary = summarize_latencies([0.5])
        assert summary.count == 1
        assert (summary.mean == summary.p50 == summary.p95 == summary.p99
                == summary.maximum == 0.5)

    def test_percentiles_ordered(self):
        summary = summarize_latencies([float(i) for i in range(100)])
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        # Nearest rank: ceil(0.5 * 100) = 50th ordered value = index 49.
        assert summary.p50 == 49.0
        assert summary.maximum == 99.0

    def test_nearest_rank_pinned(self):
        # 1..100: the p-th percentile is exactly the value p under the
        # nearest-rank definition (smallest value with >= p% of the
        # sample at or below it).
        sample = [float(i) for i in range(1, 101)]
        summary = summarize_latencies(sample)
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0

    def test_nearest_rank_small_samples(self):
        # n=2: p50 must be the first value (ceil(0.5*2)-1 = 0), not the
        # second — the old int(p*n) indexing returned 2.0 here.
        summary = summarize_latencies([1.0, 2.0])
        assert summary.p50 == 1.0
        assert summary.p95 == 2.0
        # n=4: p95 clamps to the maximum.
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary.p50 == 2.0
        assert summary.p95 == 4.0
        assert summary.p99 == 4.0

    def test_mean(self):
        assert summarize_latencies([1.0, 3.0]).mean == 2.0


class TestThroughputTimeline:
    def make_history(self, times_gids):
        clock = {"t": 0.0}
        history = HistoryRecorder(clock=lambda: clock["t"])
        for t, gid in times_gids:
            clock["t"] = t
            history.record("S1", "commit", gid, message(gid))
        return history

    def test_bucketing(self):
        history = self.make_history([(0.05, 0), (0.07, 1), (0.25, 2)])
        series = ThroughputTimeline(history, bucket=0.1).series()
        assert series[0] == (0.0, 2)
        assert series[2] == (0.2, 1)

    def test_gid_dedup_across_sites(self):
        clock = {"t": 0.05}
        history = HistoryRecorder(clock=lambda: clock["t"])
        history.record("S1", "commit", 0, message(0))
        history.record("S2", "commit", 0, message(0))
        series = ThroughputTimeline(history, bucket=0.1).series()
        assert series[0] == (0.0, 1)

    def test_site_filter(self):
        clock = {"t": 0.05}
        history = HistoryRecorder(clock=lambda: clock["t"])
        history.record("S1", "commit", 0, message(0))
        history.record("S2", "commit", 1, message(1))
        series = ThroughputTimeline(history, bucket=0.1).series(site="S2")
        assert series[0] == (0.0, 1)

    def test_empty_history(self):
        history = HistoryRecorder()
        assert ThroughputTimeline(history).series() == []

    def test_min_bucket_between(self):
        history = self.make_history([(0.05, 0), (0.15, 1), (0.17, 2), (0.35, 3)])
        timeline = ThroughputTimeline(history, bucket=0.1)
        # window [0, 0.4): buckets 0:1, 1:2, 2:0, 3:1 -> min 0
        assert timeline.min_bucket_between(0.0, 0.4) == 0
        assert timeline.min_bucket_between(0.0, 0.2) == 1
