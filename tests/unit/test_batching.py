"""Unit tests for the hot-path batch boundaries.

Batching must be invisible at every seam: the sequencer's staged flush
must never leak Ordered messages across a view change, the network's
same-tick coalescing must keep per-message loss/duplication semantics
under fault injectors, and compressed transfer chunks must account the
bytes that actually travel.  The end-to-end equivalence property lives
in ``tests/properties/test_batching_equivalence.py``; these tests pin
the individual mechanisms so a failure points at the exact layer.
"""

import pickle

import pytest

from repro.gcs.messages import Ack, Data, Ordered, OrderedBatch, ViewId
from repro.gcs.total_order import ViewTotalOrder
from repro.gcs.view import View
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.reconfig.transfer import (
    TransferBatch,
    decode_batch_items,
    encode_batch_items,
)
from repro.sim.core import Simulator


# ----------------------------------------------------------------------
# Sequencer staging
# ----------------------------------------------------------------------
def make_sequencer(batch=True):
    """A ViewTotalOrder at the sequencer (min member) with recording
    send/deliver hooks and a manually drained defer queue."""
    view = View(ViewId(1, "S1"), ("S1", "S2", "S3"))
    sent = []
    delivered = []
    deferred = []
    to = ViewTotalOrder(
        view=view,
        me="S1",
        base_gseq=0,
        send=lambda dst, msg: sent.append((dst, msg)),
        deliver=lambda msg: delivered.append(msg),
        defer=deferred.append,
        batch=batch,
    )
    return to, sent, delivered, deferred


def data(i, sender="S2"):
    return Data(sender=sender, msg_id=i, view_id=ViewId(1, "S1"), payload=f"m{i}")


class TestSequencerStaging:
    def test_round_coalesces_into_one_batch_per_member(self):
        to, sent, delivered, deferred = make_sequencer()
        for i in range(3):
            to.on_data(data(i))
        # The (empty, still mutable) batch went on the wire with the
        # *first* message of the round — reserving that message's
        # delivery slot so same-time event ordering at the receivers is
        # identical to unbatched mode — and one deferred seal is
        # scheduled.  Nothing is readable from the batch yet.
        assert {dst for dst, _ in sent} == {"S2", "S3"}
        assert len(sent) == 2
        assert all(msg.items == () for _, msg in sent)
        assert len(deferred) == 1
        # Local self-sequencing happened immediately (the sequencer's
        # protocol state must match unbatched mode within the tick);
        # app delivery waits for the other members' acks (uniform).
        assert to.recv_highwater == 2
        assert to.ack_high["S1"] == 2
        assert delivered == []
        deferred.pop()()  # end of tick: seal the in-flight batch
        batches = [msg for _, msg in sent if isinstance(msg, OrderedBatch)]
        assert len(sent) == 2 and len(batches) == 2
        assert batches[0] is batches[1]  # one shared sealed batch object
        for b in batches:
            assert [m.payload for m in b.items] == ["m0", "m1", "m2"]
            assert [m.seq for m in b.items] == [0, 1, 2]
            assert b.ack_high == 2  # the sequencer's own ack, piggybacked
        assert to.batches_sent == 1

    def test_single_message_round_still_subsumes_the_ack(self):
        """Even a one-item round ships as a batch: the sequencer's own
        cumulative ack rides along, so the wire carries two messages per
        remote member less than the unbatched Ordered + Ack pair."""
        to, sent, _, deferred = make_sequencer()
        to.on_data(data(0))
        deferred.pop()()
        assert len(sent) == 2
        for _, msg in sent:
            assert isinstance(msg, OrderedBatch)
            assert len(msg.items) == 1 and msg.ack_high == 0

    def test_flush_on_view_freeze_leaves_nothing_staged(self):
        """freeze_for_flush() calls flush_staged() synchronously; the
        staged round must be sealed before the flush cut is extracted so
        no sequenced message is lost across the view change."""
        to, sent, _, deferred = make_sequencer()
        to.on_data(data(0))
        to.on_data(data(1))
        to.flush_staged()  # what GroupMember.freeze_for_flush drives
        assert to._stage == []
        batches = [msg for _, msg in sent if isinstance(msg, OrderedBatch)]
        assert len(batches) == 2  # one per remote member
        assert all(len(b.items) == 2 for b in batches)
        # The deferred end-of-tick flush still fires but is now a no-op.
        before = list(sent)
        deferred.pop()()
        assert sent == before
        assert all(len(b.items) == 2 for b in batches)

    def test_receiver_batch_equals_individual_orders(self):
        """on_ordered_batch must leave the receiver in the same state as
        the per-message path, emitting one cumulative ack."""
        view = View(ViewId(1, "S1"), ("S1", "S2", "S3"))
        results = []
        for batched in (False, True):
            sent, delivered = [], []
            to = ViewTotalOrder(
                view=view, me="S2", base_gseq=0,
                send=lambda dst, msg, sent=sent: sent.append((dst, msg)),
                deliver=delivered.append,
            )
            orders = [
                Ordered(view_id=view.view_id, seq=i, gseq=i, sender="S1",
                        msg_id=i, payload=f"m{i}")
                for i in range(3)
            ]
            if batched:
                to.on_ordered_batch(OrderedBatch(view_id=view.view_id,
                                                 items=tuple(orders)))
            else:
                for msg in orders:
                    to.on_ordered(msg)
            acks = [m.highwater for _, m in sent if isinstance(m, Ack)]
            results.append((
                [m.payload for m in delivered],
                to.recv_highwater,
                to.delivered_seq,
                acks[-1] if acks else None,
            ))
        plain, batched = results
        assert plain[:3] == batched[:3]
        assert plain[3] == batched[3] == 2
        # ... but the batch path acked once, not three times.


# ----------------------------------------------------------------------
# Network same-tick coalescing
# ----------------------------------------------------------------------
class Sink:
    def __init__(self):
        self.got = []

    def __call__(self, src, payload):
        self.got.append((src, payload))


class DropPayload:
    """Fault injector that kills messages with a given payload."""

    def __init__(self, doomed):
        self.doomed = doomed

    def transform(self, src, dst, payload, deliveries, rng, now):
        return [] if payload == self.doomed else deliveries


class Duplicate:
    def transform(self, src, dst, payload, deliveries, rng, now):
        return deliveries * 2


class TestNetworkCoalescing:
    def setup_network(self, **kwargs):
        sim = Simulator(seed=1)
        net = Network(sim, latency=FixedLatency(0.001), **kwargs)
        sinks = {}
        for node in ("S1", "S2", "S3"):
            endpoint = net.endpoint(node)
            sinks[node] = Sink()
            endpoint.attach(sinks[node])
            net.bring_up(node)
        return sim, net, sinks

    def test_same_tick_messages_share_one_delivery_event(self):
        sim, net, sinks = self.setup_network()
        net.send("S1", "S3", "a")
        net.send("S2", "S3", "b")
        net.send("S1", "S2", "c")  # other destination: separate event
        before = sim.events_processed
        sim.run(until=0.01)
        assert sinks["S3"].got == [("S1", "a"), ("S2", "b")]
        assert sinks["S2"].got == [("S1", "c")]
        assert net.delivery_batches == 1  # only S3's pair coalesced
        assert net.messages_delivered == 3
        assert sim.events_processed - before == 2  # not 3

    def test_coalescing_off_matches_message_count(self):
        sim, net, sinks = self.setup_network(coalesce=False)
        net.send("S1", "S3", "a")
        net.send("S2", "S3", "b")
        before = sim.events_processed
        sim.run(until=0.01)
        assert sinks["S3"].got == [("S1", "a"), ("S2", "b")]
        assert net.delivery_batches == 0
        assert sim.events_processed - before == 2  # one event per message

    def test_injector_drop_splits_batch_not_whole_tick(self):
        """Loss is decided per message *before* bucketing: an injector
        dropping one message of a tick must not take down its batch
        mates (and must not un-coalesce the survivors)."""
        sim, net, sinks = self.setup_network()
        net.add_injector(DropPayload("dead"))
        net.send("S1", "S3", "a")
        net.send("S1", "S3", "dead")
        net.send("S2", "S3", "b")
        sim.run(until=0.01)
        assert sinks["S3"].got == [("S1", "a"), ("S2", "b")]
        assert net.messages_injector_dropped == 1
        assert net.delivery_batches == 1

    def test_injector_duplicates_land_in_same_tick_batch(self):
        sim, net, sinks = self.setup_network()
        net.add_injector(Duplicate())
        net.send("S1", "S3", "a")
        sim.run(until=0.01)
        assert sinks["S3"].got == [("S1", "a"), ("S1", "a")]
        assert net.messages_duplicated == 1

    def test_crash_mid_flight_drops_whole_batch(self):
        sim, net, sinks = self.setup_network()
        net.send("S1", "S3", "a")
        net.send("S2", "S3", "b")
        net.take_down("S3")
        sim.run(until=0.01)
        assert sinks["S3"].got == []
        assert net.messages_dropped == 2  # accounted per message


# ----------------------------------------------------------------------
# Compressed transfer chunks
# ----------------------------------------------------------------------
class TestChunkCompression:
    ITEMS = tuple((f"obj-{i:06d}", f"value-{i}", i % 7) for i in range(120))

    def test_round_trip(self):
        blob = encode_batch_items(self.ITEMS)
        assert decode_batch_items(blob) == self.ITEMS

    def test_round_trip_unrelated_names(self):
        items = (("alpha", 1, 1), ("z", None, 2), ("alphabet", [3], 3), ("", 0, 4))
        assert decode_batch_items(encode_batch_items(items)) == items

    def test_front_coding_plus_deflate_shrinks_the_wire(self):
        blob = encode_batch_items(self.ITEMS)
        naive = pickle.dumps(self.ITEMS, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(blob) < len(naive)

    def test_payload_bytes_counts_the_compressed_blob(self):
        """What the byte-accounting metrics must see: a compressed batch
        reports len(blob), and decoding yields the original items."""
        blob = encode_batch_items(self.ITEMS)
        batch = TransferBatch(
            session_id=1, round_no=0, items=(), payload_bytes=len(blob),
            seq=1, blob=blob, compressed=True,
        )
        assert batch.payload_bytes == len(blob)
        assert batch.decoded_items() == self.ITEMS

    def test_uncompressed_batch_carries_items_inline(self):
        batch = TransferBatch(
            session_id=1, round_no=0, items=self.ITEMS,
            payload_bytes=len(self.ITEMS) * 64, seq=1,
        )
        assert batch.decoded_items() == self.ITEMS
