"""Tests for the stale-view protections (the paper's section 2.1 "thin
software layer": concurrent views must not overlap, and a site whose
view the group abandoned must not act as an up-to-date primary member).
"""

from repro.gcs.config import GCSConfig
from repro.gcs.messages import Presence
from repro.gcs.view import View, ViewId
from tests.conftest import make_group


class TestDemotion:
    def test_majority_defection_demotes(self):
        sim, net, members, _ = make_group(3, seed=1)
        sim.run(until=2.0)
        victim = members["S3"]
        assert victim.is_primary()
        # S1 and S2 claim a higher-epoch view that excludes S3.
        newer = ViewId(victim.view.view_id.epoch + 1, "S1")
        for sender in ("S1", "S2"):
            victim.fd.on_presence(Presence(sender=sender, view_id=newer,
                                           view_members=("S1", "S2"),
                                           epoch=newer.epoch))
        victim._check_stale_view()
        assert not victim.is_primary()

    def test_single_defector_does_not_demote_in_three_view(self):
        sim, net, members, _ = make_group(3, seed=1)
        sim.run(until=2.0)
        victim = members["S3"]
        newer = ViewId(victim.view.view_id.epoch + 1, "S1")
        victim.fd.on_presence(Presence(sender="S1", view_id=newer,
                                       view_members=("S1", "S2"), epoch=newer.epoch))
        victim._check_stale_view()
        assert victim.is_primary()

    def test_claims_including_me_do_not_count(self):
        """The normal in-flight-SYNC window: peers already installed the
        next view but it contains me — no demotion."""
        sim, net, members, _ = make_group(3, seed=1)
        sim.run(until=2.0)
        victim = members["S3"]
        newer = ViewId(victim.view.view_id.epoch + 1, "S1")
        for sender in ("S1", "S2"):
            victim.fd.on_presence(Presence(sender=sender, view_id=newer,
                                           view_members=("S1", "S2", "S3"),
                                           epoch=newer.epoch))
        victim._check_stale_view()
        assert victim.is_primary()

    def test_older_epoch_claims_do_not_count(self):
        sim, net, members, _ = make_group(3, seed=1)
        sim.run(until=2.0)
        victim = members["S3"]
        older = ViewId(victim.view.view_id.epoch - 1, "S1")
        for sender in ("S1", "S2"):
            victim.fd.on_presence(Presence(sender=sender, view_id=older,
                                           view_members=("S1", "S2"), epoch=older.epoch))
        victim._check_stale_view()
        assert victim.is_primary()

    def test_demotion_notifies_application(self):
        calls = []

        sim, net, members, apps = make_group(3, seed=1)
        sim.run(until=2.0)
        victim = members["S3"]
        victim.app.on_primary_demoted = lambda: calls.append(True)
        newer = ViewId(victim.view.view_id.epoch + 1, "S1")
        for sender in ("S1", "S2"):
            victim.fd.on_presence(Presence(sender=sender, view_id=newer,
                                           view_members=("S1", "S2"), epoch=newer.epoch))
        victim._check_stale_view()
        assert calls == [True]


class TestGapDetection:
    def test_install_records_missed_gseqs(self):
        sim, net, members, _ = make_group(3, seed=1)
        sim.run(until=2.0)
        member = members["S2"]
        # Install a view whose base is beyond what we delivered.
        next_before = member.to.next_gseq
        view = View(ViewId(member.view.view_id.epoch + 1, "S1"),
                    ("S1", "S2", "S3"))
        member.install_view(view, next_before + 7, {})
        assert member.last_install_missed == 7

    def test_gap_free_install_records_zero(self):
        sim, net, members, _ = make_group(3, seed=1)
        sim.run(until=2.0)
        member = members["S2"]
        view = View(ViewId(member.view.view_id.epoch + 1, "S1"),
                    ("S1", "S2", "S3"))
        member.install_view(view, member.to.next_gseq, {})
        assert member.last_install_missed == 0

    def test_stale_member_marked_in_sync(self):
        """End to end: a member that misses messages and re-merges is
        listed in the SYNC's stale set at every installer."""
        sim, net, members, apps = make_group(3, seed=4)
        sim.run(until=2.0)
        # Isolate S3; majority delivers messages it never sees.
        net.set_partitions([{"S1", "S2"}, {"S3"}])
        sim.run(until=4.0)
        members["S1"].multicast("hidden-1")
        members["S1"].multicast("hidden-2")
        sim.run(until=5.0)
        net.heal()
        sim.run(until=8.0)
        assert len(members["S1"].view) == 3
        assert "S3" in members["S1"].stale_members
        assert members["S3"].last_install_missed >= 2
