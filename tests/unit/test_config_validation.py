"""Validation tests for the configuration objects."""

import pytest

from repro import ClusterBuilder, NodeConfig, WorkloadConfig
from repro.gcs.config import GCSConfig


class TestNodeConfig:
    def test_defaults_valid(self):
        NodeConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("read_op_time", -1.0),
        ("write_op_time", -0.1),
        ("transfer_obj_time", -0.5),
        ("transfer_batch_size", 0),
        ("object_size_bytes", 0),
        ("partition_count", -1),
        ("lazy_max_rounds", 0),
    ])
    def test_bad_values_rejected(self, field, value):
        config = NodeConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()

    def test_node_constructor_validates(self):
        with pytest.raises(ValueError):
            ClusterBuilder(node_config=NodeConfig(transfer_batch_size=0)).build()


class TestWorkloadConfig:
    def test_defaults_valid(self):
        WorkloadConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("arrival_rate", 0.0),
        ("arrival_rate", -5.0),
        ("reads_per_txn", -1),
        ("writes_per_txn", -2),
        ("hot_fraction", 0.0),
        ("hot_fraction", 1.5),
        ("hot_access_probability", -0.1),
        ("hot_access_probability", 1.1),
        ("max_retries", -1),
    ])
    def test_bad_values_rejected(self, field, value):
        config = WorkloadConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()


class TestGCSConfig:
    def test_defaults_valid(self):
        GCSConfig().validate()

    def test_timeout_ordering_enforced(self):
        with pytest.raises(ValueError):
            GCSConfig(flush_timeout=2.0, round_timeout=1.0).validate()

    def test_unknown_primary_policy_rejected_at_member(self):
        with pytest.raises(ValueError):
            ClusterBuilder(gcs_config=GCSConfig(primary_policy="nope")).build()
