"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import ClusterBuilder, LoadGenerator, NodeConfig, WorkloadConfig
from repro.gcs.config import GCSConfig
from repro.gcs.member import GroupMember
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.core import Simulator


class RecordingApp:
    """Minimal GCS application that records everything it sees."""

    def __init__(self, name: str = "?", universe_size: int = 0) -> None:
        self.name = name
        self.universe_size = universe_size
        self.views = []
        self.messages = []  # (gseq, sender, payload)
        self.primary_messages = []  # same, only while in a primary view
        self.states_seen = []
        self._in_primary = False

    def on_view_change(self, view, states) -> None:
        self.views.append(view)
        self.states_seen.append(states)
        if self.universe_size:
            self._in_primary = view.is_primary(self.universe_size)

    def on_message(self, sender, payload, gseq) -> None:
        self.messages.append((gseq, sender, payload))
        if self._in_primary:
            self.primary_messages.append((gseq, sender, payload))

    def flush_state(self):
        return {}

    def payloads(self):
        return [payload for _, _, payload in self.messages]


def make_group(n: int = 3, seed: int = 1, latency: float = 0.001, config: GCSConfig = None):
    """A simulator + network + n started GroupMembers with recording apps."""
    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(latency))
    universe = tuple(f"S{i + 1}" for i in range(n))
    apps = {node: RecordingApp(node, universe_size=n) for node in universe}
    members = {
        node: GroupMember(sim, network, node, universe, config or GCSConfig(), apps[node])
        for node in universe
    }
    for member in members.values():
        member.start()
    return sim, network, members, apps


def settle_group(sim, until: float = 2.0) -> None:
    sim.run(until=until)


@pytest.fixture
def small_group():
    return make_group(3)


def _backend_params():
    """Backends the conformance suites run against.

    Default is both non-default backends (``vs`` is exercised by the
    unparameterised bulk of the suite); setting ``REPRO_BACKEND`` pins a
    single backend — the CI backend-matrix job uses this to split the
    conformance runs across jobs.
    """
    forced = os.environ.get("REPRO_BACKEND")
    if forced:
        return (forced,)
    return ("evs", "logless")


@pytest.fixture(params=_backend_params())
def backend(request):
    """Parameterises a test over reconfiguration backends (the
    cross-backend conformance harness — docs/RECONFIG_BACKENDS.md).

    Tests take ``backend`` and pass it to :func:`quick_cluster` /
    ``ClusterBuilder``; every backend must satisfy the same protocol
    semantics."""
    return request.param


def quick_cluster(**kwargs):
    """A started, bootstrapped cluster with sensible test defaults."""
    defaults = dict(n_sites=3, db_size=40, seed=42, strategy="rectable")
    defaults.update(kwargs)
    cluster = ClusterBuilder(**defaults).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10), "cluster failed to bootstrap"
    return cluster


def run_load(cluster, duration: float = 1.0, rate: float = 100.0, reads: int = 1, writes: int = 2):
    """Drive a workload for ``duration`` and settle; returns the generator."""
    load = LoadGenerator(
        cluster, WorkloadConfig(arrival_rate=rate, reads_per_txn=reads, writes_per_txn=writes)
    )
    load.start()
    cluster.run_for(duration)
    load.stop()
    cluster.settle(0.5)
    return load
