"""Property-based cross-backend differential: random small schedules of
faults and writes, replayed on every reconfiguration backend, must end
in the *same* committed store — and each run must satisfy the full
invariant battery plus the exactly-once ledger.

Where :mod:`repro.differential` compares invariant *verdicts* under the
chaos engine (whose armed-crash strike timing makes commit counts
backend-sensitive), this suite is constructed to be timing-insensitive
so strict state equality is a fair claim:

* all faults hit S4/S5 only — the majority {S1, S2, S3} never loses
  quorum, so every submitted write eventually commits on any backend;
* writes go to distinct keys from the stable site S1, so the final
  store is the set of committed writes, independent of interleaving
  with backend-specific reconfiguration traffic (membership log
  entries under vs/evs, ConfigChange messages under logless).  The
  *values* must agree exactly; commit gids legitimately differ because
  each backend's coordination traffic consumes different gseq slots;
* every write carries a durable RequestId, and one request is
  deterministically resubmitted, so the dedup/outcome table is
  exercised on every backend too.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import ClusterBuilder
from repro.checkers import check_exactly_once
from repro.replication.messages import RequestId

FAULT_SITES = ("S4", "S5")

#: One schedule step.  Guards in ``apply_schedule`` make any generated
#: sequence legal (no double-crash, no partition while a site is down),
#: so shrinking stays simple.
_STEP = st.one_of(
    st.just(("write",)),
    st.tuples(st.just("crash"), st.sampled_from(FAULT_SITES)),
    st.tuples(st.just("recover"), st.sampled_from(FAULT_SITES)),
    st.just(("partition",)),
    st.just(("heal",)),
)

SCHEDULES = st.lists(_STEP, min_size=2, max_size=8)


def apply_schedule(backend, steps):
    """Run one schedule on one backend; return the converged store digest."""
    cluster = ClusterBuilder(n_sites=5, db_size=30, seed=7,
                             strategy="rectable", backend=backend).build()
    cluster.start()
    assert cluster.await_all_active(timeout=15), f"{backend}: bootstrap failed"

    down = {site: False for site in FAULT_SITES}
    partitioned = False
    seq = 0
    source = cluster.nodes["S1"]
    for step in steps:
        kind = step[0]
        if kind == "crash":
            site = step[1]
            if not down[site] and not partitioned:
                cluster.crash(site)
                down[site] = True
        elif kind == "recover":
            site = step[1]
            if down[site]:
                cluster.recover(site)
                down[site] = False
        elif kind == "partition":
            if not partitioned and not any(down.values()):
                cluster.partition([["S1", "S2", "S3"], list(FAULT_SITES)])
                partitioned = True
        elif kind == "heal":
            if partitioned:
                cluster.heal()
                partitioned = False
        else:  # write
            seq += 1
            source.submit([], {f"k{seq}": f"v{seq}"},
                          request=RequestId("CH", seq, 1))
        cluster.run_for(0.25)

    if seq:
        # Deterministic failover resubmission of the last request: the
        # replicated outcome table must answer it from the original
        # commit, never apply the divergent write-set.
        cluster.settle(0.5)
        source.submit([], {f"k{seq}": "duplicate"},
                      request=RequestId("CH", seq, 2))

    if partitioned:
        cluster.heal()
    for site, is_down in down.items():
        if is_down:
            cluster.recover(site)
    assert cluster.await_all_active(timeout=60), f"{backend}: never re-converged"
    cluster.settle(1.5)

    cluster.check()  # the full invariant battery
    check_exactly_once(cluster.history, [])

    digests = {site: cluster.nodes[site].db.store.content_digest()
               for site in cluster.universe}
    assert len(set(digests.values())) == 1, f"{backend}: replicas diverged"
    # Every surviving write must be the original attempt's value.
    for i in range(1, seq + 1):
        assert cluster.nodes["S1"].db.store.value(f"k{i}") == f"v{i}"
    # The cross-backend claim is about committed *values*: commit gids
    # are backend-relative (coordination traffic consumes gseq slots).
    return tuple((obj, value) for obj, value, _ in digests["S1"])


@given(steps=SCHEDULES)
@settings(max_examples=8, deadline=None,
          suppress_health_check=list(HealthCheck))
def test_backends_reach_identical_state(steps):
    digests = {backend: apply_schedule(backend, steps)
               for backend in ("evs", "logless")}
    assert len(set(digests.values())) == 1, (
        f"backends disagree on the final committed store: {digests}")


@given(steps=SCHEDULES)
@settings(max_examples=4, deadline=None,
          suppress_health_check=list(HealthCheck))
def test_logless_matches_plain_vs(steps):
    """The logless backend runs the same vs-mode GCS layer underneath;
    its committed state must match plain vs exactly as well."""
    assert apply_schedule("vs", steps) == apply_schedule("logless", steps)
