"""Property-based end-to-end tests: random workloads and fault schedules
must preserve every paper guarantee (1-copy-serializability, decision
agreement, convergence of up-to-date replicas)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.reconfig.strategies import ALL_STRATEGY_NAMES


def drive(seed, strategy, rate, fault_plan, mode="vs", n_sites=3, db_size=40):
    cluster = ClusterBuilder(n_sites=n_sites, db_size=db_size, seed=seed,
                             strategy=strategy, mode=mode).build()
    cluster.start()
    assert cluster.await_all_active(timeout=15)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=rate, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.4)
    for action in fault_plan:
        victim = f"S{n_sites}"
        if action == "crash":
            if cluster.nodes[victim].alive:
                cluster.crash(victim)
        elif action == "recover":
            if not cluster.nodes[victim].alive:
                cluster.recover(victim)
        elif action == "partition":
            cluster.partition([[f"S{i+1}" for i in range(n_sites - 1)], [victim]])
        elif action == "heal":
            cluster.heal()
        cluster.run_for(0.5)
    cluster.heal()
    if not cluster.nodes[f"S{n_sites}"].alive:
        cluster.recover(f"S{n_sites}")
    cluster.await_all_active(timeout=40)
    load.stop()
    cluster.settle(1.0)
    cluster.check()
    return cluster, load


fault_plans = st.lists(
    st.sampled_from(["crash", "recover", "partition", "heal"]), min_size=0, max_size=4
)


class TestEndToEnd:
    @given(seed=st.integers(0, 10_000), rate=st.sampled_from([40.0, 120.0]))
    @settings(max_examples=8, deadline=None, suppress_health_check=list(HealthCheck))
    def test_faultfree_histories_serializable(self, seed, rate):
        cluster, load = drive(seed, "rectable", rate, [])
        assert not load.unresolved()

    @given(
        seed=st.integers(0, 10_000),
        strategy=st.sampled_from(sorted(ALL_STRATEGY_NAMES)),
        plan=fault_plans,
    )
    @settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
    def test_random_fault_schedules_keep_guarantees(self, seed, strategy, plan):
        drive(seed, strategy, 80.0, plan)

    @given(seed=st.integers(0, 10_000), plan=fault_plans)
    @settings(max_examples=6, deadline=None, suppress_health_check=list(HealthCheck))
    def test_evs_mode_random_faults(self, seed, plan):
        drive(seed, "rectable", 80.0, plan, mode="evs", n_sites=5)
