"""Property-based end-to-end tests under message loss: the hardest
environment — random loss rates, random fault schedules — must still
never violate a safety guarantee (liveness is allowed to suffer)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.checkers import (
    check_decision_agreement,
    check_gid_consistency,
    check_one_copy_serializability,
)


@given(
    seed=st.integers(0, 100_000),
    loss=st.sampled_from([0.02, 0.05, 0.10]),
    fault=st.sampled_from(["none", "crash", "partition"]),
)
@settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
def test_safety_under_loss(seed, loss, fault):
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=seed, strategy="rectable",
                             loss_rate=loss).build()
    cluster.start()
    if not cluster.await_all_active(timeout=20):
        return  # liveness may suffer under loss; safety is what we check
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)
    if fault == "crash":
        cluster.crash("S3")
        cluster.run_for(0.5)
        cluster.recover("S3")
    elif fault == "partition":
        cluster.partition([["S1", "S2"], ["S3"]])
        cluster.run_for(0.8)
        cluster.heal()
    cluster.run_for(1.0)
    load.stop()
    cluster.settle(2.0)
    # Safety only: decisions, gid binding and serializability must hold
    # regardless of whether every site managed to rejoin in time.
    check_gid_consistency(cluster.history)
    check_decision_agreement(cluster.history)
    check_one_copy_serializability(cluster.history)
