"""Hot-path batching must be invisible at the protocol level.

The batching introduced for performance (sequencer OrderedBatch
coalescing, same-tick network delivery batching, bulk write application)
claims to be *behavior-preserving*: with the default deterministic
network (FixedLatency, zero loss — neither consumes the simulation RNG
per wire message), a run with batching enabled and one with it disabled
must produce

* the same per-site sequence of (virtual time, gid, kind) termination
  events — commit order and abort set included;
* the same final replica state (full content digest) at every site;
* a history and replica set that pass the full invariant suite.

Only the *per-site* event sequences are compared: sites are independent
processes, so the interleaving of events of different sites at the same
virtual instant is not ordered by the protocol, and batching may permute
it (commutatively).  Anything observable by any single site must match
exactly.

With a stochastic network (per-message latency jitter or loss) the two
modes legitimately diverge — batching changes the number of wire
messages and hence the RNG draw sequence — so this property is pinned
to the deterministic-network configuration.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig


def run_once(batching, seed, rate, writes, plan, mode, n_sites=3, db_size=40):
    cluster = ClusterBuilder(n_sites=n_sites, db_size=db_size, seed=seed,
                             mode=mode, batching=batching).build()
    cluster.start()
    assert cluster.await_all_active(timeout=15)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=rate,
                                                 reads_per_txn=1,
                                                 writes_per_txn=writes))
    load.start()
    cluster.run_for(0.4)
    victim = f"S{n_sites}"
    for action in plan:
        if action == "crash":
            if cluster.nodes[victim].alive:
                cluster.crash(victim)
        elif action == "recover":
            if not cluster.nodes[victim].alive:
                cluster.recover(victim)
        elif action == "partition":
            cluster.partition([[f"S{i + 1}" for i in range(n_sites - 1)], [victim]])
        elif action == "heal":
            cluster.heal()
        cluster.run_for(0.4)
    cluster.heal()
    if not cluster.nodes[victim].alive:
        cluster.recover(victim)
    assert cluster.await_all_active(timeout=40)
    load.stop()
    cluster.settle(1.0)
    cluster.check()
    per_site = {
        site: [(round(e.time, 9), e.gid, e.kind) for e in events]
        for site, events in cluster.history.by_site.items()
    }
    finals = {site: node.db.store.content_digest()
              for site, node in cluster.nodes.items()}
    aborts = {e.gid for e in cluster.history.events if e.kind == "abort"}
    return per_site, finals, aborts


def assert_equivalent(seed, rate, writes, plan, mode):
    batched = run_once(True, seed, rate, writes, plan, mode)
    plain = run_once(False, seed, rate, writes, plan, mode)
    for name, got, want in zip(("per-site histories", "final states", "abort set"),
                               batched, plain):
        assert got == want, f"batching changed {name}"


fault_plans = st.lists(
    st.sampled_from(["crash", "recover", "partition", "heal"]),
    min_size=0, max_size=3,
)


class TestBatchingEquivalence:
    @given(seed=st.integers(0, 10_000), rate=st.sampled_from([60.0, 200.0]),
           writes=st.integers(1, 3))
    @settings(max_examples=6, deadline=None, suppress_health_check=list(HealthCheck))
    def test_faultfree_workloads(self, seed, rate, writes):
        assert_equivalent(seed, rate, writes, [], "vs")

    @given(seed=st.integers(0, 10_000), plan=fault_plans)
    @settings(max_examples=6, deadline=None, suppress_health_check=list(HealthCheck))
    def test_view_change_schedules(self, seed, plan):
        assert_equivalent(seed, 80.0, 2, plan, "vs")

    @given(seed=st.integers(0, 10_000), plan=fault_plans)
    @settings(max_examples=4, deadline=None, suppress_health_check=list(HealthCheck))
    def test_evs_mode(self, seed, plan):
        assert_equivalent(seed, 80.0, 2, plan, "evs")

    def test_pinned_throughput_scenario(self):
        """The exact scenario the benchmark's headline number comes from."""
        assert_equivalent(11, 200.0, 2, [], "vs")
