"""Property-based tests for store, RecTable, cover and recovery."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db.database import Database
from repro.db.recovery import compute_cover, run_single_site_recovery
from repro.db.rectable import RecTable
from repro.db.store import INITIAL_VERSION, ObjectStore
from repro.db.wal import PersistentStorage

OBJECTS = [f"o{i}" for i in range(6)]


class TestStoreProperties:
    @given(st.lists(st.tuples(st.sampled_from(OBJECTS), st.integers(), st.integers(0, 100)),
                    max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_apply_keeps_max_version(self, triples):
        store = ObjectStore()
        model = {}
        store.apply(triples)
        for obj, value, version in triples:
            if obj not in model or version >= model[obj][1]:
                model[obj] = (value, version)
        for obj, (value, version) in model.items():
            assert store.version(obj) == version

    @given(st.dictionaries(st.sampled_from(OBJECTS), st.integers(), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_snapshot_roundtrip(self, initial):
        store = ObjectStore(initial)
        clone = ObjectStore()
        clone.load_snapshot(store.snapshot())
        assert clone.content_digest() == store.content_digest()


class TestRecTableProperties:
    @given(st.lists(st.tuples(st.sampled_from(OBJECTS), st.integers(0, 50)), max_size=50),
           st.integers(-1, 50))
    @settings(max_examples=100, deadline=None)
    def test_changed_since_matches_model(self, registrations, cover):
        table = RecTable()
        model = {}
        for obj, gid in registrations:
            table.register(obj, gid)
            model[obj] = max(model.get(obj, -1), gid)
        table.ensure_current()
        expected = {obj: gid for obj, gid in model.items() if gid > cover}
        assert table.changed_since(cover) == expected

    @given(st.lists(st.tuples(st.sampled_from(OBJECTS), st.integers(0, 50)), max_size=50),
           st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_purge_never_removes_needed_records(self, registrations, min_cover):
        table = RecTable()
        for obj, gid in registrations:
            table.register(obj, gid)
        table.ensure_current()
        table.purge(min_cover)
        # Everything still present is above the purge boundary; everything
        # above the boundary is still present.
        model = {}
        for obj, gid in registrations:
            model[obj] = max(model.get(obj, -1), gid)
        for obj, gid in model.items():
            if gid > min_cover:
                assert table.last_writer(obj) == gid
            else:
                assert obj not in table


class TestCoverProperties:
    @given(st.lists(st.integers(0, 30), unique=True, max_size=20), st.data())
    @settings(max_examples=100, deadline=None)
    def test_cover_below_all_unterminated(self, delivered, data):
        delivered = sorted(delivered)
        terminated = set(data.draw(st.lists(st.sampled_from(delivered), unique=True)
                                   if delivered else st.just([])))
        cover = compute_cover(-1, delivered, terminated)
        for gid in delivered:
            if gid not in terminated:
                assert cover < gid
        # And the cover is never above the last delivered gid.
        assert cover <= max(delivered, default=-1)


class TestRecoveryProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(OBJECTS),
                st.integers(0, 999),
                st.booleans(),  # commit?
            ),
            max_size=25,
        ),
        st.integers(0, 25),
    )
    @settings(max_examples=100, deadline=None)
    def test_recovery_equals_committed_replay(self, txns, checkpoint_after):
        """Crash-recovery from (checkpoint, log) always reproduces exactly
        the committed prefix state, regardless of when the fuzzy
        checkpoint was taken."""
        storage = PersistentStorage()
        db = Database(storage)
        db.bootstrap({obj: 0 for obj in OBJECTS})
        model = ObjectStore({obj: 0 for obj in OBJECTS})
        for gid, (obj, value, commit) in enumerate(txns):
            db.log_begin(gid)
            db.apply_write(gid, obj, value)
            if commit:
                db.commit(gid)
                model.write(obj, value, gid)
            else:
                db.abort(gid)
            if gid == checkpoint_after:
                db.checkpoint()
        recovered, _ = Database.recover_from(storage)
        assert recovered.store.content_digest() == model.content_digest()

    @given(st.lists(st.tuples(st.sampled_from(OBJECTS), st.integers(0, 999)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_recovered_rectable_matches_committed_writers(self, writes):
        storage = PersistentStorage()
        db = Database(storage)
        db.bootstrap({obj: 0 for obj in OBJECTS})
        model = {}
        for gid, (obj, value) in enumerate(writes):
            db.log_begin(gid)
            db.apply_write(gid, obj, value)
            db.commit(gid)
            model[obj] = gid
        recovered, _ = Database.recover_from(storage)
        assert recovered.rectable.changed_since(-1) == model
