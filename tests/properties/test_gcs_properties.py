"""Property-based tests for the group communication guarantees."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.gcs.config import GCSConfig
from tests.conftest import make_group


def run_group_schedule(n, seed, sends, crash_at, recover_at, lossy=False):
    """Drive a group with interleaved multicasts and one crash/recovery."""
    from repro.net.latency import FixedLatency
    from repro.net.network import Network
    from repro.sim.core import Simulator
    from repro.gcs.member import GroupMember
    from tests.conftest import RecordingApp

    sim = Simulator(seed=seed)
    network = Network(sim, latency=FixedLatency(0.001),
                      loss_rate=0.05 if lossy else 0.0)
    universe = tuple(f"S{i + 1}" for i in range(n))
    apps = {node: RecordingApp(node, universe_size=n) for node in universe}
    members = {
        node: GroupMember(sim, network, node, universe, GCSConfig(), apps[node])
        for node in universe
    }
    for member in members.values():
        member.start()
    sim.run(until=2.0)
    victim = universe[-1]
    for i, (sender_index, at) in enumerate(sends):
        sender = universe[sender_index % n]
        sim.schedule_at(2.0 + at, lambda s=sender, i=i: (
            members[s].multicast(f"m{i}") if members[s].alive else None
        ))
    if crash_at is not None:
        sim.schedule_at(2.0 + crash_at, members[victim].crash)
        if recover_at is not None:
            sim.schedule_at(2.0 + crash_at + recover_at, members[victim].start)
    sim.run(until=12.0)
    return members, apps


sends_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.floats(0.0, 1.5, allow_nan=False)),
    min_size=0, max_size=12,
)


class TestGroupGuarantees:
    @given(seed=st.integers(0, 100_000), sends=sends_strategy)
    @settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
    def test_total_order_no_faults(self, seed, sends):
        members, apps = run_group_schedule(3, seed, sends, None, None)
        sequences = [tuple(app.payloads()) for app in apps.values()]
        assert len(set(sequences)) == 1

    @given(
        seed=st.integers(0, 100_000),
        sends=sends_strategy,
        crash_at=st.floats(0.1, 1.2, allow_nan=False),
        recover=st.booleans(),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
    def test_prefix_consistency_with_crash(self, seed, sends, crash_at, recover):
        """Gseqs delivered *in primary views* are bound to unique payloads
        across all members (minority views may diverge — the replica
        control layer ignores them, section 2.3), and survivors agree
        exactly on their full delivery sequences."""
        members, apps = run_group_schedule(
            3, seed, sends, crash_at, 1.0 if recover else None
        )
        by_gseq = {}
        for app in apps.values():
            for gseq, _, payload in app.primary_messages:
                if gseq in by_gseq:
                    assert by_gseq[gseq] == payload, f"gseq {gseq} payload mismatch"
                else:
                    by_gseq[gseq] = payload
        survivors = [app for node, app in apps.items() if node != "S3"]
        assert tuple(survivors[0].payloads()) == tuple(survivors[1].payloads())

    @given(seed=st.integers(0, 100_000), sends=sends_strategy)
    @settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
    def test_total_order_under_message_loss(self, seed, sends):
        """Retransmission machinery: loss may delay but not reorder.

        Loss can also stall the initial merge past the first sends (or
        tear the view), so a multicast may land while components are
        still disjoint.  Deliveries in non-primary components are
        reconciled by the replica layer (section 2.3) and exempt here,
        as in the crash test above; within primary views the gseq ->
        payload binding must be unique across members and every member
        must deliver in gseq order without duplicates.
        """
        members, apps = run_group_schedule(3, seed, sends, None, None, lossy=True)
        by_gseq = {}
        for app in apps.values():
            gseqs = [gseq for gseq, _, _ in app.primary_messages]
            assert gseqs == sorted(gseqs), "delivery reordered"
            assert len(set(gseqs)) == len(gseqs), "duplicate delivery"
            for gseq, _, payload in app.primary_messages:
                assert by_gseq.setdefault(gseq, payload) == payload

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
    def test_views_converge_after_churn(self, seed):
        members, apps = run_group_schedule(5, seed, [], 0.2, 1.0)
        views = {m.view for m in members.values() if m.alive}
        assert len(views) == 1
