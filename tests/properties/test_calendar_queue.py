"""Property test: the calendar queue is a drop-in for the old heapq.

The simulation kernel replaced its single global ``heapq`` with a
calendar/bucket queue (integer virtual-time ticks, a preallocated ring,
an overflow heap for far-future events).  Correctness contract, from the
old kernel: events fire in ``(time, seq)`` lexicographic order — i.e.
strictly by virtual time, FIFO among events sharing an exact timestamp —
cancelled events are skipped, and nested scheduling (events scheduling
more events, including zero-delay ones) composes identically.

Hypothesis drives the real :class:`repro.sim.core.Simulator` and a
minimal heapq re-implementation of the old kernel through the same
randomized schedule program and requires identical firing order and
identical clocks.  Delay generation deliberately covers the queue's
regimes: zero delays, sub-tick delays, exact tick multiples (bucket
boundaries), same-timestamp bursts, and delays beyond the ~4 s ring
horizon (the overflow spill/migrate path).
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim.core import Simulator

#: One calendar tick (mirrors the kernel's ``1 / _INV_TICK``).
TICK = 1.0 / 1024.0
#: Ring horizon is 4096 ticks = 4 s; anything beyond goes to overflow.
BEYOND_HORIZON = 4096 * TICK


class HeapOracle:
    """The pre-calendar-queue kernel, reduced to its ordering semantics."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, fn):
        entry = [self.now + delay, self._seq, fn, False]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def run(self):
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[3]:  # cancelled
                continue
            self.now = entry[0]
            entry[2]()


delays = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=4 * TICK, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=0, max_value=6000).map(lambda k: k * TICK),
    st.sampled_from([0.5, 1.0, 2.5, BEYOND_HORIZON, BEYOND_HORIZON + 1.0,
                     9.75]),
    st.floats(min_value=0.0, max_value=12.0, allow_nan=False,
              allow_infinity=False),
)

nodes = st.lists(
    st.tuples(
        delays,
        # Parent slot: scheduled by an earlier node when it fires, or up
        # front (None).  Modulo-mapped onto the actual index range below.
        st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
        # Optional node whose pending event this node cancels on firing.
        st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    ),
    min_size=1,
    max_size=40,
)


def run_program(sim, program):
    """Execute a schedule program on ``sim`` (Simulator or HeapOracle);
    returns the firing order of node indices."""
    fired = []
    handles = {}

    def make_callback(index):
        delay, _parent, cancels = program[index]

        def fire():
            fired.append(index)
            if cancels is not None:
                target = handles.get(cancels % len(program))
                if target is not None:
                    if isinstance(target, list):  # oracle entry
                        target[3] = True
                    else:
                        target.cancel()
            for child in child_map.get(index, ()):
                child_delay = program[child][0]
                handles[child] = sim.schedule(child_delay,
                                              make_callback(child))

        return fire

    child_map = {}
    roots = []
    for index, (_delay, parent, _cancels) in enumerate(program):
        if parent is None or index == 0:
            roots.append(index)
        else:
            child_map.setdefault(parent % index, []).append(index)
    for index in roots:
        handles[index] = sim.schedule(program[index][0], make_callback(index))
    sim.run()
    return fired


@settings(max_examples=200, deadline=None)
@given(program=nodes)
def test_pop_order_matches_heapq_oracle(program):
    sim = Simulator(seed=0)
    oracle = HeapOracle()
    assert run_program(sim, program) == run_program(oracle, program)
    assert sim.now == oracle.now


@settings(max_examples=100, deadline=None)
@given(
    burst=st.lists(st.integers(min_value=0, max_value=9), min_size=2,
                   max_size=64),
    base=delays,
)
def test_same_timestamp_bursts_fire_fifo(burst, base):
    """Events at one exact timestamp fire in insertion order, even when
    interleaved with other timestamps — the stable-FIFO half of the
    drop-in contract, isolated from the rest."""
    sim = Simulator(seed=0)
    fired = []
    times = sorted(set(burst))
    for order, slot in enumerate(burst):
        sim.schedule(base + slot * 0.125, lambda o=order: fired.append(o))
    sim.run()
    expected = [order for time in times
                for order, slot in enumerate(burst) if slot == time]
    assert fired == expected


@settings(max_examples=100, deadline=None)
@given(delay=delays, extra=delays)
def test_cancellation_skips_without_disturbing_order(delay, extra):
    sim = Simulator(seed=0)
    oracle = HeapOracle()
    results = []
    for engine in (sim, oracle):
        fired = []
        engine.schedule(delay, lambda: fired.append("keep"))
        doomed = engine.schedule(delay, lambda: fired.append("doomed"))
        engine.schedule(extra, lambda: fired.append("extra"))
        if isinstance(doomed, list):
            doomed[3] = True
        else:
            doomed.cancel()
        engine.run()
        results.append(fired)
    assert results[0] == results[1]
    assert "doomed" not in results[0]
