"""Property-based tests of the EVS structural invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.gcs.config import GCSConfig
from repro.gcs.evs import EnrichedGroupMember
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.core import Simulator


class NullApp:
    def on_eview_change(self, eview, reason, states, gseq=None):
        pass

    def on_message(self, sender, payload, gseq):
        pass

    def flush_state(self):
        return {}


def run_evs_schedule(seed, actions):
    """Drive an EVS group through merges / partitions / crashes."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(0.001))
    universe = tuple(f"S{i + 1}" for i in range(4))
    members = {
        node: EnrichedGroupMember(sim, net, node, universe, GCSConfig(), NullApp())
        for node in universe
    }
    for member in members.values():
        member.start()
    sim.run(until=2.0)
    for action in actions:
        lead = members["S1"]
        if action == "svs_merge" and lead.alive and lead.eview is not None:
            ids = tuple(lead.eview.subview_sets().keys())
            if len(ids) >= 2:
                lead.subview_set_merge(ids[:2])
        elif action == "sv_merge" and lead.alive and lead.eview is not None:
            ids = tuple(lead.eview.subviews().keys())
            if len(ids) >= 2:
                lead.subview_merge(ids[:2])
        elif action == "part":
            net.set_partitions([{"S1", "S2", "S3"}, {"S4"}])
        elif action == "heal":
            net.heal()
        elif action == "crash":
            if members["S4"].alive:
                members["S4"].crash()
        elif action == "recover":
            if not members["S4"].alive:
                members["S4"].start()
        sim.run(until=sim.now + 1.0)
    net.heal()
    if not members["S4"].alive:
        members["S4"].start()
    sim.run(until=sim.now + 3.0)
    return members


actions_strategy = st.lists(
    st.sampled_from(["svs_merge", "sv_merge", "part", "heal", "crash", "recover"]),
    min_size=0, max_size=6,
)


def assert_structure_invariants(eview) -> None:
    members = set(eview.members)
    # Subviews partition the view's membership.
    subview_union = set()
    for nodes in eview.subviews().values():
        assert not (subview_union & nodes), "overlapping subviews"
        subview_union |= nodes
    assert subview_union == members
    # Subview-sets partition the membership too.
    svs_union = set()
    for nodes in eview.subview_sets().values():
        assert not (svs_union & nodes), "overlapping subview-sets"
        svs_union |= nodes
    assert svs_union == members
    # Every subview lies inside exactly one subview-set.
    for sv_nodes in eview.subviews().values():
        owners = {eview.subview_set_id_of(n) for n in sv_nodes}
        assert len(owners) == 1
    # At most one primary subview.
    primaries = [
        nodes for nodes in eview.subviews().values() if 2 * len(nodes) > 4
    ]
    assert len(primaries) <= 1


class TestEvsInvariants:
    @given(seed=st.integers(0, 100_000), actions=actions_strategy)
    @settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
    def test_structure_always_partitions_the_view(self, seed, actions):
        members = run_evs_schedule(seed, actions)
        for member in members.values():
            if member.alive and member.eview is not None:
                assert_structure_invariants(member.eview)

    @given(seed=st.integers(0, 100_000), actions=actions_strategy)
    @settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
    def test_members_of_same_view_agree_on_structure(self, seed, actions):
        members = run_evs_schedule(seed, actions)
        by_view = {}
        for member in members.values():
            if member.alive and member.eview is not None:
                by_view.setdefault(member.view.view_id, []).append(member.eview)
        for eviews in by_view.values():
            first = eviews[0]
            for other in eviews[1:]:
                assert other == first
