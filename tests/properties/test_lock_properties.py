"""Property-based tests for the lock manager."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db.locks import DB_RESOURCE, LockManager, LockMode, _conflicting

RESOURCES = ["a", "b", "c", DB_RESOURCE]
TXNS = ["T1", "T2", "T3", "T4"]

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("request"),
            st.sampled_from(TXNS),
            st.sampled_from(RESOURCES),
            st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
        ),
        st.tuples(st.just("release"), st.sampled_from(TXNS)),
        st.tuples(st.just("cancel"), st.sampled_from(TXNS)),
    ),
    min_size=1,
    max_size=40,
)


def overlap(a: str, b: str) -> bool:
    return a == b or DB_RESOURCE in (a, b)


def assert_invariants(lm: LockManager) -> None:
    # 1. No two conflicting holders on overlapping resources.
    holders = [
        (resource, txn, mode)
        for resource, holder_map in lm._holders.items()
        for txn, mode in holder_map.items()
    ]
    for i, (r1, t1, m1) in enumerate(holders):
        for r2, t2, m2 in holders[i + 1:]:
            if t1 != t2 and overlap(r1, r2):
                assert not _conflicting(m1, m2), f"conflicting grant: {t1}/{r1} vs {t2}/{r2}"
    # 2. Every waiting request is genuinely blocked.
    for request in lm.waiting_requests():
        assert lm.waiting_for(request), f"{request} waits but nothing blocks it"


@given(operations)
@settings(max_examples=200, deadline=None)
def test_never_conflicting_holders(ops):
    lm = LockManager()
    for op in ops:
        if op[0] == "request":
            _, txn, resource, mode = op
            lm.request(txn, resource, mode)
        elif op[0] == "release":
            lm.release(op[1])
        else:
            lm.cancel(op[1])
        assert_invariants(lm)


@given(operations)
@settings(max_examples=100, deadline=None)
def test_release_all_drains_everything(ops):
    lm = LockManager()
    for op in ops:
        if op[0] == "request":
            _, txn, resource, mode = op
            lm.request(txn, resource, mode)
        elif op[0] == "release":
            lm.release(op[1])
        else:
            lm.cancel(op[1])
    for txn in TXNS:
        lm.cancel(txn)
    assert not lm._holders
    assert not lm.waiting_requests()


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_fifo_writers_granted_in_order(n):
    """n exclusive requests on one object are granted in request order."""
    lm = LockManager()
    grant_order = []
    for i in range(n):
        lm.request(f"T{i}", "x", LockMode.EXCLUSIVE,
                   lambda req: grant_order.append(req.txn_id))
    for i in range(n):
        lm.release(f"T{i}")
    assert grant_order == [f"T{i}" for i in range(n)]
