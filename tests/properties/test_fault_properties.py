"""Property-based tests for the fault-injection layer.

Two levels: algebraic properties of the injectors themselves (cheap,
many examples) and end-to-end safety of small clusters under randomly
composed injectors (expensive, few examples)."""

import random

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.checkers import (
    check_convergence,
    check_decision_agreement,
    check_gid_consistency,
    check_one_copy_serializability,
)
from repro.db.wal import BeginRecord, CommitRecord, PersistentStorage, WriteRecord
from repro.faults.injectors import (
    DuplicateInjector,
    LatencySpikeInjector,
    OneWayLinkInjector,
    ReorderInjector,
)
from repro.faults.storage import TornTailFaults


# ----------------------------------------------------------------------
# Injector algebra
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 10_000),
    rate=st.floats(0.0, 1.0),
    delays=st.lists(st.floats(0.0001, 0.1), min_size=1, max_size=5),
)
@settings(deadline=None)
def test_reorder_preserves_count_and_bounds(seed, rate, delays):
    injector = ReorderInjector(rate=max(rate, 1e-9), max_extra=0.05)
    out = injector.transform("S1", "S2", None, list(delays), random.Random(seed), 0.0)
    assert len(out) == len(delays)
    for before, after in zip(delays, out):
        assert before <= after <= before + 0.05


@given(
    seed=st.integers(0, 10_000),
    copies=st.integers(1, 3),
    delays=st.lists(st.floats(0.0001, 0.1), min_size=1, max_size=4),
)
@settings(deadline=None)
def test_duplicate_only_adds_never_removes(seed, copies, delays):
    injector = DuplicateInjector(rate=0.5, copies=copies, spread=0.01)
    out = injector.transform("S1", "S2", None, list(delays), random.Random(seed), 0.0)
    assert len(delays) <= len(out) <= len(delays) * (1 + copies)
    # The original schedule survives as a prefix.
    assert out[: len(delays)] == delays


@given(seed=st.integers(0, 10_000), loss=st.floats(0.0, 1.0))
@settings(deadline=None)
def test_one_way_never_touches_other_links(seed, loss):
    injector = OneWayLinkInjector("S1", "S2", loss_rate=loss)
    rng = random.Random(seed)
    for src, dst in [("S2", "S1"), ("S1", "S3"), ("S3", "S2"), ("S2:xfer", "S1:xfer")]:
        assert injector.transform(src, dst, None, [0.001], rng, 0.0) == [0.001]


@given(seed=st.integers(0, 10_000), now=st.floats(0.0, 10.0))
@settings(deadline=None)
def test_latency_spike_never_drops_or_reorders_schedule(seed, now):
    injector = LatencySpikeInjector(rate=1.0, spike=0.2, burst_duration=0.5)
    delays = [0.001, 0.002, 0.003]
    out = injector.transform("S1", "S2", None, list(delays), random.Random(seed), now)
    assert len(out) == len(delays)
    assert sorted(out) == out


# ----------------------------------------------------------------------
# Torn-tail / checksum properties
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 10_000),
    n_flushed=st.integers(0, 5),
    n_dirty=st.integers(0, 5),
)
@settings(deadline=None)
def test_torn_tail_never_damages_durable_prefix(seed, n_flushed, n_dirty):
    storage = PersistentStorage()
    for gid in range(n_flushed):
        storage.append(BeginRecord(gid))
        storage.append(WriteRecord(gid, f"x{gid}", None, -1, gid))
        storage.append(CommitRecord(gid))
    storage.flush()
    durable = len(storage)
    for gid in range(100, 100 + n_dirty):
        storage.append(BeginRecord(gid))
    model = TornTailFaults(tear_probability=1.0, corrupt_probability=0.5)
    model.on_crash(storage, random.Random(seed))
    clean, corrupt_at = storage.verified_records()
    assert len(clean) >= durable
    assert [r for r in clean[:durable]] == list(storage.records())[:durable]
    if corrupt_at is not None:
        assert corrupt_at >= durable


# ----------------------------------------------------------------------
# End-to-end: random injector compositions never break safety
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 100_000),
    dup_rate=st.sampled_from([0.0, 0.1, 0.3]),
    reorder_rate=st.sampled_from([0.0, 0.2, 0.5]),
    one_way=st.booleans(),
)
@settings(max_examples=8, deadline=None, suppress_health_check=list(HealthCheck))
def test_safety_under_composed_injectors(seed, dup_rate, reorder_rate, one_way):
    cluster = ClusterBuilder(n_sites=3, db_size=40, seed=seed,
                             strategy="rectable").build()
    if dup_rate:
        cluster.network.add_injector(DuplicateInjector(rate=dup_rate, spread=0.01))
    if reorder_rate:
        cluster.network.add_injector(ReorderInjector(rate=reorder_rate, max_extra=0.02))
    cluster.start()
    if not cluster.await_all_active(timeout=20):
        return  # liveness may suffer; safety is what we check
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60, reads_per_txn=1,
                                                 writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)
    removable = None
    if one_way:
        removable = cluster.network.add_injector(
            OneWayLinkInjector("S1", "S3", loss_rate=0.7))
    cluster.run_for(0.8)
    if removable is not None:
        cluster.network.remove_injector(removable)
    cluster.run_for(0.7)
    load.stop()
    cluster.settle(2.0)
    check_gid_consistency(cluster.history)
    check_decision_agreement(cluster.history)
    check_one_copy_serializability(cluster.history)
