"""Property tests for the search genome: serialize -> deserialize ->
replay must be the identity, all the way down to the run digest.

Two tiers, as in the other property modules: cheap structural
round-trips over many generated genomes, and a couple of full replays
(each one is a whole simulated cluster run) asserting the digest-level
claim the corpus and the minimal-repro bundles rely on."""

import json
import random

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.search.engine import evaluate_genome
from repro.search.genome import (
    ScheduleGenome,
    SearchSpace,
    mutate,
    random_genome,
)


def genomes(draw_seed: int, steps: int) -> ScheduleGenome:
    """One deterministic genome: generate, then walk some mutations —
    covers the generator AND every mutation operator's output shape."""
    rng = random.Random(draw_seed)
    space = SearchSpace(n_sites=5)
    genome = random_genome(rng, space)
    for _ in range(steps):
        genome = mutate(rng, genome, space)
    return genome


# ----------------------------------------------------------------------
# Structural round-trip (cheap, many examples)
# ----------------------------------------------------------------------
@given(draw_seed=st.integers(0, 100_000), steps=st.integers(0, 12))
@settings(deadline=None, max_examples=150)
def test_json_round_trip_is_identity(draw_seed, steps):
    genome = genomes(draw_seed, steps)
    again = ScheduleGenome.loads(genome.dumps())
    assert again == genome
    assert again.digest() == genome.digest()
    # Canonical form: dumps is stable under a re-dump of its parse.
    assert json.loads(genome.dumps()) == again.to_dict()


@given(draw_seed=st.integers(0, 100_000), steps=st.integers(0, 12))
@settings(deadline=None, max_examples=150)
def test_round_trip_preserves_derived_metrics(draw_seed, steps):
    genome = genomes(draw_seed, steps)
    again = ScheduleGenome.from_dict(genome.to_dict())
    assert again.schedule_size() == genome.schedule_size()
    assert again.total_duration() == genome.total_duration()
    assert again.policy == genome.policy


# ----------------------------------------------------------------------
# Replay round-trip (expensive, few examples)
# ----------------------------------------------------------------------
@given(draw_seed=st.integers(0, 1_000))
@settings(deadline=None, max_examples=3,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_deserialized_genome_replays_to_identical_run_digest(draw_seed):
    genome = genomes(draw_seed, 2)
    direct = evaluate_genome(genome)
    replayed = evaluate_genome(ScheduleGenome.loads(genome.dumps()))
    assert replayed["run_digest"] == direct["run_digest"]
    assert replayed["signatures"] == direct["signatures"]
    assert replayed["coverage"] == direct["coverage"]
    assert replayed["windows"] == direct["windows"]
