#!/usr/bin/env python3
"""Per-partition lazy transfer with peer fail-over (section 4.7).

"We suggest that in the first round data are transferred per data
partition (e.g., per relation).  In case of failures during this round,
the new peer site does not need to restart but simply continue the
transfer for those partitions that the joiner has not yet received."

The example partitions a 300-object database into 6 relations, starts a
lazy recovery, kills the peer mid-round-1, and shows the replacement
peer skipping the partitions the joiner already holds.

Run:  python examples/partitioned_lazy_transfer.py
"""

from repro import ClusterBuilder, LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus


def main() -> None:
    node_config = NodeConfig(partition_count=6, transfer_obj_time=0.002,
                             transfer_batch_size=20)
    cluster = ClusterBuilder(n_sites=5, db_size=300, seed=5, strategy="lazy",
                             node_config=node_config).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=60,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)

    print("t=%.2f  S5 crashes, stays down, recovers" % cluster.sim.now)
    cluster.crash("S5")
    cluster.run_for(0.5)
    cluster.recover("S5")

    def transfer_running():
        return any(node.alive and node.reconfig.sessions_out.get("S5")
                   for node in cluster.nodes.values())

    assert cluster.await_condition(transfer_running, timeout=10)
    peer = next(site for site, node in cluster.nodes.items()
                if node.alive and node.reconfig.sessions_out.get("S5"))
    print(f"t={cluster.sim.now:.2f}  peer {peer} starts the lazy transfer "
          "(round 1 goes partition by partition)")

    joiner_manager = cluster.nodes["S5"].reconfig
    assert cluster.await_condition(
        lambda: len(joiner_manager._done_partitions) >= 2, timeout=20
    )
    done = sorted(joiner_manager._done_partitions)
    received = joiner_manager.objects_received_total
    print(f"t={cluster.sim.now:.2f}  partitions complete at the joiner: {done} "
          f"({received} objects) — killing the peer NOW")
    cluster.crash(peer)

    ok = cluster.await_condition(
        lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=60
    )
    load.stop()
    cluster.settle(0.5)
    cluster.check()

    total = joiner_manager.objects_received_total
    print(f"t={cluster.sim.now:.2f}  S5 active again: {'yes' if ok else 'NO'}")
    print(f"   objects before fail-over: {received}")
    print(f"   objects after fail-over:  {total - received} "
          f"(a full restart would have re-sent all 300)")
    print("   the replacement peer skipped the partitions the joiner "
          "already reported complete")


if __name__ == "__main__":
    main()
