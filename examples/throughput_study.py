#!/usr/bin/env python3
"""Throughput during online recovery: the strategy interference study.

Runs the same crash-and-recover schedule under four transfer strategies
and plots (ASCII) the cluster's commit throughput over time.  The
recovery window is marked; the "dip" each strategy causes is the
measurement that distinguishes them (the paper's section 4 argument).

Run:  python examples/throughput_study.py
"""

from repro import ClusterBuilder, LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus
from repro.workload.metrics import ThroughputTimeline

STRATEGIES = ("gcs_level", "full", "rectable", "log_filter")
BUCKET = 0.2


def run_one(strategy: str):
    cluster = ClusterBuilder(
        n_sites=3, db_size=600, seed=42, strategy=strategy,
        node_config=NodeConfig(transfer_obj_time=0.002, transfer_batch_size=30),
    ).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=150,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(1.0)
    cluster.crash("S3")
    cluster.run_for(0.6)
    recover_at = cluster.sim.now
    cluster.recover("S3")
    assert cluster.await_condition(
        lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=120
    )
    recovered_at = cluster.sim.now
    cluster.run_for(1.0)
    load.stop()
    cluster.settle(0.5)
    cluster.check()
    series = ThroughputTimeline(cluster.history, bucket=BUCKET).series()
    return series, recover_at, recovered_at


def plot(strategy, series, recover_at, recovered_at) -> None:
    print(f"\n--- {strategy} (recovery window "
          f"{recover_at:.1f}s .. {recovered_at:.1f}s, "
          f"{recovered_at - recover_at:.2f}s) ---")
    peak = max(count for _, count in series) or 1
    for t, count in series:
        bar = "#" * int(40 * count / peak)
        marker = " <‒ recovering" if recover_at <= t < recovered_at else ""
        print(f"  {t:5.1f}s |{bar:<40s}| {count:3d}{marker}")


def main() -> None:
    print("150 txn/s, 600-object database, S3 down for 0.6s then recovered online")
    dips = {}
    for strategy in STRATEGIES:
        series, recover_at, recovered_at = run_one(strategy)
        plot(strategy, series, recover_at, recovered_at)
        window = [c for t, c in series if recover_at <= t < recovered_at]
        dips[strategy] = min(window) if window else 0
    print("\nworst bucket during recovery (higher = less interference):")
    for strategy, dip in sorted(dips.items(), key=lambda kv: kv[1]):
        print(f"  {strategy:12s} {dip:4d} commits / {BUCKET}s")


if __name__ == "__main__":
    main()
