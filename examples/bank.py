#!/usr/bin/env python3
"""A replicated bank: money conservation across failures.

A domain application on top of the replicated database: accounts are
objects, a transfer reads two balances and writes both.  The version
check makes concurrent conflicting transfers abort (the client retries),
so the global invariant — the total amount of money never changes — must
hold at every replica, through crashes, recoveries and partitions.

Run:  python examples/bank.py
"""

from repro import ClusterBuilder, NodeConfig
from repro.replication.node import SiteStatus

ACCOUNTS = 20
INITIAL_BALANCE = 100


def total_balance(node) -> int:
    return sum(node.db.store.value(f"obj{i}") for i in range(ACCOUNTS))


def transfer(cluster, site: str, src: int, dst: int, amount: int, retries: int = 3):
    """Read-both / write-both money transfer with client-side retry."""
    for _ in range(retries + 1):
        node = cluster.nodes[site]
        if node.status is not SiteStatus.ACTIVE:
            site = cluster.active_sites()[0]
            node = cluster.nodes[site]
        a, b = f"obj{src}", f"obj{dst}"
        balance_a = node.db.store.value(a)
        balance_b = node.db.store.value(b)
        if balance_a < amount:
            return None  # insufficient funds: not submitted
        txn = node.submit(reads=[a, b],
                          writes={a: balance_a - amount, b: balance_b + amount})
        cluster.settle(0.05)
        if txn.committed:
            return txn
        # aborted by the version check (a concurrent transfer won): retry
    return txn


def main() -> None:
    cluster = ClusterBuilder(
        n_sites=3, db_size=ACCOUNTS, seed=12, strategy="rectable",
        initial_value=INITIAL_BALANCE,
    ).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    expected_total = ACCOUNTS * INITIAL_BALANCE
    print(f"bank open: {ACCOUNTS} accounts x {INITIAL_BALANCE} = {expected_total} total")

    rng = cluster.sim.rng
    committed = aborted = 0
    for round_no in range(4):
        for _ in range(40):
            src, dst = rng.randrange(ACCOUNTS), rng.randrange(ACCOUNTS)
            if src == dst:
                continue
            site = cluster.active_sites()[rng.randrange(len(cluster.active_sites()))]
            txn = transfer(cluster, site, src, dst, rng.randrange(1, 30))
            if txn is None:
                continue
            committed += txn.committed
            aborted += txn.aborted
        if round_no == 1:
            print(f"t={cluster.sim.now:6.2f}  crashing S3 mid-business...")
            cluster.crash("S3")
        if round_no == 2:
            print(f"t={cluster.sim.now:6.2f}  S3 recovers online (transfers keep flowing)")
            cluster.recover("S3")
            cluster.await_all_active(timeout=30)
    cluster.settle(1.0)

    print(f"\n{committed} transfers committed, {aborted} lost their version check")
    for site in cluster.universe:
        node = cluster.nodes[site]
        total = total_balance(node)
        status = "OK" if total == expected_total else "VIOLATION"
        print(f"  {site}: total balance = {total}  [{status}]")
        assert total == expected_total
    cluster.check()
    print("money conserved at every replica; history 1-copy-serializable")


if __name__ == "__main__":
    main()
