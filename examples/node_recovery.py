#!/usr/bin/env python3
"""Online node recovery: compare the five data transfer strategies.

A site crashes under load, stays down while the rest of the cluster
keeps committing, then recovers.  The example runs the same schedule
once per strategy (sections 4.3-4.7 of the paper) and prints how much
data each one shipped, how long recovery took, and how much the ongoing
workload was delayed at the peer.

Run:  python examples/node_recovery.py
"""

from repro import ClusterBuilder, LoadGenerator, NodeConfig, WorkloadConfig
from repro.replication.node import SiteStatus

STRATEGIES = ("full", "version_check", "rectable", "log_filter", "lazy")


def run_one(strategy: str):
    cluster = ClusterBuilder(
        n_sites=3, db_size=400, seed=11, strategy=strategy,
        node_config=NodeConfig(transfer_obj_time=0.001),
    ).build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=150,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)

    cluster.crash("S3")
    cluster.run_for(1.0)  # down-time: ~25-30% of the database gets updated
    cluster.recover("S3")
    recover_at = cluster.sim.now
    assert cluster.await_condition(
        lambda: cluster.nodes["S3"].status is SiteStatus.ACTIVE, timeout=40
    ), f"{strategy}: rejoin timed out"
    recovery_time = cluster.sim.now - recover_at

    load.stop()
    cluster.settle(0.5)
    cluster.check()  # replicas identical, history serializable

    objects_sent = sum(n.reconfig.objects_sent_total for n in cluster.nodes.values())
    lock_wait = sum(sum(n.db.locks.wait_times) for n in cluster.nodes.values())
    return {
        "strategy": strategy,
        "recovery_time": recovery_time,
        "objects_sent": objects_sent,
        "enqueued": cluster.nodes["S3"].enqueue_high_watermark,
        "replayed": cluster.nodes["S3"].reconfig.replayed_transactions,
        "lock_wait": lock_wait,
        "commits": len(load.committed()),
    }


def main() -> None:
    header = (f"{'strategy':14s} {'recovery(s)':>11s} {'objects sent':>12s} "
              f"{'enqueued':>8s} {'replayed':>8s} {'lock wait(s)':>12s} {'commits':>7s}")
    print("one crash + 1.0s downtime + recovery under 150 txn/s, db = 400 objects\n")
    print(header)
    print("-" * len(header))
    for strategy in STRATEGIES:
        result = run_one(strategy)
        print(f"{result['strategy']:14s} {result['recovery_time']:>11.2f} "
              f"{result['objects_sent']:>12d} {result['enqueued']:>8d} "
              f"{result['replayed']:>8d} {result['lock_wait']:>12.3f} "
              f"{result['commits']:>7d}")
    print("\nfull ships the whole database; the filtered strategies ship only the")
    print("changed part; lazy additionally keeps the joiner's enqueue/replay work")
    print("near zero; log_filter avoids transfer locks entirely (multiversion).")


if __name__ == "__main__":
    main()
