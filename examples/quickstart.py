#!/usr/bin/env python3
"""Quickstart: a three-site replicated database processing transactions.

Builds a cluster, runs the bootstrap, submits a few transactions through
different sites, and shows that every replica converges to the same
state with 1-copy-serializability verified by the built-in checkers.

Run:  python examples/quickstart.py
"""

from repro import ClusterBuilder


def main() -> None:
    # Three sites, a 100-object database, the RecTable transfer strategy.
    cluster = ClusterBuilder(n_sites=3, db_size=100, seed=7, strategy="rectable").build()
    cluster.start()
    assert cluster.await_all_active(timeout=10), "bootstrap failed"
    print(f"bootstrap complete at t={cluster.sim.now:.2f}s; "
          f"active sites: {cluster.active_sites()}")

    # A read-modify-write submitted at S1.
    txn1 = cluster.submit_via("S1", reads=["obj0"], writes={"obj0": "hello"})
    cluster.settle(0.2)
    print(f"txn1 {txn1.state.value}: gid={txn1.gid}, latency={txn1.latency * 1000:.1f}ms")

    # A write at S2 that conflicts with a concurrent read-modify-write at S3:
    # one of the two gets serialized second and aborts on the version check.
    txn2 = cluster.submit_via("S2", reads=["obj1"], writes={"obj1": "from-S2"})
    txn3 = cluster.submit_via("S3", reads=["obj1"], writes={"obj1": "from-S3"})
    cluster.settle(0.3)
    print(f"conflicting pair: txn2={txn2.state.value}, txn3={txn3.state.value} "
          f"(abort reason: {(txn2.abort_reason or txn3.abort_reason).value})")

    # All replicas hold identical state.
    digests = {site: cluster.nodes[site].db.store.content_digest()
               for site in cluster.universe}
    assert len(set(digests.values())) == 1
    value = cluster.nodes["S3"].db.store.value("obj0")
    print(f"obj0 at every site: {value!r}; replicas identical: True")

    # The full checker battery: gid consistency, decision agreement,
    # 1-copy-serializability, convergence, durability.
    cluster.check()
    print("all correctness checks passed")


if __name__ == "__main__":
    main()
