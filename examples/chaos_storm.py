#!/usr/bin/env python3
"""A chaos storm, narrated: run one seeded storm in each mode and print
the fault timeline the engine improvised, what it did to the WAL, and
the verdict of the invariant suite.

The storm composes every fault model in `repro.faults`: armed crashes
(fired the moment the victim's WAL tail holds unflushed records),
recoveries, partitions and merges, loss bursts, one-way link
degradations, plus always-on message duplication and reordering.  Same
seed, same storm — the chaos decisions draw from their own RNG stream,
independent of how many draws the protocols make.

Run:  python examples/chaos_storm.py [seed]
"""

import sys

from repro.faults import ChaosConfig, ChaosEngine

GLYPHS = {
    "crash_armed": "…",
    "crash": "✗",
    "recover": "✓",
    "partition": "║",
    "heal": "═",
    "loss_burst": "~",
    "loss_burst_end": "-",
    "one_way": "→",
    "one_way_end": "↛",
    "quiesce": "▮",
}


def run_one(seed: int, mode: str) -> bool:
    config = ChaosConfig(seed=seed, intensity=0.7, mode=mode, duration=3.0)
    report = ChaosEngine(config).run()

    print(f"\n=== {mode.upper()} storm, seed {seed} ===")
    print("  time   event")
    for time, action, detail in report.events:
        glyph = GLYPHS.get(action, "?")
        print(f"  {time:6.3f} {glyph} {action:<14} {detail}")
    if report.wal_tears:
        print(f"  WAL: {report.wal_tears} torn tail(s), "
              f"{report.wal_corruptions} with a corrupt record — "
              "detected by CRC32 at recovery, truncated, rejoined via transfer")
    metrics = report.metrics
    print(f"  workload: {metrics.get('commits', 0)} commits, "
          f"{metrics.get('aborts', 0)} aborts, "
          f"{metrics.get('view_changes', 0)} view changes")
    print(f"  network: {metrics.get('network_dropped', 0)} dropped, "
          f"{metrics.get('network_duplicated', 0)} duplicated; "
          f"transfers: {metrics.get('transfers_completed', 0)}/"
          f"{metrics.get('transfers_started', 0)} completed, "
          f"{metrics.get('transfer_stalls', 0)} stalls, "
          f"{metrics.get('transfer_failovers', 0)} fail-overs")
    print(f"  {report.summary()}")
    return report.ok


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    ok = all([run_one(seed, "vs"), run_one(seed, "evs")])
    print("\nall invariants held" if ok else "\nINVARIANT VIOLATION — see above")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
