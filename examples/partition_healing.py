#!/usr/bin/env python3
"""Partition and merge: the primary partition keeps working, the
minority behaves as if failed, and the merge brings it back online
without ever stopping transaction processing.

Run:  python examples/partition_healing.py
"""

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.workload.metrics import ThroughputTimeline


def main() -> None:
    cluster = ClusterBuilder(n_sites=5, db_size=150, seed=21, strategy="rectable").build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=120,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(1.0)

    print("t=%.2f  partitioning {S1,S2,S3} | {S4,S5}" % cluster.sim.now)
    cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
    cluster.run_for(1.5)
    for site in cluster.universe:
        node = cluster.nodes[site]
        print(f"   {site}: {node.status.value:9s} view={tuple(node.member.view.members)}")

    # The minority cannot accept transactions.
    try:
        cluster.nodes["S4"].submit([], {"obj0": 1})
        print("   unexpected: minority accepted a transaction!")
    except RuntimeError as exc:
        print(f"   S4 rejects submissions while stalled: {exc}")

    marker = cluster.submit_via("S1", [], {"obj0": "written-during-partition"})
    cluster.settle(0.3)
    print(f"   majority committed marker txn (gid={marker.gid}) during the partition")

    print("t=%.2f  healing the partition" % cluster.sim.now)
    cluster.heal()
    assert cluster.await_all_active(timeout=30)
    load.stop()
    cluster.settle(0.5)
    print(f"t={cluster.sim.now:.2f}  all five sites active again")
    print(f"   S4 now sees obj0 = {cluster.nodes['S4'].db.store.value('obj0')!r}")

    timeline = ThroughputTimeline(cluster.history, bucket=0.25)
    print("\nthroughput timeline (commits per 250ms bucket):")
    for start, count in timeline.series():
        bar = "#" * (count // 2)
        print(f"   {start:5.2f}s {count:4d} {bar}")

    cluster.check()
    print("\nall correctness checks passed "
          f"({len(load.committed())} commits, {len(load.aborted())} aborts)")


if __name__ == "__main__":
    main()
