#!/usr/bin/env python3
"""Cascading reconfiguration — Figure 1 (plain VS) vs Figure 2 (EVS).

Runs the paper's cascading schedule twice — a site fails and recovers,
its peer fails during the data transfer, then a partition isolates and
returns part of the system — once over plain virtual synchrony and once
over Enriched View Synchrony, and contrasts the coordination each mode
needs: explicit up-to-date announcements vs structural subview merges.

Run:  python examples/cascading_reconfiguration.py
"""

from repro.scenarios import run_figure1_scenario


def main() -> None:
    print("running the Figure 1 schedule under plain virtual synchrony...")
    vs = run_figure1_scenario(mode="vs", strategy="rectable", seed=17)
    print("running the same schedule under EVS (Figure 2)...")
    evs = run_figure1_scenario(mode="evs", strategy="rectable", seed=17)

    print(f"\n{'metric':38s} {'plain VS':>10s} {'EVS':>10s}")
    print("-" * 60)
    rows = [
        ("completed", vs.completed, evs.completed),
        ("virtual duration (s)", f"{vs.duration:.2f}", f"{evs.duration:.2f}"),
        ("commits", vs.commits, evs.commits),
        ("transfers started", vs.transfers_started, evs.transfers_started),
        ("transfers completed", vs.transfers_completed, evs.transfers_completed),
        ("up-to-date announcements", vs.announcements, evs.announcements),
        ("Subview-SetMerge events", vs.svs_merges, evs.svs_merges),
        ("SubviewMerge events", vs.sv_merges, evs.sv_merges),
        ("enqueued txns replayed", vs.replayed, evs.replayed),
    ]
    for label, vs_value, evs_value in rows:
        print(f"{label:38s} {str(vs_value):>10s} {str(evs_value):>10s}")

    print("""
Interpretation (section 5 of the paper):
 * plain VS cannot tell an up-to-date member from a recovering one, so
   joiners must multicast explicit announcements, and every member has
   to track who announced what across view changes (Figure 1's
   complications);
 * under EVS the same information is structural: a site is up to date
   iff it is in the primary subview.  Reconfiguration is encapsulated
   between the Subview-SetMerge (transfer starts) and the SubviewMerge
   (final synchronization point), and peer failures are handled by
   looking at the current e-view alone.""")


if __name__ == "__main__":
    main()
