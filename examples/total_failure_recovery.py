#!/usr/bin/env python3
"""Total failure and the creation protocol (section 3 of the paper).

All sites crash (staggered, so their logs diverge).  On restart no site
is up to date, so a primary view alone is not enough: the sites run the
creation protocol — every log is summarized and exchanged, the
maximum-cover site becomes the source, applies committed work found
only in other logs, and serves the rest as a regular transfer peer.

Run:  python examples/total_failure_recovery.py
"""

from repro import ClusterBuilder, LoadGenerator, WorkloadConfig
from repro.replication.node import SiteStatus


def main() -> None:
    cluster = ClusterBuilder(n_sites=3, db_size=80, seed=9,
                             strategy="version_check").build()
    cluster.start()
    assert cluster.await_all_active(timeout=10)
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=120,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(1.0)

    print("t=%.2f  S3 crashes; S1/S2 keep committing (their logs get ahead)"
          % cluster.sim.now)
    cluster.crash("S3")
    cluster.run_for(0.5)
    print("t=%.2f  total failure: S1 and S2 crash too" % cluster.sim.now)
    cluster.crash("S1")
    cluster.crash("S2")
    load.stop()
    cluster.run_for(0.3)

    print("t=%.2f  staggered restart: the STALE site (S3) comes up first"
          % cluster.sim.now)
    cluster.recover("S3")
    cluster.run_for(0.4)
    print(f"         S3 alone: status={cluster.nodes['S3'].status.value} "
          "(minority, cannot run creation)")
    cluster.recover("S1")
    cluster.run_for(0.4)
    statuses = {s: cluster.nodes[s].status.value for s in ("S1", "S3")}
    print(f"         S1+S3 = majority, but no up-to-date member: {statuses}")
    print("         (section 3: a majority is NOT enough — all logs are needed)")

    cluster.recover("S2")
    assert cluster.await_all_active(timeout=30)
    cluster.settle(0.5)
    print(f"t={cluster.sim.now:.2f}  creation protocol done, all sites active")

    covers = {s: cluster.nodes[s].db.cover_gid() for s in cluster.universe}
    print(f"         covers converged: {covers}")
    digests = {s: cluster.nodes[s].db.store.content_digest()
               for s in cluster.universe}
    print(f"         replicas identical: {len(set(digests.values())) == 1}")

    txn = cluster.submit_via("S3", [], {"obj0": "post-creation"})
    cluster.settle(0.3)
    print(f"         processing resumed: txn {txn.state.value} at gid {txn.gid}")
    cluster.check()
    print("all correctness checks passed")


if __name__ == "__main__":
    main()
