"""Cross-backend differential runner.

Replays *pinned* fault storms — the chaos engine's seeded storms or the
endurance engine's composed churn — once per reconfiguration backend,
then diffs the outcomes:

* **Invariant battery (hard gate).**  Every backend run must pass the
  full battery its engine applies: ``run_all_checks`` (gid consistency,
  processing order, decision agreement, 1-copy-serializability, view
  synchrony, convergence, atomicity/durability), ``check_exactly_once``
  (both engines run closed-loop client sessions by default), and — for
  endurance runs — ``check_availability_floor``.  Any failure, or any
  verdict disagreement between backends, fails the differential.
* **Commit histories and transfer economics (report).**  Commit/abort
  counts, replayed transactions, transfer bytes and view changes are
  tabulated side by side per seed.  These may legitimately differ:
  the chaos *decision stream* is backend-independent (it draws from its
  own RNG over chaos-owned state), but activation timing differs across
  backends, so the interleaving against the workload — and therefore
  the committed set — can shift.  Strict byte-equality of final states
  is asserted elsewhere, by the scripted-schedule Hypothesis suite
  (``tests/properties/test_backend_differential.py``), where the
  workload is constructed to be timing-insensitive.

Used by ``python -m repro diff`` and the differential-smoke CI job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.fleet import FleetTask, run_fleet

#: Metrics tabulated per backend in the report (keys of
#: ``Cluster.metrics_summary``).
_DIFF_METRICS = (
    "commits",
    "aborts",
    "transactions_replayed",
    "bytes_transferred",
    "view_changes",
    "announcements",
)


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    kind: str
    seeds: Tuple[int, ...]
    backends: Tuple[str, ...]
    #: ``rows[seed][backend]`` -> the engine's payload dict.
    rows: Dict[int, Dict[str, Dict[str, Any]]] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    #: Evidence bundle paths for the first failing cell (when the sweep
    #: ran with an ``artifacts_dir``): the cell is re-executed in
    #: process and dumped through the shared ``repro.artifacts`` path.
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def metric(self, seed: int, backend: str, name: str) -> Any:
        payload = self.rows.get(seed, {}).get(backend, {})
        return payload.get("metrics", {}).get(name)

    def render(self) -> str:
        lines = [
            f"differential [{self.kind}] backends={','.join(self.backends)} "
            f"seeds={','.join(str(s) for s in self.seeds)}"
        ]
        header = ["seed", "backend", "verdict"] + list(_DIFF_METRICS)
        widths = [max(len(h), 12) for h in header]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for seed in self.seeds:
            for backend in self.backends:
                payload = self.rows.get(seed, {}).get(backend, {})
                verdict = "PASS" if payload.get("ok") else "FAIL"
                cells = [str(seed), backend, verdict] + [
                    str(self.metric(seed, backend, name))
                    for name in _DIFF_METRICS
                ]
                lines.append(
                    "  ".join(c.ljust(w) for c, w in zip(cells, widths))
                )
        phase_table = self.render_phase_table()
        if phase_table:
            lines.append("")
            lines.append(phase_table)
        for failure in self.failures:
            lines.append(f"FAILURE: {failure}")
        if self.ok:
            lines.append(
                f"{len(self.seeds) * len(self.backends)} runs, all invariant "
                "batteries passed on every backend"
            )
        return "\n".join(lines)

    def epoch_summaries(self) -> Dict[str, Dict[str, Any]]:
        """Per-backend epoch summary, aggregated over all seeds."""
        from repro.obs.epochs import merge_epoch_summaries

        summaries: Dict[str, Dict[str, Any]] = {}
        for backend in self.backends:
            per_seed = [
                self.rows.get(seed, {}).get(backend, {}).get("epochs") or {}
                for seed in self.seeds
            ]
            summaries[backend] = merge_epoch_summaries(per_seed)
        return summaries

    def render_phase_table(self) -> str:
        """Downtime attribution per phase, side by side per backend."""
        from repro.obs.epochs import render_phase_comparison

        summaries = self.epoch_summaries()
        if not any(s.get("count") for s in summaries.values()):
            return ""
        return ("reconfiguration downtime by phase "
                f"(all {len(self.seeds)} seeds)\n"
                + render_phase_comparison(summaries))


def _chaos_params(seed: int, backend: str, overrides: Dict[str, Any]) -> Dict[str, Any]:
    params = {
        "seed": seed,
        "backend": backend,
        "intensity": 0.5,
        "n_sites": 4,
        "db_size": 40,
        "duration": 1.5,
        "arrival_rate": 60.0,
        "clients": 6,
    }
    params.update(overrides)
    return params


def _endurance_params(seed: int, backend: str, overrides: Dict[str, Any]) -> Dict[str, Any]:
    params = {"seed": seed, "backend": backend, "duration": 6.0}
    params.update(overrides)
    return params


def _dump_first_failure(report: DifferentialReport, kind: str,
                        overrides: Dict[str, Any],
                        artifacts_dir: str) -> List[str]:
    """Re-run the first failing cell in process and dump its evidence
    through the shared artifact bundle (worker payloads only carry
    digests, so the evidence must be regenerated — deterministically,
    by construction)."""
    import os

    from repro.artifacts import dump_run_artifacts

    failing = next(
        ((seed, backend) for seed in report.seeds
         for backend in report.backends
         if not report.rows.get(seed, {}).get(backend, {}).get("ok")),
        None,
    )
    if failing is None:
        return []
    seed, backend = failing
    make = _chaos_params if kind == "chaos" else _endurance_params
    params = make(seed, backend, dict(overrides))
    if kind == "chaos":
        from repro.faults.chaos import ChaosConfig, ChaosEngine

        engine = ChaosEngine(ChaosConfig(**params))
        flag = ""
    else:
        from repro.endurance import EnduranceConfig, EnduranceEngine

        engine = EnduranceEngine(EnduranceConfig(**params))
        flag = "--endurance "
    run_report = engine.run()
    out_dir = os.path.join(artifacts_dir, f"diff-{kind}-seed{seed}-{backend}")
    return dump_run_artifacts(
        out_dir,
        title=(f"differential {kind} seed={seed} backend={backend} "
               f"FAILED: {run_report.error}"),
        repro_command=(f"PYTHONPATH=src python -m repro chaos {flag}"
                       f"--seed {seed} --backend {backend}"),
        schedule=run_report.events,
        samples=getattr(run_report, "samples", None),
        tracer=run_report.tracer,
        metrics=run_report.metrics,
        cluster=engine.cluster,
    )


def run_differential(
    seeds: Sequence[int],
    backends: Sequence[str] = ("evs", "logless"),
    kind: str = "chaos",
    jobs: int = 1,
    artifacts_dir: "str | None" = None,
    **overrides: Any,
) -> DifferentialReport:
    """Run every seed on every backend and diff the invariant verdicts.

    ``kind`` is ``"chaos"`` or ``"endurance"``; ``overrides`` feed the
    corresponding config (duration, intensity, clients, ...).  With
    ``artifacts_dir``, a failing sweep re-runs its first failing cell
    and leaves the shared evidence bundle there.
    """
    if kind not in ("chaos", "endurance"):
        raise ValueError(f"kind must be 'chaos' or 'endurance', got {kind!r}")
    from repro.reconfig.backends import backend_by_name

    backends = tuple(backends)
    seeds = tuple(seeds)
    for backend in backends:
        backend_by_name(backend)  # raises on unknown names
    make = _chaos_params if kind == "chaos" else _endurance_params
    tasks = [
        FleetTask(
            key=f"{backend}:{seed}",
            kind=kind,
            params=make(seed, backend, dict(overrides)),
        )
        for seed in seeds
        for backend in backends
    ]
    results = run_fleet(tasks, jobs=jobs)

    report = DifferentialReport(kind=kind, seeds=seeds, backends=backends)
    for seed in seeds:
        row = report.rows.setdefault(seed, {})
        for backend in backends:
            payload = results[f"{backend}:{seed}"]
            row[backend] = payload
            if "fleet_error" in payload:
                report.failures.append(
                    f"seed {seed} [{backend}]: worker crashed: "
                    + payload["fleet_error"].strip().splitlines()[-1]
                )
            elif not payload.get("ok"):
                report.failures.append(
                    f"seed {seed} [{backend}]: invariant battery failed: "
                    f"{payload.get('error')}"
                )
        verdicts = {
            backend: bool(row[backend].get("ok")) for backend in backends
        }
        if len(set(verdicts.values())) > 1:
            report.failures.append(
                f"seed {seed}: backends disagree on the invariant verdict: "
                + ", ".join(f"{b}={'PASS' if v else 'FAIL'}"
                            for b, v in verdicts.items())
            )
    if not report.ok and artifacts_dir is not None:
        report.artifacts = _dump_first_failure(report, kind, dict(overrides),
                                               artifacts_dir)
    return report


__all__ = ["DifferentialReport", "run_differential"]
