"""Long-horizon reconfiguration-churn endurance runs.

Where :mod:`repro.faults.chaos` throws one short random storm at a
cluster and checks the wreckage once, the endurance engine holds a
cluster under *continuous* membership churn for a long virtual horizon
while a :class:`repro.client.ClientFleet` keeps serving traffic, and
audits it repeatedly along the way:

* **segments** — the storm is composed from the scenario families of
  :mod:`repro.faults.churn`: rolling restarts, repeated partition/merge
  cycles paced to interrupt state transfers, continuous join/leave
  churn, and self-stabilization starts (sites rebooted from
  corrupted-but-CRC-valid stable state);
* **quiescent sweeps** — at a fixed cadence the engine pauses the fault
  schedule, heals and recovers everything, drains the client fleet, and
  asserts the *full* invariant suite plus ``check_exactly_once`` — then
  resumes the churn.  A long run is therefore checked at every quiescent
  point, not only at the end;
* **availability timeline** — committed client requests are sampled per
  time bin for the whole run (trace events + an ``endurance.availability``
  gauge when observability is attached), and the final verdict includes
  :func:`repro.checkers.check_availability_floor`: the cluster must never
  stop serving for a whole window, churn or not.

Every storm decision draws from a dedicated ``random.Random`` keyed on
the endurance seed, so one seed is one exact schedule — pinned seeds
become regression tests and determinism-audit cases.  Exposed as
``python -m repro chaos --endurance``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checkers import (
    ConsistencyViolation,
    check_availability_floor,
    run_all_checks,
)
from repro.cluster import Cluster, ClusterBuilder
from repro.faults.churn import SEGMENTS
from repro.faults.injectors import DuplicateInjector, ReorderInjector
from repro.faults.storage import StableStateCorruptor, TornTailFaults
from repro.replication.node import NodeConfig, SiteStatus
from repro.tracing import Tracer, attach_tracer
from repro.workload.generator import WorkloadConfig


@dataclass
class EnduranceConfig:
    """Shape of one endurance run."""

    seed: int = 0
    n_sites: int = 4
    db_size: int = 40
    duration: float = 12.0
    mode: str = "vs"
    #: Reconfiguration backend (repro.reconfig.backends); None lets the
    #: legacy ``mode`` select it ("vs"/"evs").
    backend: Optional[str] = None
    strategy: str = "rectable"
    arrival_rate: float = 60.0
    #: Closed-loop client sessions; endurance is always client-driven
    #: (the availability metric *is* committed client requests).
    clients: int = 6
    #: Which scenario families the storm is composed from (see
    #: :data:`repro.faults.churn.SEGMENTS`).  A single-element tuple
    #: pins a run to one family — the regression tests use this.
    segments: Tuple[str, ...] = ("rolling", "storm", "churn", "stabilize")
    #: Virtual seconds between quiescent invariant sweeps.
    sweep_interval: float = 4.0
    #: Availability sampling bin width (virtual seconds).
    availability_bin: float = 0.25
    #: Longest tolerated span with zero committed client requests
    #: (outside maintenance windows) before the run fails.
    availability_window: float = 1.5
    #: Grace prefix while the cluster bootstraps and clients ramp up.
    availability_warmup: float = 1.0
    #: Retry jitter for the client sessions (see SessionConfig).
    backoff_jitter: float = 0.5
    quiesce_timeout: float = 60.0
    enable_torn_wal: bool = True
    batching: bool = True
    observe: bool = False
    #: Attach the deterministic event-loop profiler (repro.obs.profile).
    #: Observation-equivalent: schedules and digests are unchanged.
    profile: bool = False
    #: Sabotage hook: one site skips adopting the peer's outcome table at
    #: transfer completion (the ``--sabotage-outcome-merge`` CLI flag).
    #: A sabotaged run is EXPECTED to fail — it proves the quiescent
    #: sweeps actually catch a broken merge path.
    sabotage_outcome_merge: bool = False

    def validate(self) -> None:
        if self.n_sites < 3:
            raise ValueError("endurance needs at least 3 sites "
                             "(a majority must survive one site down)")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mode not in ("vs", "evs"):
            raise ValueError(f"mode must be 'vs' or 'evs', got {self.mode!r}")
        if self.backend is not None:
            from repro.reconfig.backends import backend_by_name

            backend_by_name(self.backend)  # raises on unknown names
        if self.clients < 1:
            raise ValueError("endurance is client-driven: clients must be >= 1")
        if not self.segments:
            raise ValueError("segments must not be empty")
        unknown = sorted(set(self.segments) - set(SEGMENTS))
        if unknown:
            raise ValueError(
                f"unknown segment(s) {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(SEGMENTS))}"
            )
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if self.availability_bin <= 0 or self.availability_window <= 0:
            raise ValueError("availability bin/window must be positive")
        if self.availability_window < self.availability_bin:
            raise ValueError("availability_window must be >= availability_bin")
        if self.quiesce_timeout <= 0:
            raise ValueError("quiesce_timeout must be positive")


@dataclass
class EnduranceReport:
    """Outcome of one endurance run."""

    seed: int
    ok: bool = False
    error: Optional[str] = None
    #: (virtual time, action, detail) for every schedule decision.
    events: List[Tuple[float, str, str]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Availability timeline: (bin end time, commits in bin, maintenance).
    samples: List[Tuple[float, int, bool]] = field(default_factory=list)
    bin_width: float = 0.25
    warmup: float = 1.0
    sweeps: int = 0
    rolling_restarts: int = 0
    partition_cycles: int = 0
    transfers_interrupted: int = 0
    churn_leaves: int = 0
    stabilize_starts: int = 0
    wal_tears: int = 0
    wal_corruptions: int = 0
    tracer: Optional[Tracer] = None
    obs: Optional[Any] = None
    #: Profiler handle when built with ``EnduranceConfig(profile=True)``.
    profiler: Optional[Any] = None
    #: Virtual end time of the run (epoch truncation boundary).
    virtual_time: float = 0.0

    # ------------------------------------------------------------------
    def epochs(self):
        """Reconfiguration epochs reconstructed from the trace."""
        from repro.obs.epochs import extract_epochs

        if self.tracer is None:
            return []
        return extract_epochs(self.tracer.events,
                              end_time=self.virtual_time or None)

    def availability(self) -> Dict[str, float]:
        """Aggregate availability stats over serving (non-maintenance,
        post-warmup) bins: min/mean commit rate and zero-commit bins."""
        serving = [(t, c) for t, c, m in self.samples
                   if not m and t > self.warmup]
        if not serving:
            return {"bins": 0.0, "zero_bins": 0.0,
                    "min_rate": 0.0, "mean_rate": 0.0}
        rates = [c / self.bin_width for _t, c in serving]
        return {
            "bins": float(len(serving)),
            "zero_bins": float(sum(1 for _t, c in serving if c == 0)),
            "min_rate": min(rates),
            "mean_rate": sum(rates) / len(rates),
        }

    def summary(self) -> str:
        verdict = "PASS" if self.ok else f"FAIL ({self.error})"
        avail = self.availability()
        return (
            f"endurance seed={self.seed}: {verdict} — "
            f"{self.sweeps} quiescent sweeps, "
            f"{self.rolling_restarts} restarts, "
            f"{self.partition_cycles} partition cycles "
            f"({self.transfers_interrupted} transfers cut), "
            f"{self.churn_leaves} churn leaves, "
            f"{self.stabilize_starts} stabilization starts; "
            f"availability mean {avail['mean_rate']:.1f}/s "
            f"min {avail['min_rate']:.1f}/s "
            f"({avail['zero_bins']:.0f}/{avail['bins']:.0f} zero bins)"
        )

    def payload(self) -> Dict[str, Any]:
        """Picklable plain-data view for fleet workers and audit digests
        (mirrors :meth:`repro.faults.chaos.ChaosReport.payload`)."""
        import hashlib

        schedule = "\n".join(
            f"{time:.6f} {action} {detail}" for time, action, detail in self.events
        )
        trace = ""
        if self.tracer is not None:
            trace = "\n".join(str(event) for event in self.tracer.events)
        timeline = "\n".join(
            f"{t:.6f} {c} {int(m)}" for t, c, m in self.samples
        )
        from repro.obs.epochs import epoch_summary

        return {
            "epochs": epoch_summary(self.epochs()),
            "seed": self.seed,
            "ok": self.ok,
            "error": self.error,
            "sweeps": self.sweeps,
            "rolling_restarts": self.rolling_restarts,
            "partition_cycles": self.partition_cycles,
            "transfers_interrupted": self.transfers_interrupted,
            "churn_leaves": self.churn_leaves,
            "stabilize_starts": self.stabilize_starts,
            "wal_tears": self.wal_tears,
            "wal_corruptions": self.wal_corruptions,
            "availability": self.availability(),
            "metrics": {key: value for key, value in self.metrics.items()},
            "schedule_digest": hashlib.sha256(schedule.encode()).hexdigest(),
            "trace_digest": hashlib.sha256(trace.encode()).hexdigest(),
            "availability_digest": hashlib.sha256(timeline.encode()).hexdigest(),
            "trace_events": len(self.tracer.events) if self.tracer else 0,
            "fault_events": len(self.events),
        }


class EnduranceEngine:
    """Runs one seeded long-horizon churn schedule against a cluster."""

    def __init__(self, config: Optional[EnduranceConfig] = None) -> None:
        self.config = config or EnduranceConfig()
        self.config.validate()
        # Schedule decisions use their own stream, separate from the
        # simulator RNG, so the storm shape depends only on the seed.
        self.rng = random.Random(f"endurance-{self.config.seed}")
        self.corruptor = StableStateCorruptor(self.config.seed)
        self.cluster: Optional[Cluster] = None
        self.fleet = None
        self.report = EnduranceReport(
            seed=self.config.seed,
            bin_width=self.config.availability_bin,
            warmup=self.config.availability_warmup,
        )
        self._storage_faults: Optional[TornTailFaults] = None
        self._maintenance = False
        self._last_committed = 0
        self._gauge = None
        self._min_gauge = None
        self._min_rate: Optional[float] = None

    # ------------------------------------------------------------------
    def run(self) -> EnduranceReport:
        if self._begin():
            self._drive()
            self._final_quiesce()
        return self._finish()

    def _begin(self) -> bool:
        """Build the cluster, attach the client fleet and the
        availability sampler.  Returns False when bootstrap failed
        (``report.error`` is then set).  Shared verbatim with the
        schedule-search executor, which overrides only :meth:`_drive`
        and :meth:`_sabotage_victim`."""
        config = self.config
        cluster = self._build()
        from repro.client import ClientFleet, SessionConfig

        workload = WorkloadConfig(arrival_rate=config.arrival_rate,
                                  reads_per_txn=1, writes_per_txn=2)
        self.fleet = ClientFleet(
            cluster, config.clients, workload,
            session_config=SessionConfig(backoff_jitter=config.backoff_jitter),
        )
        if config.sabotage_outcome_merge:
            victim = self._sabotage_victim()
            cluster.nodes[victim].outcome_merge_disabled = True
            self.note("sabotage", f"outcome merge disabled at {victim}")
        if not cluster.await_all_active(timeout=15):
            self.report.error = "bootstrap failed"
            return False
        self.fleet.start()
        self._start_sampler()
        return True

    def _sabotage_victim(self) -> str:
        return self.rng.choice(list(self.cluster.universe))

    def _drive(self) -> None:
        """The storm itself: random segment composition for the given
        duration, with quiescent sweeps at a fixed cadence."""
        cluster, config = self.cluster, self.config
        end = cluster.sim.now + config.duration
        next_sweep = cluster.sim.now + config.sweep_interval
        while cluster.sim.now < end and self.report.error is None:
            name = self.rng.choice(config.segments)
            self.note("segment", name)
            detail = SEGMENTS[name](self)
            self.note("segment_done", f"{name}: {detail}")
            if self.report.error is not None:
                break
            if cluster.sim.now >= next_sweep:
                self._quiescent_sweep()
                next_sweep = cluster.sim.now + config.sweep_interval

    # ------------------------------------------------------------------
    def _build(self) -> Cluster:
        config = self.config
        cluster = ClusterBuilder(
            n_sites=config.n_sites,
            db_size=config.db_size,
            seed=config.seed,
            strategy=config.strategy,
            mode=config.mode,
            backend=config.backend,
            batching=config.batching,
            # A flapping straggler must not starve a suspended majority:
            # allow creation from any primary view (uniform delivery).
            node_config=NodeConfig(creation_majority=True),
        ).build()
        self.cluster = cluster
        if config.observe:
            self.report.obs = cluster.attach_observability()
            registry = self.report.obs.registry
            self._gauge = registry.gauge(
                "endurance.availability",
                "committed client requests per virtual second, last bin")
            self._min_gauge = registry.gauge(
                "endurance.availability_min",
                "lowest serving-bin commit rate seen so far")
        else:
            attach_tracer(cluster)
        self.report.tracer = cluster.tracer
        if config.profile:
            from repro.obs.profile import attach_profiler

            self.report.profiler = attach_profiler(cluster)
        # Always-on wire realism, mild enough for a long horizon.
        cluster.add_injector(DuplicateInjector(rate=0.05, spread=0.02))
        cluster.add_injector(ReorderInjector(rate=0.10, max_extra=0.02))
        if config.enable_torn_wal:
            self._storage_faults = TornTailFaults(tear_probability=0.8,
                                                  corrupt_probability=0.5)
            cluster.install_storage_faults(self._storage_faults)
        cluster.start()
        return cluster

    # ------------------------------------------------------------------
    # Helpers the segment composers call
    # ------------------------------------------------------------------
    def note(self, action: str, detail: str = "") -> None:
        now = self.cluster.sim.now
        self.report.events.append((now, action, detail))
        if self.cluster.tracer is not None:
            self.cluster.tracer.emit("--", "endurance", action, detail)

    def fail(self, message: str) -> None:
        """Record the first failure; later ones are noise after the fact."""
        if self.report.error is None:
            self.report.error = message
        self.note("fail", message)

    def normalize(self, timeout: Optional[float] = None) -> bool:
        """Heal, recover everyone, and wait until all sites are ACTIVE."""
        cluster = self.cluster
        cluster.heal()
        for site in cluster.universe:
            if not cluster.nodes[site].alive:
                cluster.recover(site)
        return cluster.await_all_active(
            timeout=timeout or self.config.quiesce_timeout)

    def await_site_active(self, site: str) -> bool:
        node = self.cluster.nodes[site]
        return self.cluster.await_condition(
            lambda: node.status is SiteStatus.ACTIVE,
            timeout=self.config.quiesce_timeout,
        )

    # ------------------------------------------------------------------
    # Availability sampling
    # ------------------------------------------------------------------
    def _start_sampler(self) -> None:
        cluster, config = self.cluster, self.config

        def sample() -> None:
            now = cluster.sim.now
            committed = len(self.fleet.committed())
            delta = committed - self._last_committed
            self._last_committed = committed
            maintenance = self._maintenance
            self.report.samples.append((now, delta, maintenance))
            rate = delta / config.availability_bin
            if cluster.tracer is not None:
                cluster.tracer.emit(
                    "--", "endurance", "availability_sample",
                    f"{rate:.0f}/s" + (" [maintenance]" if maintenance else ""),
                    data={"t": now, "commits": delta, "rate": rate,
                          "maintenance": maintenance},
                )
            if self._gauge is not None:
                self._gauge.set(rate)
                if not maintenance and now > config.availability_warmup:
                    if self._min_rate is None or rate < self._min_rate:
                        self._min_rate = rate
                        self._min_gauge.set(rate)
            cluster.sim.schedule(config.availability_bin, sample,
                                 label="endurance availability sample")

        cluster.sim.schedule(config.availability_bin, sample,
                             label="endurance availability sample")

    # ------------------------------------------------------------------
    # Quiescent sweeps and the final verdict
    # ------------------------------------------------------------------
    def _quiescent_sweep(self) -> None:
        cluster, config = self.cluster, self.config
        self._maintenance = True
        self.note("sweep", f"#{self.report.sweeps + 1}")
        if not self._settle_and_check("quiescent sweep"):
            return
        self.report.sweeps += 1
        self.note("sweep_ok", f"t={cluster.sim.now:.2f}")
        self.fleet.start()
        self._maintenance = False

    def _final_quiesce(self) -> None:
        if self.report.error is not None:
            return
        self._maintenance = True
        self.note("final_quiesce", "")
        if self._settle_and_check("final quiesce"):
            self.report.sweeps += 1

    def _settle_and_check(self, where: str) -> bool:
        """Pause faults, converge, drain clients, run the full invariant
        suite (including exactly-once).  Returns False on failure."""
        cluster, config = self.cluster, self.config
        if not self.normalize():
            stuck = [
                f"{s}={cluster.nodes[s].status.value}"
                for s in cluster.universe
                if cluster.nodes[s].status is not SiteStatus.ACTIVE
            ]
            self.fail(f"{where} quiesce timeout: {', '.join(stuck)}")
            return False
        self.fleet.stop()
        if not cluster.await_condition(self.fleet.drained,
                                       timeout=config.quiesce_timeout):
            self.fail(f"{where}: client drain timeout")
            return False
        cluster.settle(0.3)
        try:
            run_all_checks(cluster.history, list(cluster.nodes.values()),
                           sessions=self.fleet.sessions)
        except ConsistencyViolation as violation:
            self.fail(f"invariant violated at {where} "
                      f"(t={cluster.sim.now:.2f}): {violation}")
            return False
        return True

    def _finish(self) -> EnduranceReport:
        cluster, report, config = self.cluster, self.report, self.config
        if self._storage_faults is not None:
            report.wal_tears = self._storage_faults.tears
            report.wal_corruptions = self._storage_faults.corruptions
        report.metrics = cluster.metrics_summary()
        if self.fleet is not None:
            report.metrics["workload_commits"] = len(self.fleet.committed())
            report.metrics["workload_aborts"] = len(self.fleet.aborted())
            report.metrics.update(self.fleet.metrics())
            report.metrics["dedup.suppressed"] = sum(
                node.duplicates_suppressed for node in cluster.nodes.values()
            )
        report.metrics["events_processed"] = cluster.sim.events_processed
        report.virtual_time = cluster.sim.now
        if report.error is None:
            try:
                check_availability_floor(
                    report.samples,
                    window=config.availability_window,
                    bin_width=config.availability_bin,
                    warmup=config.availability_warmup,
                )
            except ConsistencyViolation as violation:
                report.error = str(violation)
        report.ok = report.error is None
        return report


def repro_command(config: EnduranceConfig) -> str:
    """The minimal CLI invocation that replays this exact run."""
    parts = ["PYTHONPATH=src python -m repro chaos --endurance",
             f"--seed {config.seed}", f"--mode {config.mode}"]
    if config.backend is not None:
        parts.append(f"--backend {config.backend}")
    if config.strategy != EnduranceConfig.strategy:
        parts.append(f"--strategy {config.strategy}")
    if config.segments != EnduranceConfig.segments:
        parts.append("--segments " + ",".join(config.segments))
    if config.duration != EnduranceConfig.duration:
        parts.append(f"--duration {config.duration:g}")
    if config.sabotage_outcome_merge:
        parts.append("--sabotage-outcome-merge")
    return " ".join(parts)


def dump_artifacts(engine: EnduranceEngine, out_dir: str) -> List[str]:
    """Write the failure evidence for one endurance run to ``out_dir``.

    Thin wrapper over the shared :func:`repro.artifacts.dump_run_artifacts`
    bundle (schedule, trace timeline, availability timeline, per-site
    WALs, metrics, repro command).  Returns the paths written.
    """
    from repro.artifacts import dump_run_artifacts

    report, config = engine.report, engine.config
    verdict = "PASS" if report.ok else f"FAIL: {report.error}"
    return dump_run_artifacts(
        out_dir,
        title=f"endurance seed={report.seed} — {verdict}",
        repro_command=repro_command(config),
        schedule=report.events,
        samples=report.samples,
        tracer=report.tracer,
        metrics=report.metrics,
        cluster=engine.cluster,
        obs=report.obs,
    )


def run_endurance(seed: int, **overrides: Any) -> EnduranceReport:
    """One-call entry point: run an endurance schedule, return its report."""
    config = EnduranceConfig(seed=seed, **overrides)
    return EnduranceEngine(config).run()
