"""Scripted end-to-end scenarios, shared by tests, examples and benchmarks.

The two figure scenarios reproduce the paper's running examples:

* :func:`run_figure1_scenario` — the cascading-reconfiguration sequence
  of Figure 1: a site fails and recovers, its peer fails *during* the
  data transfer, a replacement peer takes over, and a partition later
  isolates and returns part of the system.  Under plain virtual
  synchrony this exercises the explicit status sub-protocol; under EVS
  the same schedule is handled structurally (Figure 2, section 5.2).
* :func:`run_recovery_experiment` — the parameterised single-recovery
  experiment used by the strategy benchmarks: workload, crash, downtime,
  recovery, measurement of transfer cost and interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster import Cluster, ClusterBuilder, FaultSchedule
from repro.replication.node import NodeConfig, SiteStatus
from repro.workload.generator import LoadGenerator, WorkloadConfig
from repro.workload.metrics import ThroughputTimeline, summarize_latencies


@dataclass
class ScenarioReport:
    """What a scripted scenario measured."""

    mode: str
    strategy: str
    completed: bool
    duration: float
    commits: int
    aborts: int
    transfers_started: int
    transfers_completed: int
    announcements: int
    svs_merges: int = 0
    sv_merges: int = 0
    replayed: int = 0
    notes: List[str] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    #: The cluster the scenario ran on, for post-hoc verification and
    #: instrumentation (events processed, network counters).  Excluded
    #: from equality so reports still compare by their measurements.
    cluster: Optional[Cluster] = field(default=None, repr=False, compare=False)

    def coordination_events(self) -> int:
        """Reconfiguration coordination volume: announcements under VS,
        merge requests under EVS (the quantity Figures 1 vs 2 contrast)."""
        return self.announcements + self.svs_merges + self.sv_merges

    def payload(self) -> Dict[str, object]:
        """A picklable plain-data view of the report (everything except
        the live cluster), used by the :mod:`repro.fleet` workers to
        ship results across the process boundary."""
        return {
            "mode": self.mode,
            "strategy": self.strategy,
            "completed": self.completed,
            "duration": self.duration,
            "commits": self.commits,
            "aborts": self.aborts,
            "transfers_started": self.transfers_started,
            "transfers_completed": self.transfers_completed,
            "announcements": self.announcements,
            "svs_merges": self.svs_merges,
            "sv_merges": self.sv_merges,
            "replayed": self.replayed,
            "notes": list(self.notes),
            "extra": dict(self.extra),
        }


#: Observers called with every freshly collected ScenarioReport (which
#: carries its cluster).  The benchmark conftest registers one to
#: re-verify completion and consistency of every scenario a benchmark
#: runs, without each benchmark repeating the assertions.
ReportHook = Callable[[ScenarioReport], None]
_report_hooks: List[ReportHook] = []


def add_report_hook(hook: ReportHook) -> ReportHook:
    """Register an observer for every collected scenario report."""
    _report_hooks.append(hook)
    return hook


def remove_report_hook(hook: ReportHook) -> None:
    try:
        _report_hooks.remove(hook)
    except ValueError:
        pass


def _collect_report(cluster: Cluster, load: LoadGenerator, mode: str, strategy,
                    completed: bool) -> ScenarioReport:
    if not isinstance(strategy, str):
        strategy = strategy.name
    transfers_started = transfers_completed = announcements = 0
    svs = sv = replayed = 0
    for node in cluster.nodes.values():
        manager = node.reconfig
        transfers_started += manager.transfers_started
        transfers_completed += manager.transfers_completed
        announcements += manager.announcements_sent
        replayed += manager.replayed_transactions
        svs += getattr(manager, "svs_merges_issued", 0)
        sv += getattr(manager, "sv_merges_issued", 0)
    report = ScenarioReport(
        mode=mode,
        strategy=strategy,
        completed=completed,
        duration=cluster.sim.now,
        commits=len(load.committed()),
        aborts=len(load.aborted()),
        transfers_started=transfers_started,
        transfers_completed=transfers_completed,
        announcements=announcements,
        svs_merges=svs,
        sv_merges=sv,
        replayed=replayed,
        cluster=cluster,
    )
    for hook in list(_report_hooks):
        hook(report)
    return report


def run_figure1_scenario(
    mode: str = "vs",
    strategy: str = "rectable",
    seed: int = 17,
    db_size: int = 300,
    arrival_rate: float = 80.0,
    check: bool = True,
    batching: bool = True,
    backend: Optional[str] = None,
    profile: bool = False,
) -> ScenarioReport:
    """The cascading reconfiguration of Figure 1 (and, in EVS mode, the
    encapsulated equivalent of Figure 2) on five sites:

    1. all five sites process a steady workload;
    2. S5 crashes and later recovers; a peer starts the data transfer;
    3. the peer crashes before the transfer completes (cascade #1) and a
       replacement peer resumes/restarts it;
    4. a partition then isolates {S4, S5} (cascade #2) and heals;
    5. the system must return to five active, identical replicas.
    """
    node_config = NodeConfig(transfer_obj_time=0.002, transfer_batch_size=25)
    cluster = ClusterBuilder(
        n_sites=5, db_size=db_size, seed=seed, strategy=strategy, mode=mode,
        node_config=node_config, batching=batching, backend=backend,
    ).build()
    from repro.tracing import attach_tracer

    attach_tracer(cluster)
    if profile:
        from repro.obs.profile import attach_profiler

        attach_profiler(cluster)
    cluster.start()
    if not cluster.await_all_active(timeout=15):
        raise RuntimeError("bootstrap failed")
    load = LoadGenerator(cluster, WorkloadConfig(arrival_rate=arrival_rate,
                                                 reads_per_txn=1, writes_per_txn=2))
    load.start()
    cluster.run_for(0.5)

    # Step 2: S5 fails and recovers.
    cluster.crash("S5")
    cluster.run_for(0.5)
    cluster.recover("S5")

    def transfer_running() -> bool:
        return any(
            node.alive and node.reconfig.sessions_out.get("S5")
            for node in cluster.nodes.values()
        )

    if not cluster.await_condition(transfer_running, timeout=10):
        raise RuntimeError("transfer to S5 never started")
    peer = next(
        site for site, node in cluster.nodes.items()
        if node.alive and node.reconfig.sessions_out.get("S5")
    )

    # Step 3: the peer fails mid-transfer.
    cluster.run_for(0.1)
    cluster.crash(peer)
    ok_s5 = cluster.await_condition(
        lambda: cluster.nodes["S5"].status is SiteStatus.ACTIVE, timeout=30
    )
    cluster.recover(peer)
    cluster.await_all_active(timeout=30)

    # Step 4: partition isolating {S4, S5}, then heal.
    cluster.run_for(0.3)
    cluster.partition([["S1", "S2", "S3"], ["S4", "S5"]])
    cluster.run_for(1.0)
    cluster.heal()
    ok_all = cluster.await_all_active(timeout=30)

    load.stop()
    cluster.settle(1.0)
    completed = ok_s5 and ok_all
    if check:
        cluster.check()
    report = _collect_report(
        cluster, load, cluster.backend_name if backend is not None else mode,
        strategy, completed)
    report.notes.append(f"first peer was {peer}")
    return report


def run_recovery_experiment(
    strategy: str = "rectable",
    mode: str = "vs",
    n_sites: int = 3,
    db_size: int = 500,
    seed: int = 23,
    arrival_rate: float = 150.0,
    reads_per_txn: int = 1,
    writes_per_txn: int = 2,
    downtime: float = 1.0,
    node_config: Optional[NodeConfig] = None,
    rejoin_timeout: float = 60.0,
    check: bool = True,
    batching: bool = True,
    backend: Optional[str] = None,
    fault_storm: str = "none",
) -> ScenarioReport:
    """One site crashes, stays down for ``downtime``, recovers, rejoins.

    This is the parameterised experiment behind benchmarks E3-E7: the
    sweep dimensions (database size, throughput, read/write ratio,
    downtime -> update fraction, reconfiguration backend) are all
    arguments.  ``fault_storm="partition"`` adds a *pinned* storm on top
    of the crash: a bystander site is partitioned away while the victim
    is still down and healed mid-rejoin, at fixed virtual times — the
    same storm byte-for-byte regardless of backend, which is what makes
    the E7 head-to-head comparison fair.
    """
    if fault_storm not in ("none", "partition"):
        raise ValueError(f"unknown fault_storm {fault_storm!r}")
    if fault_storm == "partition" and n_sites < 5:
        raise ValueError("fault_storm='partition' needs n_sites >= 5 "
                         "(a majority must survive victim + bystander out)")
    node_config = node_config or NodeConfig(transfer_obj_time=0.0005)
    cluster = ClusterBuilder(
        n_sites=n_sites, db_size=db_size, seed=seed, strategy=strategy, mode=mode,
        node_config=node_config, batching=batching, backend=backend,
    ).build()
    # The bare tracer is observation-equivalent (no RNG draws, no
    # scheduling) and feeds the epoch phase decomposition the E7 sweep
    # and the bench payloads report.
    from repro.tracing import attach_tracer

    tracer = attach_tracer(cluster)
    cluster.start()
    if not cluster.await_all_active(timeout=15):
        raise RuntimeError("bootstrap failed")
    load = LoadGenerator(
        cluster,
        WorkloadConfig(
            arrival_rate=arrival_rate,
            reads_per_txn=reads_per_txn,
            writes_per_txn=writes_per_txn,
        ),
    )
    load.start()
    cluster.run_for(0.5)

    victim = f"S{n_sites}"
    cluster.crash(victim)
    if fault_storm == "partition":
        bystander = f"S{n_sites - 1}"
        majority = [s for s in cluster.universe
                    if s not in (bystander,)]
        now = cluster.sim.now
        cluster.apply_fault_schedule(
            FaultSchedule()
            .partition(now + downtime * 0.5, [majority, [bystander]])
            .heal(now + downtime + 0.3)
        )
    cluster.run_for(downtime)
    recover_at = cluster.sim.now
    cluster.recover(victim)
    rejoined = cluster.await_condition(
        lambda: cluster.nodes[victim].status is SiteStatus.ACTIVE, timeout=rejoin_timeout
    )
    recovery_time = cluster.sim.now - recover_at
    load.stop()
    cluster.settle(1.0)
    if check:
        cluster.check()

    # When a backend is selected explicitly, the report's mode column
    # names it (the legacy mode string would misreport logless as "vs").
    report = _collect_report(
        cluster, load, cluster.backend_name if backend is not None else mode,
        strategy, rejoined)
    node = cluster.nodes[victim]
    objects_sent = sum(n.reconfig.objects_sent_total for n in cluster.nodes.values())
    bytes_sent = sum(n.reconfig.bytes_sent_total for n in cluster.nodes.values())
    timeline = ThroughputTimeline(cluster.history, bucket=0.1)
    dip = timeline.min_bucket_between(recover_at, min(recover_at + recovery_time + 0.2,
                                                      cluster.sim.now))
    latency = summarize_latencies(load.latencies())
    report.extra.update(
        {
            "recovery_time": recovery_time,
            "objects_sent": float(objects_sent),
            "bytes_sent": float(bytes_sent),
            "enqueue_high_watermark": float(node.enqueue_high_watermark),
            "throughput_dip": float(dip),
            "mean_latency": latency.mean,
            "p95_latency": latency.p95,
            "lock_wait_total": sum(
                sum(other.db.locks.wait_times) for other in cluster.nodes.values()
            ),
            "abort_rate": (
                report.aborts / (report.commits + report.aborts)
                if report.commits + report.aborts else 0.0
            ),
        }
    )
    from repro.obs.epochs import extract_epochs

    epochs = extract_epochs(tracer.events, end_time=cluster.sim.now)
    victim_epochs = [e for e in epochs if e.site == victim]
    phase_totals = {name: 0.0 for name in
                    ("down", "membership", "transfer_wait", "transfer",
                     "replay", "drain")}
    for epoch in victim_epochs:
        for name, seconds in epoch.phase_durations().items():
            phase_totals[name] += seconds
    report.extra.update({
        "epoch_count": float(len(epochs)),
        "epoch_bytes_received": float(
            sum(e.bytes_received for e in victim_epochs)),
        "epoch_retransmissions": float(
            sum(e.retransmissions for e in victim_epochs)),
        **{f"phase_{name}": seconds
           for name, seconds in phase_totals.items()},
    })
    return report
