"""The versioned object store.

Section 2.2 of the paper: "objects are tagged with version numbers" and
the replica control protocol "assigns the version number gid(T) to the
object" on every write.  Because the gid is the position of the
transaction in the total order, **all sites have the same version number
for an object at a given logical time point** — which is precisely what
the version-check transfer strategy (section 4.4) exploits.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

#: Version assigned to objects of the initial database image (no writer yet).
INITIAL_VERSION = -1


class ObjectStore:
    """In-memory object store mapping object id -> (value, version)."""

    def __init__(self, initial: Optional[Dict[str, Any]] = None) -> None:
        self._data: Dict[str, Any] = {}
        self._version: Dict[str, int] = {}
        if initial:
            for obj, value in initial.items():
                self._data[obj] = value
                self._version[obj] = INITIAL_VERSION

    # ------------------------------------------------------------------
    def __contains__(self, obj: str) -> bool:
        return obj in self._data

    def __len__(self) -> int:
        return len(self._data)

    def objects(self) -> Iterator[str]:
        """Object identifiers in deterministic (sorted) order."""
        return iter(sorted(self._data))

    def read(self, obj: str) -> Tuple[Any, int]:
        """Return (value, version).  KeyError if the object is unknown."""
        return self._data[obj], self._version[obj]

    def value(self, obj: str) -> Any:
        return self._data[obj]

    def version(self, obj: str) -> int:
        return self._version[obj]

    def version_or(self, obj: str, default: int = INITIAL_VERSION) -> int:
        """The stored version, or ``default`` for unknown objects — one
        lookup instead of a containment probe plus a read."""
        return self._version.get(obj, default)

    def peek(self, obj: str) -> Tuple[Any, int]:
        """Like :meth:`read` but yields ``(None, INITIAL_VERSION)`` for
        unknown objects instead of raising."""
        version = self._version.get(obj)
        if version is None:
            return None, INITIAL_VERSION
        return self._data[obj], version

    def write(self, obj: str, value: Any, version: int) -> None:
        """Install ``value`` with writer version ``version`` (a gid)."""
        self._data[obj] = value
        self._version[obj] = version

    def remove(self, obj: str) -> None:
        self._data.pop(obj, None)
        self._version.pop(obj, None)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Tuple[Any, int]]:
        """A consistent copy {obj: (value, version)} of the whole store."""
        return {obj: (self._data[obj], self._version[obj]) for obj in self._data}

    def load_snapshot(self, snapshot: Dict[str, Tuple[Any, int]]) -> None:
        """Replace the entire content (used when installing transferred state)."""
        self._data = {obj: value for obj, (value, _) in snapshot.items()}
        self._version = {obj: version for obj, (_, version) in snapshot.items()}

    def apply(self, items: Iterable[Tuple[str, Any, int]]) -> None:
        """Apply (obj, value, version) triples, keeping the newest version.

        Used when incorporating transferred data: a version already more
        recent locally (e.g. installed by an enqueued transaction) wins.
        """
        for obj, value, version in items:
            if obj not in self._version or self._version[obj] <= version:
                self.write(obj, value, version)

    def content_digest(self) -> Tuple[Tuple[str, Any, int], ...]:
        """Canonical content tuple, for equality checks across replicas."""
        return tuple((obj, self._data[obj], self._version[obj]) for obj in sorted(self._data))
