"""Database engine substrate.

Everything the paper's reconfiguration protocols assume of the local
database system is implemented here:

* a versioned object store (:mod:`repro.db.store`) where every object is
  tagged with the global identifier of the last transaction that wrote
  it (section 2.2);
* a strict two-phase lock manager (:mod:`repro.db.locks`) with shared /
  exclusive modes, FIFO fairness and a coarse database-level lock
  (needed by the RecTable transfer strategy of section 4.5);
* a physical write-ahead log with before- and after-images
  (:mod:`repro.db.wal`) surviving crashes in
  :class:`repro.db.wal.PersistentStorage`;
* single-site recovery (:mod:`repro.db.recovery`): redo of committed
  work from the log, computation of the *cover transaction* (section 4.4);
* the reconstruction table **RecTable** (:mod:`repro.db.rectable`) with
  background registration and cover-based garbage collection
  (section 4.5);
* a per-site facade (:mod:`repro.db.database`) tying these together.
"""

from repro.db.database import Database
from repro.db.locks import DB_RESOURCE, LockManager, LockMode, LockRequest
from repro.db.rectable import RecTable
from repro.db.recovery import RecoveryResult, run_single_site_recovery
from repro.db.store import ObjectStore
from repro.db.wal import (
    AbortRecord,
    BaselineRecord,
    BeginRecord,
    CommitRecord,
    NoopRecord,
    PersistentStorage,
    WriteRecord,
)

__all__ = [
    "AbortRecord",
    "BaselineRecord",
    "BeginRecord",
    "CommitRecord",
    "Database",
    "DB_RESOURCE",
    "LockManager",
    "LockMode",
    "LockRequest",
    "NoopRecord",
    "ObjectStore",
    "PersistentStorage",
    "RecTable",
    "RecoveryResult",
    "WriteRecord",
    "run_single_site_recovery",
]
