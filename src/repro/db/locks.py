"""Strict two-phase lock manager with a coarse database-level lock.

Requirements taken directly from the paper:

* shared (read) and exclusive (write) locks on individual objects with
  FIFO queues — "write/read conflicts are handled by traditional
  2-phase-locking (the read waits until the write releases the lock)";
* a transfer transaction must be able to hold read locks that are
  ordered *after* the write locks of transactions delivered before the
  view change and *before* those delivered after it (section 4.3) — our
  global ticket order provides this, because lock requests are issued
  synchronously in delivery order;
* a single read lock **on the entire database** that conflicts with all
  object-level writers (section 4.5), later downgraded to fine-grained
  object locks.

Deadlock freedom: the replica control protocol acquires write locks in
total-order delivery position, aborts local-phase readers instead of
waiting for them, and readers only ever wait for writers; all waits-for
edges therefore point from later to earlier ticket numbers and no cycle
can form.  The manager still exposes :meth:`waiting_for` so tests can
assert this invariant.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

#: Resource name of the whole-database lock (section 4.5).
DB_RESOURCE = "__DATABASE__"


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _conflicting(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.EXCLUSIVE or b is LockMode.EXCLUSIVE


class LockRequest:
    """One lock request; fires ``on_grant`` exactly once when granted."""

    __slots__ = (
        "txn_id",
        "resource",
        "mode",
        "ticket",
        "granted",
        "cancelled",
        "on_grant",
        "enqueued_at",
        "granted_at",
    )

    def __init__(
        self,
        txn_id: str,
        resource: str,
        mode: LockMode,
        ticket: int,
        on_grant: Optional[Callable[["LockRequest"], None]],
        enqueued_at: float,
    ) -> None:
        self.txn_id = txn_id
        self.resource = resource
        self.mode = mode
        self.ticket = ticket
        self.granted = False
        self.cancelled = False
        self.on_grant = on_grant
        self.enqueued_at = enqueued_at
        self.granted_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "granted" if self.granted else ("cancelled" if self.cancelled else "waiting")
        return f"<Lock {self.txn_id}:{self.mode.value} {self.resource} #{self.ticket} {state}>"


class LockManager:
    """Two-level (database / object) strict lock manager."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        partition_fn: Optional[Callable[[str], str]] = None,
    ) -> None:
        self._clock = clock or (lambda: 0.0)
        self._partition_fn = partition_fn
        self._ticket = itertools.count()
        # resource -> {txn_id: mode} (a txn holds at most one mode per resource;
        # EXCLUSIVE subsumes SHARED on upgrade).
        self._holders: Dict[str, Dict[str, LockMode]] = {}
        # txn_id -> resources it holds; mirror of _holders so releasing
        # a whole transaction is O(locks held), not O(locks held by all).
        self._held_by: Dict[str, Set[str]] = {}
        self._waiting: List[LockRequest] = []
        self.wait_times: List[float] = []
        self.grants = 0
        #: Requests that could not be granted immediately (conflicts).
        self.conflicts = 0
        #: High-watermark of the wait-queue depth.
        self.max_waiting = 0
        #: Observability instruments (repro.obs.LockInstruments); None
        #: keeps the request/grant paths at one attribute check each.
        self.obs = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holders(self, resource: str) -> Dict[str, LockMode]:
        return dict(self._holders.get(resource, {}))

    def holder_items(self, resource: str) -> Tuple[Tuple[str, LockMode], ...]:
        """Snapshot of ``holders(resource).items()`` as a tuple.

        Safe to iterate while releasing locks, and free for the common
        case of an uncontended resource (no dict is allocated).
        """
        holders = self._holders.get(resource)
        if not holders:
            return ()
        return tuple(holders.items())

    def holds(self, txn_id: str, resource: str) -> bool:
        return txn_id in self._holders.get(resource, {})

    def ticket_of(self, request: "LockRequest") -> int:
        return request.ticket

    def waiting_requests(self) -> List[LockRequest]:
        return [r for r in self._waiting if not r.cancelled]

    def waiting_for(self, request: LockRequest) -> Set[str]:
        """Transaction ids this waiting request is blocked behind."""
        blockers: Set[str] = set()
        for resource, holders in self._overlapping_items(request.resource):
            for txn_id, mode in holders.items():
                if txn_id != request.txn_id and _conflicting(request.mode, mode):
                    blockers.add(txn_id)
        for other in self._waiting:
            if (
                not other.cancelled
                and other.ticket < request.ticket
                and other.txn_id != request.txn_id
                and self._resources_overlap(request.resource, other.resource)
                and _conflicting(request.mode, other.mode)
            ):
                blockers.add(other.txn_id)
        return blockers

    # ------------------------------------------------------------------
    # Requesting and releasing
    # ------------------------------------------------------------------
    def request(
        self,
        txn_id: str,
        resource: str,
        mode: LockMode,
        on_grant: Optional[Callable[[LockRequest], None]] = None,
        inherit_ticket: Optional[int] = None,
    ) -> LockRequest:
        """Request a lock; grants immediately when possible.

        The returned request's ``granted`` flag tells whether the caller
        can proceed; otherwise ``on_grant`` fires later (synchronously
        from the release that unblocks it).

        ``inherit_ticket`` lets a coarse lock be *downgraded* to finer
        locks without losing its queue position (section 4.5: "Request
        read locks on objects ... and release the lock on the database"
        — the object locks replace the database lock in the ordering).
        """
        request = LockRequest(
            txn_id,
            resource,
            mode,
            next(self._ticket) if inherit_ticket is None else inherit_ticket,
            on_grant,
            self._clock(),
        )
        if self._grantable(request):
            self._grant(request)
        else:
            self.conflicts += 1
            self._waiting.append(request)
            depth = len(self._waiting)
            if depth > self.max_waiting:
                self.max_waiting = depth
            if self.obs is not None:
                self.obs.queue_depth.observe(depth)
        return request

    def release(self, txn_id: str, resource: Optional[str] = None) -> None:
        """Release one resource (or, with ``resource=None``, everything)
        held by the transaction, then re-examine the wait queue."""
        held = self._held_by.get(txn_id)
        if resource is None:
            resources = list(held) if held else []
        else:
            resources = [resource] if held and resource in held else []
        for res in resources:
            held.discard(res)
            holders = self._holders[res]
            holders.pop(txn_id, None)
            if not holders:
                del self._holders[res]
        if held is not None and not held:
            del self._held_by[txn_id]
        if resources:
            self._pump()

    def cancel(self, txn_id: str) -> None:
        """Drop every waiting request of the transaction and release its
        holds (used when a local-phase reader is aborted)."""
        for req in self._waiting:
            if req.txn_id == txn_id:
                req.cancelled = True
        self._waiting = [r for r in self._waiting if not r.cancelled]
        self.release(txn_id)
        self._pump()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resources_overlap(self, a: str, b: str) -> bool:
        """The database-level lock covers every object; a partition-level
        lock (coarse granularity, section 4.3) covers its objects."""
        if a == b or a == DB_RESOURCE or b == DB_RESOURCE:
            return True
        if self._partition_fn is not None:
            from repro.db.partitions import PARTITION_PREFIX

            a_part = a.startswith(PARTITION_PREFIX)
            b_part = b.startswith(PARTITION_PREFIX)
            if a_part and not b_part:
                return self._partition_fn(b) == a
            if b_part and not a_part:
                return self._partition_fn(a) == b
        return False

    def _overlapping_items(self, resource: str):
        """The held (resource, holders) entries that can overlap
        ``resource``.  Without partition locks, an object lock overlaps
        only itself and the database-level lock, so the common case is
        two dict lookups instead of a scan over everything held."""
        if self._partition_fn is None and resource != DB_RESOURCE:
            items = []
            holders = self._holders.get(resource)
            if holders is not None:
                items.append((resource, holders))
            db_holders = self._holders.get(DB_RESOURCE)
            if db_holders is not None:
                items.append((DB_RESOURCE, db_holders))
            return items
        return [
            (other, holders)
            for other, holders in self._holders.items()
            if self._resources_overlap(resource, other)
        ]

    def _grantable(self, request: LockRequest) -> bool:
        txn_id = request.txn_id
        mode = request.mode
        resource = request.resource
        if self._partition_fn is None and resource != DB_RESOURCE:
            # Fast path mirroring _overlapping_items' common case, but
            # with no list/tuple allocation: an object lock can only
            # overlap itself and the database-level lock.
            exclusive = mode is LockMode.EXCLUSIVE
            holders = self._holders.get(resource)
            if holders:
                for other_txn, other_mode in holders.items():
                    if other_txn != txn_id and (
                        exclusive or other_mode is LockMode.EXCLUSIVE
                    ):
                        return False
            db_holders = self._holders.get(DB_RESOURCE)
            if db_holders:
                for other_txn, other_mode in db_holders.items():
                    if other_txn != txn_id and (
                        exclusive or other_mode is LockMode.EXCLUSIVE
                    ):
                        return False
        else:
            for _res, holders in self._overlapping_items(resource):
                for other_txn, other_mode in holders.items():
                    if other_txn != txn_id and _conflicting(mode, other_mode):
                        return False
        # FIFO fairness across both levels: never overtake an earlier
        # conflicting waiter (this is what orders a transfer transaction's
        # read locks between pre- and post-view-change writers).
        waiting = self._waiting
        if waiting:
            ticket = request.ticket
            for other in waiting:
                if (
                    not other.cancelled
                    and other.ticket < ticket
                    and other.txn_id != txn_id
                    and self._resources_overlap(resource, other.resource)
                    and _conflicting(mode, other.mode)
                ):
                    return False
        return True

    def _grant(self, request: LockRequest) -> None:
        holders = self._holders.get(request.resource)
        if holders is None:
            holders = self._holders[request.resource] = {}
        current = holders.get(request.txn_id)
        if current is None or request.mode is LockMode.EXCLUSIVE:
            holders[request.txn_id] = request.mode
        held = self._held_by.get(request.txn_id)
        if held is None:
            held = self._held_by[request.txn_id] = set()
        held.add(request.resource)
        request.granted = True
        request.granted_at = self._clock()
        self.wait_times.append(request.granted_at - request.enqueued_at)
        self.grants += 1
        if self.obs is not None:
            self.obs.wait_time.observe(request.granted_at - request.enqueued_at)
        if request.on_grant is not None:
            request.on_grant(request)

    def _pump(self) -> None:
        """Grant every waiting request that has become eligible, in order."""
        progress = True
        while progress:
            progress = False
            for request in list(self._waiting):
                if request.cancelled:
                    self._waiting.remove(request)
                    continue
                if self._grantable(request):
                    self._waiting.remove(request)
                    self._grant(request)
                    progress = True
                    break
