"""Replicated exactly-once outcome table (client request dedup).

Every client-session transaction carries a durable ``(client_id, seq,
attempt)`` request id in its totally-ordered write-set message.  At
delivery time — the moment the deterministic version-check decision is
known — every site records the settled outcome here, keyed by
``(client_id, seq)``.  A later delivery of the *same* request (a
failover resubmission whose original message made it into the total
order after all) hits the table and is suppressed instead of
re-executed.  Because the table is updated at delivery-decision time as
a deterministic function of the gid prefix, it is identical at every
site that delivered the same prefix, and it travels with state transfer
(entries at gid <= baseline) so joiners and recoverers learn settled
outcomes they never delivered.

Entry semantics, for request ``(c, s, a)`` at delivery:

* no entry for ``(c, s)``          -> execute (first attempt to arrive)
* entry committed                  -> suppress; answer from the table
* entry aborted, ``a`` > recorded  -> execute (genuine retry after a
                                      definitive abort)
* entry aborted, ``a`` <= recorded -> suppress (stale duplicate of an
                                      attempt the client already gave
                                      up on; letting it run could
                                      commit a request the client
                                      believes aborted)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

#: ``(client_id, seq, attempt, gid, committed)`` — the wire/log row shape.
OutcomeRow = Tuple[str, int, int, int, bool]


class OutcomeTable:
    """Per-site replica of the settled client-request outcomes."""

    def __init__(self) -> None:
        #: ``(client_id, seq) -> (attempt, gid, committed)``
        self._entries: Dict[Tuple[str, int], Tuple[int, int, bool]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Delivery-time protocol
    # ------------------------------------------------------------------
    def lookup(self, request) -> Optional[Tuple[int, int, bool]]:
        """Settled ``(attempt, gid, committed)`` for the request, if any."""
        return self._entries.get((request.client_id, request.seq))

    def is_duplicate(self, request) -> bool:
        """Apply the dedup rule from the module docstring."""
        entry = self._entries.get((request.client_id, request.seq))
        if entry is None:
            return False
        attempt, _gid, committed = entry
        if committed:
            return True
        return request.attempt <= attempt

    def record(self, request, gid: int, committed: bool) -> None:
        """Record the deterministic delivery decision for the request.

        A committed entry is final and never downgraded; an aborted entry
        is superseded by the decision on a higher attempt.
        """
        key = (request.client_id, request.seq)
        existing = self._entries.get(key)
        if existing is not None and existing[2] and not committed:
            return
        self._entries[key] = (request.attempt, gid, committed)

    # ------------------------------------------------------------------
    # Transfer / recovery / creation plumbing
    # ------------------------------------------------------------------
    def rows(self) -> Tuple[OutcomeRow, ...]:
        """All entries as sorted wire rows (deterministic)."""
        return tuple(
            (client_id, seq, attempt, gid, committed)
            for (client_id, seq), (attempt, gid, committed)
            in sorted(self._entries.items())
        )

    def snapshot_through(self, baseline_gid: int) -> Tuple[OutcomeRow, ...]:
        """Rows whose deciding gid is at or below the transfer baseline.

        Entries above the baseline are deliberately excluded: the joiner
        replays those gids itself and must reach (and record) the same
        decisions — handing it the outcome early would make it suppress
        its own first replay of the message and skip the writes.
        """
        return tuple(
            row for row in self.rows() if row[3] <= baseline_gid
        )

    def merge(self, rows: Iterable[OutcomeRow]) -> int:
        """Install rows from a peer, preferring settled-committed entries
        and higher attempts.  Returns how many entries changed."""
        changed = 0
        for client_id, seq, attempt, gid, committed in rows:
            key = (client_id, seq)
            existing = self._entries.get(key)
            if existing is not None:
                e_attempt, _e_gid, e_committed = existing
                if e_committed:
                    continue
                if not committed and attempt <= e_attempt:
                    continue
            self._entries[key] = (attempt, gid, committed)
            changed += 1
        return changed

    def reset_to(self, rows: Iterable[OutcomeRow]) -> None:
        """Replace the whole table with a peer's transferred snapshot.

        Used at transfer completion: the peer's snapshot through the
        baseline is complete (an up-to-date site's table holds every
        settled outcome), and any local entry it lacks belongs to a
        delivery outside the new primary lineage (a phantom) or to an
        in-flight transaction rolled back at stall time.
        """
        self._entries = {
            (client_id, seq): (attempt, gid, committed)
            for client_id, seq, attempt, gid, committed in rows
        }

    def expunge_gids(self, gids) -> int:
        """Drop entries decided at the given (phantom) gids."""
        doomed = set(gids)
        if not doomed:
            return 0
        victims = [
            key for key, (_a, gid, _c) in self._entries.items() if gid in doomed
        ]
        for key in victims:
            del self._entries[key]
        return len(victims)
