"""Single-site recovery (section 3 of the paper).

Before a crashed site rejoins the group it "first needs to bring its own
database into a consistent state": redo the updates of committed
transactions not yet reflected in the stable image, and discard the
effects of transactions that were active or aborted at crash time (our
checkpointer is no-steal, so uncommitted state never reaches the image
and undo is a no-op on the image — uncommitted work simply is not
replayed).

The scan also computes the **cover transaction** of section 4.4: the
transaction with the highest gid such that the site has successfully
terminated every transaction with gid' <= gid it delivered.  Because
total-order delivery is gap-free along the primary lineage, the cover is
the last delivered gid if everything delivered has terminated, and
``min(unterminated) - 1`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.db.outcomes import OutcomeTable
from repro.db.store import ObjectStore
from repro.db.wal import (
    AbortRecord,
    BaselineRecord,
    BeginRecord,
    CommitRecord,
    NoopRecord,
    PersistentStorage,
    ReconcileRecord,
    WriteRecord,
)


@dataclass
class RecoveryResult:
    """Outcome of a single-site recovery pass."""

    store: ObjectStore
    cover_gid: int
    last_delivered_gid: int
    redone: int
    discarded: int
    committed_gids: Set[int] = field(default_factory=set)
    #: True when the WAL tail failed its checksum scan: the log was
    #: physically truncated at the first corrupt record and the caller
    #: must treat local state as a stale-but-consistent baseline (the
    #: site rejoins via data transfer rather than trusting the tail).
    tail_torn: bool = False
    #: Records dropped because they sat at/after the first corrupt one.
    corrupt_records: int = 0
    #: Exactly-once outcome table rebuilt from the checkpointed snapshot
    #: plus surviving commit/abort records that carried request ids.
    outcomes: OutcomeTable = field(default_factory=OutcomeTable)


def compute_cover(
    baseline_gid: int, delivered: List[int], terminated: Set[int]
) -> int:
    """Cover gid given the delivered gid sequence and terminated set."""
    unterminated = [gid for gid in delivered if gid not in terminated]
    if not unterminated:
        return max([baseline_gid] + delivered)
    return max(baseline_gid, min(unterminated) - 1)


def run_single_site_recovery(storage: PersistentStorage) -> RecoveryResult:
    """Rebuild the volatile store and cover gid from stable storage.

    The log is first verified record-by-record against its CRC32
    checksums; a mismatch means the tail was torn by a crash
    mid-write, so the log is truncated at the first corrupt record and
    only the clean prefix is replayed.  Because commit/abort records are
    flushed before they take effect, a torn tail can only lose work that
    never externally mattered — but the site's cover is computed from
    the surviving prefix, so it honestly rejoins as further behind.
    """
    records, corrupt_at = storage.verified_records()
    tail_torn = corrupt_at is not None
    corrupt_records = 0
    if corrupt_at is not None:
        corrupt_records = storage.truncate_at(corrupt_at)

    baseline_gid = -1
    delivered: List[int] = []
    terminated: Set[int] = set()
    committed: Set[int] = set()
    writes_by_gid: Dict[int, List[WriteRecord]] = {}
    outcomes = OutcomeTable()
    outcomes.merge(getattr(storage, "outcome_image", ()))

    for record in records:
        if isinstance(record, BaselineRecord):
            baseline_gid = max(baseline_gid, record.gid)
        elif isinstance(record, BeginRecord):
            delivered.append(record.gid)
        elif isinstance(record, NoopRecord):
            delivered.append(record.gid)
            terminated.add(record.gid)
        elif isinstance(record, WriteRecord):
            writes_by_gid.setdefault(record.gid, []).append(record)
        elif isinstance(record, CommitRecord):
            terminated.add(record.gid)
            committed.add(record.gid)
            if record.request is not None:
                client_id, seq, attempt = record.request
                outcomes.merge(((client_id, seq, attempt, record.gid, True),))
        elif isinstance(record, AbortRecord):
            terminated.add(record.gid)
            if record.request is not None:
                client_id, seq, attempt = record.request
                outcomes.merge(((client_id, seq, attempt, record.gid, False),))
        elif isinstance(record, ReconcileRecord):
            terminated.add(record.gid)
            committed.discard(record.gid)
            outcomes.expunge_gids((record.gid,))

    store = ObjectStore()
    store.load_snapshot(storage.checkpoint_image)

    # Redo committed work in gid order; the image may already contain a
    # newer version (fuzzy checkpoint after the write), so apply only
    # forward version steps.
    redone = 0
    for gid in sorted(committed):
        for record in writes_by_gid.get(gid, ()):
            if obj_version(store, record.obj) < gid:
                store.write(record.obj, record.after_value, gid)
                redone += 1

    discarded = sum(len(v) for gid, v in writes_by_gid.items() if gid not in committed)
    cover = compute_cover(baseline_gid, delivered, terminated)
    last = max([baseline_gid] + delivered)
    return RecoveryResult(
        store=store,
        cover_gid=cover,
        last_delivered_gid=last,
        redone=redone,
        discarded=discarded,
        committed_gids=committed,
        tail_torn=tail_torn,
        corrupt_records=corrupt_records,
        outcomes=outcomes,
    )


def obj_version(store: ObjectStore, obj: str) -> int:
    """Version of ``obj`` in ``store``; -(2**60) when the object is absent."""
    if obj in store:
        return store.version(obj)
    return -(2**60)
