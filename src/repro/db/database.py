"""Per-site database facade used by the replica control layer.

Combines store, locks, log, RecTable and cover bookkeeping.  All methods
are synchronous state changes; the replica control node schedules them
on the simulated clock to model processing cost.

Version bookkeeping: the serialization phase of the protocol (section
2.2) performs its version check "after applying all updates of
transactions delivered before T" — but the write phase is asynchronous,
so at check time earlier writes may not be installed yet.  The facade
therefore tracks the version each object *will* have once all
already-serialized writers finish (:attr:`_tagged_version`); the check
compares against that, which keeps the decision deterministic and
identical at every site.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.db.locks import LockManager
from repro.db.outcomes import OutcomeTable
from repro.db.recovery import RecoveryResult, compute_cover, run_single_site_recovery
from repro.db.rectable import RecTable
from repro.db.store import INITIAL_VERSION, ObjectStore
from repro.db.wal import (
    AbortRecord,
    BaselineRecord,
    BeginRecord,
    CommitRecord,
    NoopRecord,
    PersistentStorage,
    ReconcileRecord,
    WriteRecord,
)


def _request_tuple(request):
    """Wire/log shape of a request id (``None`` passes through)."""
    if request is None:
        return None
    return (request.client_id, request.seq, request.attempt)


class Database:
    """Volatile database instance bound to a crash-surviving storage."""

    def __init__(self, storage: PersistentStorage, clock=None, partition_fn=None) -> None:
        self.storage = storage
        self.store = ObjectStore()
        self.locks = LockManager(clock, partition_fn=partition_fn)
        self.partition_fn = partition_fn
        self.rectable = RecTable()
        #: Replicated exactly-once table of settled client-request
        #: outcomes (updated deterministically at delivery-decision time).
        self.outcomes = OutcomeTable()
        self._tagged_version: Dict[str, int] = {}
        self._uncommitted_writes: Dict[int, List[Tuple[str, Any, int]]] = {}
        self._snapshots: Dict[int, Dict[str, Tuple[Any, int]]] = {}
        self._snapshot_refs: Dict[int, int] = {}
        self.baseline_gid = -1
        self.delivered_gids: List[int] = []
        self._unterminated: Set[int] = set()
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Bootstrap and recovery
    # ------------------------------------------------------------------
    def bootstrap(self, initial: Dict[str, Any]) -> None:
        """Load the initial database copy (version -1 on every object)."""
        for obj, value in initial.items():
            self.store.write(obj, value, INITIAL_VERSION)
        self.storage.append(BaselineRecord(-1))
        self.storage.checkpoint(self.store.snapshot())
        self.storage.flush()

    @classmethod
    def recover_from(
        cls, storage: PersistentStorage, clock=None, partition_fn=None
    ) -> Tuple["Database", RecoveryResult]:
        """Single-site recovery: rebuild a fresh instance from stable storage."""
        result = run_single_site_recovery(storage)
        db = cls(storage, clock, partition_fn=partition_fn)
        db.store = result.store
        db.outcomes = result.outcomes
        db.baseline_gid = result.cover_gid
        # Rebuild the RecTable so a recovered site can act as peer later.
        # The recovered store's version tags *are* the last committed
        # writers (redo applied committed after-images in gid order), and
        # unlike a log scan this survives log truncation at checkpoints.
        for obj in result.store.objects():
            version = result.store.version(obj)
            if version >= 0:
                db.rectable.register(obj, version)
        db.rectable.ensure_current()
        # Anything beyond the cover is treated as not executed; the data
        # transfer will (re)deliver those updates.
        return db, result

    # ------------------------------------------------------------------
    # Serialization-phase primitives
    # ------------------------------------------------------------------
    def log_begin(self, gid: int) -> None:
        self.storage.append(BeginRecord(gid))
        self.delivered_gids.append(gid)
        self._unterminated.add(gid)

    def log_noop(self, gid: int) -> None:
        """Record a delivered non-transactional message (cover continuity)."""
        self.storage.append(NoopRecord(gid))
        self.delivered_gids.append(gid)

    def version_check(self, read_set: Dict[str, int]) -> bool:
        """True iff every read version is still current (section 2.2, III.2)."""
        # Inlined effective_version: max(tag, stored) > read_version is
        # equivalent to either component exceeding it.  Using the read
        # version itself as the missing-key default keeps each test to a
        # single comparison (versions are monotone, so a missing entry
        # can never exceed anything).
        tagged = self._tagged_version
        version_or = self.store.version_or
        for obj, read_version in read_set.items():
            if (
                tagged.get(obj, read_version) > read_version
                or version_or(obj, read_version) > read_version
            ):
                return False
        return True

    def effective_version(self, obj: str) -> int:
        """Version the object will have once serialized writers finish.

        The maximum of the pending write tag and the stored version: a
        data transfer can install versions newer than any local tag (the
        site missed those writers entirely), and a tag can be ahead of
        the store (the writer's write phase has not run yet).
        """
        tag = self._tagged_version.get(obj, INITIAL_VERSION)
        stored = self.store.version_or(obj)
        return max(tag, stored)

    def tag_writes(self, gid: int, objs) -> None:
        """Reserve the version tag for the lock phase of transaction gid.

        Tags are monotone: they only ever increase, and they survive the
        writer's abort.  A too-high tag can only cause a (deterministic,
        system-wide) version-check abort of a reader, never a stale read.
        """
        for obj in objs:
            if self._tagged_version.get(obj, INITIAL_VERSION) < gid:
                self._tagged_version[obj] = gid

    # ------------------------------------------------------------------
    # Write / commit / abort
    # ------------------------------------------------------------------
    def apply_write(self, gid: int, obj: str, value: Any) -> None:
        """Install one write (logging physical before/after images)."""
        before_value, before_version = self.store.peek(obj)
        self.storage.append(WriteRecord(gid, obj, before_value, before_version, value))
        self._uncommitted_writes.setdefault(gid, []).append((obj, before_value, before_version))
        # Multiversion support for the log-filter transfer strategy
        # (section 4.6): preserve the last version below each snapshot
        # limit the first time a post-limit writer overwrites it.
        for limit, saved in self._snapshots.items():
            if gid >= limit and before_version < limit and obj not in saved:
                saved[obj] = (before_value, before_version)
        self.store.write(obj, value, gid)

    def commit(self, gid: int, request=None) -> None:
        # Commit is the WAL force point: the commit record and every
        # record before it must survive a crash (write-ahead rule), so a
        # torn tail can only ever lose begin/write records of in-flight
        # transactions — work that never externally took effect.
        self.storage.append(CommitRecord(gid, _request_tuple(request)))
        self.storage.flush()
        for obj, _, _ in self._uncommitted_writes.pop(gid, ()):
            self.rectable.register(obj, gid)
        self._unterminated.discard(gid)
        self.commits += 1

    def abort(self, gid: int, request=None) -> None:
        """Undo any installed writes and terminate the transaction."""
        for obj, before_value, before_version in reversed(self._uncommitted_writes.pop(gid, [])):
            self.store.write(obj, before_value, before_version)
        self.storage.append(AbortRecord(gid, _request_tuple(request)))
        self.storage.flush()
        self._unterminated.discard(gid)
        self.aborts += 1

    def rollback(self, gid: int) -> None:
        """Undo installed writes *without* terminating the transaction.

        Used when the site leaves the primary component mid-execution:
        the transaction may have committed elsewhere, so the cover must
        stay below it (no Abort record; the Begin stays unterminated and
        the data transfer will re-supply the committed state).
        """
        for obj, before_value, before_version in reversed(self._uncommitted_writes.pop(gid, [])):
            self.store.write(obj, before_value, before_version)

    # ------------------------------------------------------------------
    # Cover transaction (section 4.4)
    # ------------------------------------------------------------------
    def cover_gid(self) -> int:
        return compute_cover(self.baseline_gid, self.delivered_gids,
                             set(self.delivered_gids) - self._unterminated)

    def set_baseline(self, gid: int) -> None:
        """The store now incorporates everything up to ``gid`` (data transfer)."""
        self.storage.append(BaselineRecord(gid))
        self.storage.flush()
        self.baseline_gid = gid
        self.delivered_gids = [g for g in self.delivered_gids if g > gid]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, truncate_log: bool = False) -> None:
        """Fuzzy, no-steal checkpoint: flush committed values only.

        With ``truncate_log`` the log prefix through the current cover is
        dropped (it is fully subsumed by the image): the cover guarantees
        every transaction at or below it terminated, and committed values
        at or below it are — by no-steal — in the image being written.
        """
        image = self.store.snapshot()
        for gid, writes in self._uncommitted_writes.items():
            for obj, before_value, before_version in writes:
                image[obj] = (before_value, before_version)
        self.storage.checkpoint(image)
        self.storage.outcome_image = self.outcomes.rows()
        self.storage.flush()
        if truncate_log:
            self.storage.truncate_through(self.cover_gid())

    # ------------------------------------------------------------------
    # Multiversion snapshots (log-filter strategy, section 4.6)
    # ------------------------------------------------------------------
    def begin_version_snapshot(self, limit_gid: int) -> None:
        """Start preserving the last object versions below ``limit_gid``.

        Reference-counted: several concurrent transfer sessions created at
        the same synchronization point share one snapshot."""
        self._snapshots.setdefault(limit_gid, {})
        self._snapshot_refs[limit_gid] = self._snapshot_refs.get(limit_gid, 0) + 1

    def read_as_of(self, limit_gid: int) -> Dict[str, Tuple[Any, int]]:
        """State as of the snapshot limit: for every object, the newest
        version with version < limit_gid.  Requires that all writers
        below the limit have finished (quiescence below the boundary)."""
        if limit_gid not in self._snapshots:
            raise KeyError(f"no snapshot at limit {limit_gid}")
        result: Dict[str, Tuple[Any, int]] = {}
        for obj in self.store.objects():
            value, version = self.store.read(obj)
            if version < limit_gid:
                result[obj] = (value, version)
        result.update(self._snapshots[limit_gid])
        return result

    def end_version_snapshot(self, limit_gid: int) -> None:
        refs = self._snapshot_refs.get(limit_gid, 0) - 1
        if refs > 0:
            self._snapshot_refs[limit_gid] = refs
        else:
            self._snapshot_refs.pop(limit_gid, None)
            self._snapshots.pop(limit_gid, None)

    # ------------------------------------------------------------------
    # Reads of committed state (lazy transfer's "short read lock")
    # ------------------------------------------------------------------
    def read_committed(self, obj: str) -> Tuple[Any, int]:
        """Latest *committed* value of the object: when the newest writer
        is still uncommitted, return the before-image it saved."""
        value, version = self.store.read(obj)
        for gid, writes in self._uncommitted_writes.items():
            for wobj, before_value, before_version in writes:
                if wobj == obj and version == gid:
                    return before_value, before_version
        return value, version

    # ------------------------------------------------------------------
    # Log scans used by the creation protocol (section 3)
    # ------------------------------------------------------------------
    def committed_writes_above(self, cover_gid: int):
        """After-images of committed transactions with gid > cover, as
        ((gid, ((obj, value), ...)), ...) sorted by gid."""
        committed: set = set()
        writes: Dict[int, Dict[str, Any]] = {}
        for record in self.storage.records():
            if isinstance(record, CommitRecord):
                committed.add(record.gid)
            elif isinstance(record, WriteRecord) and record.gid > cover_gid:
                writes.setdefault(record.gid, {})[record.obj] = record.after_value
        return tuple(
            (gid, tuple(sorted(writes[gid].items())))
            for gid in sorted(writes)
            if gid in committed and gid > cover_gid
        )

    def pending_version_tags(self) -> Dict[str, int]:
        return dict(self._tagged_version)

    def reset_version_tags(self) -> None:
        """Drop all pending version tags.

        Only valid once every in-flight serialized writer has been rolled
        back (stall / demotion): each remaining tag then either
        duplicates the committed store version or belongs to a
        rolled-back transaction.  The latter kind is poison — no other
        site carries it (tags are never transferred), so keeping it
        would make this site's later version checks diverge from the
        rest of the group.
        """
        self._tagged_version.clear()

    # ------------------------------------------------------------------
    # Reconciliation of phantom commits (section 2.3)
    # ------------------------------------------------------------------
    def committed_gids_above(self, cover_gid: int) -> Tuple[int, ...]:
        """Locally committed gids above the cover — the candidates a
        rejoining site must have checked against the primary's history
        when running without uniform delivery."""
        committed: set = set()
        reconciled: set = set()
        for record in self.storage.records():
            if isinstance(record, CommitRecord) and record.gid > cover_gid:
                committed.add(record.gid)
            elif isinstance(record, ReconcileRecord):
                reconciled.add(record.gid)
        return tuple(sorted(committed - reconciled))

    def verify_committed(self, gids) -> Tuple[int, ...]:
        """Which of ``gids`` did this site *not* commit (nor subsume in a
        baseline)?  One log scan; used by the reconciliation gate."""
        candidates = {gid for gid in gids if gid > self.baseline_gid}
        if not candidates:
            return ()
        committed: set = set()
        reconciled: set = set()
        for record in self.storage.records():
            if isinstance(record, CommitRecord) and record.gid in candidates:
                committed.add(record.gid)
            elif isinstance(record, ReconcileRecord) and record.gid in candidates:
                reconciled.add(record.gid)
        return tuple(sorted(candidates - (committed - reconciled)))

    def is_committed_locally(self, gid: int) -> bool:
        """Did this site commit ``gid`` (directly, or via a transferred
        baseline that subsumes it)?"""
        if gid <= self.baseline_gid:
            return True
        committed = False
        for record in self.storage.records():
            if isinstance(record, CommitRecord) and record.gid == gid:
                committed = True
            elif isinstance(record, ReconcileRecord) and record.gid == gid:
                committed = False
        return committed

    def reconcile_phantoms(self, gids) -> int:
        """Compensate locally committed transactions that never committed
        in the primary lineage: restore their before-images (newest
        first) and log ReconcileRecords so recovery stops redoing them.

        Returns the number of writes undone.  Must run *before* the
        transferred state is installed, otherwise the phantom versions
        (which may exceed the legitimate ones) would survive the merge.
        """
        phantom = set(gids)
        if not phantom:
            return 0
        undone = 0
        writes = [
            record
            for record in self.storage.records()
            if isinstance(record, WriteRecord) and record.gid in phantom
        ]
        for record in sorted(writes, key=lambda r: r.gid, reverse=True):
            if record.obj in self.store and self.store.version(record.obj) == record.gid:
                self.store.write(record.obj, record.before_value, record.before_version)
                undone += 1
        for gid in sorted(phantom):
            self.storage.append(ReconcileRecord(gid))
        # Outcomes decided at phantom gids never settled in the primary
        # lineage; the client will retry and the primary's decision (at a
        # different gid) must win.
        self.outcomes.expunge_gids(phantom)
        self.storage.flush()
        return undone
