"""Write-ahead log and the stable storage that survives crashes.

The paper (section 3, Single Site Recovery): "each site usually
maintains a log during normal processing such that for each write
operation on object X the before- and after-images of X are appended to
the log".  We log physical images plus begin/commit/abort/baseline
markers; :mod:`repro.db.recovery` replays them.

:class:`PersistentStorage` is the crash-surviving part of a site: the
log plus a (possibly stale) checkpoint image flushed by a fuzzy
checkpointer with a no-steal policy (only committed values reach the
image, so recovery is pure redo).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class BaselineRecord:
    """The database state incorporates every transaction with gid <= gid.

    Written when the initial copy is loaded (gid = -1) and when a data
    transfer completes (gid = the synchronization point).
    """

    gid: int


@dataclass(frozen=True)
class BeginRecord:
    """A transaction message with this gid entered the serialization phase."""

    gid: int


@dataclass(frozen=True)
class WriteRecord:
    """Physical before/after images of one write operation."""

    gid: int
    obj: str
    before_value: Any
    before_version: int
    after_value: Any


@dataclass(frozen=True)
class CommitRecord:
    gid: int


@dataclass(frozen=True)
class AbortRecord:
    gid: int


@dataclass(frozen=True)
class ReconcileRecord:
    """A locally committed transaction turned out to be a *phantom*: it
    never committed in the primary lineage (possible only under plain
    reliable delivery, section 2.3) and its effects were compensated
    during recovery.  Recovery must stop treating the gid as committed."""

    gid: int


@dataclass(frozen=True)
class NoopRecord:
    """A delivered message at this gid carried no transaction (e.g. a
    control message); logged so the cover computation can account for it."""

    gid: int


LogRecord = Any  # union of the record dataclasses above


class PersistentStorage:
    """Crash-surviving state of one site: the WAL plus a checkpoint image."""

    def __init__(self) -> None:
        self.log: List[LogRecord] = []
        self.checkpoint_image: Dict[str, Tuple[Any, int]] = {}
        self.flushes = 0

    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> None:
        self.log.append(record)

    def records(self) -> Iterator[LogRecord]:
        return iter(self.log)

    def __len__(self) -> int:
        return len(self.log)

    # ------------------------------------------------------------------
    def checkpoint(self, image: Dict[str, Tuple[Any, int]]) -> None:
        """Install a fuzzy checkpoint of committed values.

        The caller guarantees no-steal (no uncommitted values in
        ``image``); recovery therefore never needs to undo image state.
        The log is kept whole unless :meth:`truncate_through` is called —
        recovery replays committed after-images whose version exceeds the
        image's.
        """
        self.checkpoint_image = dict(image)
        self.flushes += 1

    def truncate_through(self, gid: int) -> int:
        """Drop log records the checkpoint image subsumes.

        Safe precondition (enforced by the caller): every transaction
        with gid' <= gid has terminated and its committed effects are in
        the checkpoint image.  A ``BaselineRecord(gid)`` summarises the
        dropped prefix so recovery still computes the right cover.
        Returns the number of records removed.
        """
        kept: List[LogRecord] = [BaselineRecord(gid)]
        removed = 0
        for record in self.log:
            record_gid = getattr(record, "gid", None)
            if record_gid is not None and record_gid <= gid:
                removed += 1
            else:
                kept.append(record)
        self.log = kept
        return removed

    def log_bytes(self, record_size: int = 64) -> int:
        """Approximate log volume, for benchmark accounting."""
        return len(self.log) * record_size
