"""Write-ahead log and the stable storage that survives crashes.

The paper (section 3, Single Site Recovery): "each site usually
maintains a log during normal processing such that for each write
operation on object X the before- and after-images of X are appended to
the log".  We log physical images plus begin/commit/abort/baseline
markers; :mod:`repro.db.recovery` replays them.

:class:`PersistentStorage` is the crash-surviving part of a site: the
log plus a (possibly stale) checkpoint image flushed by a fuzzy
checkpointer with a no-steal policy (only committed values reach the
image, so recovery is pure redo).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


def record_checksum(record: "LogRecord") -> int:
    """CRC32 of a log record's canonical serialization.

    The record dataclasses are frozen and their ``repr`` is canonical, so
    it stands in for the on-disk byte encoding a real WAL would checksum.
    """
    return zlib.crc32(repr(record).encode("utf-8"))


@dataclass(frozen=True)
class BaselineRecord:
    """The database state incorporates every transaction with gid <= gid.

    Written when the initial copy is loaded (gid = -1) and when a data
    transfer completes (gid = the synchronization point).
    """

    gid: int


@dataclass(frozen=True)
class BeginRecord:
    """A transaction message with this gid entered the serialization phase."""

    gid: int


@dataclass(frozen=True)
class WriteRecord:
    """Physical before/after images of one write operation."""

    gid: int
    obj: str
    before_value: Any
    before_version: int
    after_value: Any


@dataclass(frozen=True)
class CommitRecord:
    gid: int
    #: ``(client_id, seq, attempt)`` of the client request this commit
    #: settles, or ``None`` for anonymous transactions.  Logged so single
    #: site recovery can rebuild the exactly-once outcome table.
    request: Optional[Tuple[str, int, int]] = None


@dataclass(frozen=True)
class AbortRecord:
    gid: int
    #: See :class:`CommitRecord`; aborted attempts are also settled
    #: outcomes (a stale duplicate must not commit later).
    request: Optional[Tuple[str, int, int]] = None


@dataclass(frozen=True)
class ReconcileRecord:
    """A locally committed transaction turned out to be a *phantom*: it
    never committed in the primary lineage (possible only under plain
    reliable delivery, section 2.3) and its effects were compensated
    during recovery.  Recovery must stop treating the gid as committed."""

    gid: int


@dataclass(frozen=True)
class NoopRecord:
    """A delivered message at this gid carried no transaction (e.g. a
    control message); logged so the cover computation can account for it."""

    gid: int


LogRecord = Any  # union of the record dataclasses above


class PersistentStorage:
    """Crash-surviving state of one site: the WAL plus a checkpoint image.

    Every record carries a CRC32 checksum (:func:`record_checksum`), and
    the log distinguishes a *durable prefix* — records covered by an
    explicit :meth:`flush` — from an unflushed tail still in the OS/page
    cache.  A crash can tear the unflushed tail: drop some suffix of it
    and leave at most one garbage (checksum-mismatching) record where the
    tear happened.  Recovery uses :meth:`verified_records` to read only
    the prefix that checksums clean.
    """

    def __init__(self) -> None:
        self.log: List[LogRecord] = []
        #: Stored checksum per record; ``None`` = not yet materialized.
        #: CRCs exist to catch crash-time corruption (:meth:`tear_tail`),
        #: so they are computed lazily — a record that was never exposed
        #: to a fault trivially checksums clean, and the hot commit path
        #: skips ~one repr+crc32 per log record.
        self._crcs: List[Optional[int]] = []
        #: Records below this index survived an explicit flush and can
        #: never be lost or torn by a crash.
        self.durable_length = 0
        self.checkpoint_image: Dict[str, Tuple[Any, int]] = {}
        #: Exactly-once outcome rows flushed with each checkpoint, so
        #: entries whose commit/abort records were truncated from the log
        #: still survive a crash.
        self.outcome_image: Tuple[Tuple[str, int, int, int, bool], ...] = ()
        self.flushes = 0
        #: Total records ever appended (monotone; unlike ``len(log)`` it
        #: is not reduced by checkpoint truncation or torn tails).
        self.records_appended = 0
        #: Diagnostics from the last torn-tail event (fault injection).
        self.torn_records = 0
        self.corrupt_records = 0

    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> None:
        self.log.append(record)
        self._crcs.append(None)
        self.records_appended += 1

    def flush(self) -> None:
        """Force the whole log to stable storage (fsync)."""
        if self.durable_length < len(self.log):
            self.flushes += 1
        self.durable_length = len(self.log)

    @property
    def unflushed_count(self) -> int:
        return len(self.log) - self.durable_length

    def records(self) -> Iterator[LogRecord]:
        return iter(self.log)

    def __len__(self) -> int:
        return len(self.log)

    def verified_records(self) -> Tuple[List[LogRecord], Optional[int]]:
        """Longest clean log prefix and the index of the first corrupt
        record (or None if every record checksums correctly)."""
        good: List[LogRecord] = []
        for index, record in enumerate(self.log):
            crc = self._crcs[index]
            if crc is not None and crc != record_checksum(record):
                return good, index
            good.append(record)
        return good, None

    def truncate_at(self, index: int) -> int:
        """Physically discard log records from ``index`` on.

        Used by recovery after a checksum mismatch: everything at and
        beyond the first corrupt record is untrustworthy.  Returns the
        number of records removed.
        """
        removed = len(self.log) - index
        del self.log[index:]
        del self._crcs[index:]
        self.durable_length = min(self.durable_length, len(self.log))
        return removed

    # ------------------------------------------------------------------
    # Crash-time fault hooks (used by repro.faults.storage)
    # ------------------------------------------------------------------
    def tear_tail(self, keep_unflushed: int, corrupt_next: bool = False) -> int:
        """Simulate a torn write at crash time.

        Keeps the durable prefix plus the first ``keep_unflushed``
        unflushed records; if ``corrupt_next`` and another unflushed
        record exists, it is kept but its stored checksum no longer
        matches (a partially-written sector); the rest of the tail is
        lost.  Returns the number of records dropped.
        """
        keep = self.durable_length + max(0, keep_unflushed)
        if keep >= len(self.log):
            return 0
        if corrupt_next:
            if self._crcs[keep] is None:
                self._crcs[keep] = record_checksum(self.log[keep])
            self._crcs[keep] ^= 0xDEADBEEF
            self.corrupt_records += 1
            keep += 1
        dropped = len(self.log) - keep
        del self.log[keep:]
        del self._crcs[keep:]
        self.torn_records += dropped
        return dropped

    # ------------------------------------------------------------------
    def checkpoint(self, image: Dict[str, Tuple[Any, int]]) -> None:
        """Install a fuzzy checkpoint of committed values.

        The caller guarantees no-steal (no uncommitted values in
        ``image``); recovery therefore never needs to undo image state.
        The log is kept whole unless :meth:`truncate_through` is called —
        recovery replays committed after-images whose version exceeds the
        image's.
        """
        self.checkpoint_image = dict(image)
        self.flushes += 1

    def truncate_through(self, gid: int) -> int:
        """Drop log records the checkpoint image subsumes.

        Safe precondition (enforced by the caller): every transaction
        with gid' <= gid has terminated and its committed effects are in
        the checkpoint image.  A ``BaselineRecord(gid)`` summarises the
        dropped prefix so recovery still computes the right cover.
        Returns the number of records removed.
        """
        kept: List[LogRecord] = [BaselineRecord(gid)]
        removed = 0
        for record in self.log:
            record_gid = getattr(record, "gid", None)
            if record_gid is not None and record_gid <= gid:
                removed += 1
            else:
                kept.append(record)
        self.log = kept
        self._crcs = [None] * len(kept)
        # Rewriting the log is itself a durable operation.
        self.durable_length = len(self.log)
        return removed

    def log_bytes(self, record_size: int = 64) -> int:
        """Approximate log volume, for benchmark accounting."""
        return len(self.log) * record_size
