"""Data partitions ("relations") over the object space.

Two paper features rely on a partitioning of the database:

* section 4.3: "in order to reduce the number of locks, the transfer
  transaction can request coarse granularity locks (e.g., on relations)
  instead of fine granularity locks on individual objects";
* section 4.7: "we suggest that in the first round data are transferred
  per data partition (e.g., per relation).  In case of failures during
  this round, the new peer site does not need to restart but simply
  continue the transfer for those partitions the joiner has not yet
  received."

Objects are assigned to partitions by a stable hash, so every site
agrees on the mapping without any coordination.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

#: Resource-name prefix of partition-level locks in the lock manager.
PARTITION_PREFIX = "__PARTITION__:"


def partition_of(obj: str, partition_count: int) -> str:
    """Stable partition name for an object (same at every site)."""
    if partition_count <= 0:
        raise ValueError("partition_count must be positive")
    index = zlib.crc32(obj.encode("utf-8")) % partition_count
    return f"part{index}"


def partition_resource(partition: str) -> str:
    """Lock-manager resource name of a partition-level lock."""
    return PARTITION_PREFIX + partition


def partition_names(partition_count: int) -> List[str]:
    return [f"part{i}" for i in range(partition_count)]


def make_partition_fn(partition_count: int):
    """Object -> partition-resource mapping for the lock manager
    (None disables partition-aware locking)."""
    if partition_count <= 0:
        return None

    def fn(obj: str) -> str:
        return partition_resource(partition_of(obj, partition_count))

    return fn
