"""RecTable — the reconstruction table of section 4.5.

A record ``(obj, gid)`` says that the transaction with global identifier
``gid`` was the last committed one to update ``obj``.  The table must
hold a record for every object updated by a transaction for which some
site might not yet have executed it; records whose gid is at or below
the *minimum cover* over all sites can be deleted.

The paper allows maintenance "by a background process whenever the
system is idle"; only at data-transfer time must the table be fully
up-to-date.  We model that with a pending-registration queue that a
background task drains, plus :meth:`ensure_current` for the transfer
path.  Counters expose the maintenance cost for the overhead ablation
(experiment E9a).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


class RecTable:
    """Per-site reconstruction table."""

    def __init__(self) -> None:
        self._last_writer: Dict[str, int] = {}
        self._pending: List[Tuple[str, int]] = []
        self.registrations = 0
        self.deletions = 0
        self.flushes = 0
        #: Highest min-cover the table was ever purged with.  Records at
        #: or below it are gone, so :meth:`changed_since` can only answer
        #: covers at or above this floor (see :meth:`can_answer`).
        self.purge_floor = -1

    def __len__(self) -> int:
        return len(self._last_writer)

    def __contains__(self, obj: str) -> bool:
        return obj in self._last_writer

    # ------------------------------------------------------------------
    # Registration of updates (section 4.5, step I)
    # ------------------------------------------------------------------
    def register(self, obj: str, gid: int) -> None:
        """Queue the registration of a committed update (background-applied)."""
        self._pending.append((obj, gid))

    def flush_pending(self, limit: int = 0) -> int:
        """Apply queued registrations (all of them when ``limit`` is 0).

        Returns the number applied.  The background maintenance task
        calls this with a small limit; the transfer path calls
        :meth:`ensure_current`.
        """
        count = len(self._pending) if limit <= 0 else min(limit, len(self._pending))
        for obj, gid in self._pending[:count]:
            current = self._last_writer.get(obj)
            if current is None or gid > current:
                self._last_writer[obj] = gid
            self.registrations += 1
        del self._pending[:count]
        if count:
            self.flushes += 1
        return count

    def ensure_current(self) -> None:
        """Make the table fully up-to-date (required before a transfer)."""
        self.flush_pending()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def changed_since(self, cover_gid: int) -> Dict[str, int]:
        """Objects last updated by a committed transaction with gid > cover.

        This is the paper's ``SELECT obj FROM RecTable WHERE gid > cover``.
        The caller must have called :meth:`ensure_current` first.
        """
        return {obj: gid for obj, gid in self._last_writer.items() if gid > cover_gid}

    def can_answer(self, cover_gid: int) -> bool:
        """Whether :meth:`changed_since` is complete for this cover.

        Garbage collection deletes records at or below the minimum cover
        over all sites, which is safe only while covers are monotonic per
        site.  A site rebooted from damaged-but-CRC-valid stable state
        can honestly report a cover *below* an earlier announcement; the
        purged table then cannot enumerate what such a joiner is missing
        and the caller must fall back to the store's version tags.
        """
        return cover_gid >= self.purge_floor

    def last_writer(self, obj: str) -> int:
        return self._last_writer[obj]

    # ------------------------------------------------------------------
    # Garbage collection (section 4.5, step II)
    # ------------------------------------------------------------------
    def purge(self, min_cover_gid: int) -> int:
        """Delete records with gid <= the minimum cover over all sites."""
        self.purge_floor = max(self.purge_floor, min_cover_gid)
        stale = [obj for obj, gid in self._last_writer.items() if gid <= min_cover_gid]
        for obj in stale:
            del self._last_writer[obj]
        self.deletions += len(stale)
        return len(stale)
