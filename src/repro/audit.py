"""Determinism audit: verify what the bench and chaos gates assume.

Everything in this repository — the regression gate, the pinned chaos
regression seeds, the batching-equivalence claim, the observability
no-effect claim — rests on one property: a simulation is a pure function
of its seed and configuration.  Nothing used to *verify* that property;
this module does, as ``python -m repro audit``.

For every pinned case the audit runs the simulation **twice** (in
separate spawned worker processes at ``--jobs`` > 1, so each run gets a
fresh interpreter and a fresh string-hash seed) and diffs

* the final replica **state digests** of every site,
* the per-site **commit/abort histories** (virtual time, gid, kind),
* the **trace digest** (every protocol event the tracer records), and
* the deterministic scalar counters (commits, events processed,
  messages delivered, virtual time).

Where earlier PRs claim equivalence, the audit additionally runs the
claimed-equivalent configuration and compares the *protocol-level*
digests (state, histories, abort set — not event or message counts,
which batching legitimately changes):

* ``batching`` axis — batching on vs off must terminate the same
  transactions at the same virtual times with the same final states
  (PR 2's claim, here checked on the pinned scenarios end to end);
* ``obs`` axis — attaching the observability layer must not change any
  outcome (PR 3's claim);
* ``profile`` axis — attaching the deterministic sim-loop profiler
  (repro.obs.profile) must not change *anything*, including event and
  message counts and the trace digest, so this axis compares the FULL
  key set rather than the protocol subset.

Any divergence fails loudly: the report names the case, the digest keys
that differ, the first divergent line (from the ``--dump-dir``
artifacts), and a **minimal repro command**.

Test hook: setting ``REPRO_AUDIT_SABOTAGE=1`` in the environment
perturbs the seed of the second determinism run of every chaos case.
That makes the two runs genuinely different simulations, which the audit
must report as a divergence — the integration tests use it to prove the
auditor actually fails when determinism breaks.  Never set it outside a
test.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Digest/counter keys that every repeated run must reproduce exactly
#: ("determinism" axis).  ``trace`` and ``schedule`` exist only for
#: cases that attach a tracer (chaos); absent keys compare as absent on
#: both sides.
FULL_KEYS = ("state", "history", "aborts", "trace", "schedule",
             "commits", "txn_aborts", "virtual_time", "events_processed",
             "messages_delivered", "ok")

#: The protocol-level subset for the equivalence axes: batching and
#: observability may change how many events/messages it takes to get
#: there, but never *where* the system ends up.
PROTOCOL_KEYS = ("state", "history", "aborts", "commits", "txn_aborts",
                 "virtual_time", "ok")

SABOTAGE_ENV = "REPRO_AUDIT_SABOTAGE"

#: Which material list backs each digest key (for first-divergence
#: reporting from dump artifacts).
_MATERIAL_OF = {"state": "state", "history": "history", "aborts": "aborts",
                "trace": "trace", "schedule": "schedule"}


@dataclass(frozen=True)
class AuditCase:
    """One pinned simulation plus the equivalence axes it must satisfy.

    Every case always gets the determinism axis (two identical runs);
    ``axes`` adds ``"batching"`` and/or ``"obs"`` variants.
    """

    case_id: str
    kind: str  # "bench" | "chaos"
    params: Dict[str, Any] = field(default_factory=dict)
    axes: Tuple[str, ...] = ()


def _chaos_case(mode: str, seed: int, axes: Tuple[str, ...] = (),
                **overrides: Any) -> AuditCase:
    params = {"seed": seed, "mode": mode, "intensity": 0.5, "n_sites": 4,
              "db_size": 40, "duration": 1.5, "arrival_rate": 60.0}
    params.update(overrides)
    # Client-mode storms get their own id namespace so they never
    # collide with the open-loop case for the same (mode, seed).
    prefix = "chaos-clients" if params.get("clients") else "chaos"
    return AuditCase(case_id=f"{prefix}:{mode}:{seed}", kind="chaos",
                     params=params, axes=axes)


def _build_cases() -> Dict[str, AuditCase]:
    cases: List[AuditCase] = []
    # The pinned bench matrix (smoke scale), each with the batching
    # equivalence axis PR 2 claims.  The chaos scenario is determinism-
    # only: its fault injectors draw from the simulation RNG per wire
    # message, and batching changes the wire-message count, so the two
    # modes legitimately diverge there (the equivalence claim is pinned
    # to the deterministic network — see
    # tests/properties/test_batching_equivalence.py).
    for scenario in ("throughput", "figure1", "figure2_evs", "chaos",
                     "client_failover"):
        axes = ("batching",) if scenario not in ("chaos",
                                                 "client_failover") else ()
        cases.append(AuditCase(case_id=f"bench:{scenario}", kind="bench",
                               params={"scenario": scenario, "smoke": True},
                               axes=axes))
    # The pinned chaos regression seeds (tests/integration/
    # test_chaos_regressions.py) — each once exposed a real protocol bug,
    # so each must also be exactly reproducible.
    for mode, seed in (("evs", 9), ("evs", 2), ("evs", 14), ("evs", 23),
                       ("evs", 12), ("vs", 23)):
        cases.append(_chaos_case(mode, seed))
    # One storm carrying the observability-equivalence axis (PR 3's
    # claim) and the profiler-equivalence axis on top of determinism.
    cases.append(_chaos_case("vs", 7, axes=("obs", "profile"),
                             intensity=0.6))
    # Client-mode storms: the same pinned seeds driven by closed-loop
    # ClientSession fleets (repro.client) — session timers, failover
    # site picks and dedup suppression must all replay exactly.
    for mode, seed in (("evs", 2), ("vs", 23)):
        cases.append(_chaos_case(mode, seed, clients=6))
    # Endurance churn runs: the composed long-horizon schedule (rolling
    # restarts, partition storms, join/leave churn, stabilization) must
    # replay byte-for-byte too, including its availability timeline.
    for mode, seed in (("vs", 0), ("evs", 0)):
        cases.append(AuditCase(case_id=f"endurance:{mode}:{seed}",
                               kind="endurance",
                               params={"seed": seed, "mode": mode,
                                       "duration": 6.0},
                               axes=("profile",) if mode == "vs" else ()))
    # The logless reconfiguration backend (config-as-replicated-state,
    # docs/RECONFIG_BACKENDS.md): one pinned chaos storm and one
    # endurance churn run must replay byte-for-byte, like the EVS ones.
    # The variant-"b" sabotage hook (REPRO_AUDIT_SABOTAGE) perturbs the
    # seed for these kinds too, so the non-vacuity self-test covers them.
    cases.append(AuditCase(case_id="backend:logless:chaos", kind="chaos",
                           params={"seed": 9, "backend": "logless",
                                   "intensity": 0.5, "n_sites": 4,
                                   "db_size": 40, "duration": 1.5,
                                   "arrival_rate": 60.0}))
    cases.append(AuditCase(case_id="backend:logless:endurance",
                           kind="endurance",
                           params={"seed": 0, "backend": "logless",
                                   "duration": 6.0}))
    # Schedules pinned by the adversarial search (repro.search.pinned):
    # each is one exact genome whose replay — the very property the
    # search's corpus and minimal-repro artifacts rely on — must stay
    # byte-identical.  The variant-"b" sabotage hook perturbs the
    # genome's seed, so the non-vacuity self-test covers this kind too.
    for pinned_name in ("utd-flush-clobber", "shatter-corrupt-churn"):
        cases.append(AuditCase(case_id=f"schedule:{pinned_name}",
                               kind="schedule",
                               params={"pinned": pinned_name}))
    return {case.case_id: case for case in cases}


CASES: Dict[str, AuditCase] = _build_cases()


# ----------------------------------------------------------------------
# Digest collection
# ----------------------------------------------------------------------
def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _collect(cluster, tracer=None, schedule: Optional[List[str]] = None,
             ok: Optional[bool] = None,
             materials: bool = False) -> Dict[str, Any]:
    """Digest a finished run: state, histories, aborts, trace, counters.

    With ``materials=True`` the raw digested lines are included too (for
    divergence dumps and first-divergent-line reporting)."""
    state_lines = []
    for site in sorted(cluster.nodes):
        node = cluster.nodes[site]
        content = repr(node.db.store.content_digest()) if node.alive else "<down>"
        state_lines.append(f"{site} {node.status.value} {content}")
    history_lines = []
    for site in sorted(cluster.history.by_site):
        for event in cluster.history.by_site[site]:
            history_lines.append(
                f"{site} {event.time:.9f} {event.gid} {event.kind}"
            )
    abort_gids = sorted({e.gid for e in cluster.history.events
                         if e.kind == "abort"})
    commit_gids = {e.gid for e in cluster.history.events if e.kind == "commit"}
    payload: Dict[str, Any] = {
        "digests": {
            "state": _sha("\n".join(state_lines)),
            "history": _sha("\n".join(history_lines)),
            "aborts": _sha(repr(abort_gids)),
        },
        "counters": {
            "commits": len(commit_gids),
            "txn_aborts": len(abort_gids),
            "virtual_time": repr(cluster.sim.now),
            "events_processed": cluster.sim.events_processed,
            "messages_delivered": cluster.network.messages_delivered,
            "ok": ok,
        },
    }
    trace_lines: List[str] = []
    if tracer is not None:
        trace_lines = [str(event) for event in tracer.events]
        payload["digests"]["trace"] = _sha("\n".join(trace_lines))
    if schedule is not None:
        payload["digests"]["schedule"] = _sha("\n".join(schedule))
    if materials:
        payload["materials"] = {
            "state": state_lines,
            "history": history_lines,
            "aborts": [str(gid) for gid in abort_gids],
            "trace": trace_lines,
            "schedule": schedule or [],
        }
    return payload


def _flatten(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One flat {key: value} view over digests + counters, for
    comparisons against FULL_KEYS / PROTOCOL_KEYS."""
    flat: Dict[str, Any] = dict(payload.get("digests", {}))
    flat.update(payload.get("counters", {}))
    return flat


def _sabotaged(params: Dict[str, Any], variant: str) -> Dict[str, Any]:
    if variant == "b" and os.environ.get(SABOTAGE_ENV):
        params = dict(params)
        params["seed"] = params.get("seed", 0) + 100003
    return params


def execute_variant(case_id: str, variant: str,
                    materials: bool = False) -> Dict[str, Any]:
    """Run one (case, variant) cell and return its digest payload.

    Variants: ``a``/``b`` — two identical determinism runs (``b`` is the
    one the sabotage test hook perturbs); ``no_batching`` — batching
    layers disabled; ``obs`` — full observability attached; ``profile``
    — the deterministic sim-loop profiler attached.
    """
    case = CASES[case_id]
    if case.kind == "bench":
        from repro import bench

        result = bench.run_scenario(case.params["scenario"],
                                    smoke=case.params.get("smoke", True),
                                    batching=variant != "no_batching")
        cluster = result.cluster
        if cluster is None:
            return {"fleet_error": f"{case_id}: scenario returned no cluster"}
        return _collect(cluster, tracer=getattr(cluster, "tracer", None),
                        ok=result.completed, materials=materials)
    if case.kind == "chaos":
        from repro.faults.chaos import ChaosConfig, ChaosEngine

        params = _sabotaged(dict(case.params), variant)
        if variant == "no_batching":
            params["batching"] = False
        if variant == "obs":
            params["observe"] = True
        if variant == "profile":
            params["profile"] = True
        engine = ChaosEngine(ChaosConfig(**params))
        report = engine.run()
        schedule = [f"{time:.6f} {action} {detail}"
                    for time, action, detail in report.events]
        return _collect(engine.cluster, tracer=report.tracer,
                        schedule=schedule, ok=report.ok, materials=materials)
    if case.kind == "endurance":
        from repro.endurance import EnduranceConfig, EnduranceEngine

        params = _sabotaged(dict(case.params), variant)
        if variant == "no_batching":
            params["batching"] = False
        if variant == "obs":
            params["observe"] = True
        if variant == "profile":
            params["profile"] = True
        engine = EnduranceEngine(EnduranceConfig(**params))
        report = engine.run()
        schedule = [f"{time:.6f} {action} {detail}"
                    for time, action, detail in report.events]
        return _collect(engine.cluster, tracer=report.tracer,
                        schedule=schedule, ok=report.ok, materials=materials)
    if case.kind == "schedule":
        from dataclasses import replace as dc_replace

        from repro.search.executor import ScheduleExecutor
        from repro.search.pinned import PINNED

        genome = PINNED[case.params["pinned"]].genome
        params = _sabotaged({"seed": genome.seed}, variant)
        if params["seed"] != genome.seed:
            genome = dc_replace(genome, seed=params["seed"])
        executor = ScheduleExecutor(genome)
        report = executor.run()
        schedule = [f"{time:.6f} {action} {detail}"
                    for time, action, detail in report.events]
        return _collect(executor.cluster, tracer=report.tracer,
                        schedule=schedule, ok=report.ok, materials=materials)
    raise ValueError(f"unknown case kind {case.kind!r}")


# ----------------------------------------------------------------------
# Comparison and reporting
# ----------------------------------------------------------------------
@dataclass
class AuditFailure:
    case_id: str
    axis: str  # "determinism" | "batching" | "obs" | "profile" | "error" | "broken"
    detail: str
    repro: str
    diverging_keys: Tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"FAIL {self.case_id} [{self.axis}]: {self.detail}",
                 f"  repro: {self.repro}"]
        return "\n".join(lines)


@dataclass
class AuditOutcome:
    passed: List[str] = field(default_factory=list)
    failures: List[AuditFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"PASS {case}" for case in self.passed]
        lines.extend(failure.render() for failure in self.failures)
        verdict = ("determinism audit: PASS "
                   f"({len(self.passed)} cases)" if self.ok else
                   f"determinism audit: FAIL ({len(self.failures)} "
                   f"divergence(s) across {len(self.passed) + len({f.case_id for f in self.failures})} cases)")
        lines.append(verdict)
        return "\n".join(lines)


def _repro_command(case_id: str) -> str:
    return f"PYTHONPATH=src python -m repro audit --case {case_id}"


def _compare(case_id: str, axis: str, keys: Sequence[str],
             left: Dict[str, Any], right: Dict[str, Any],
             left_name: str, right_name: str) -> Optional[AuditFailure]:
    for payload, name in ((left, left_name), (right, right_name)):
        if "fleet_error" in payload:
            return AuditFailure(
                case_id=case_id, axis="error",
                detail=f"variant {name} crashed:\n{payload['fleet_error']}",
                repro=_repro_command(case_id),
            )
    flat_left, flat_right = _flatten(left), _flatten(right)
    diverging = tuple(
        key for key in keys
        if flat_left.get(key) != flat_right.get(key)
    )
    if not diverging:
        return None
    parts = []
    for key in diverging:
        parts.append(f"{key}: {left_name}={flat_left.get(key)!r} "
                     f"{right_name}={flat_right.get(key)!r}")
    return AuditFailure(
        case_id=case_id, axis=axis,
        detail=(f"runs '{left_name}' and '{right_name}' diverge on "
                f"{', '.join(diverging)}\n    " + "\n    ".join(parts)),
        repro=_repro_command(case_id),
        diverging_keys=diverging,
    )


def _variants_of(case: AuditCase) -> List[str]:
    variants = ["a", "b"]
    if "batching" in case.axes:
        variants.append("no_batching")
    if "obs" in case.axes:
        variants.append("obs")
    if "profile" in case.axes:
        variants.append("profile")
    return variants


def _clip(line: str, limit: int = 160) -> str:
    return line if len(line) <= limit else line[:limit] + "…"


def _first_divergence(left: List[str], right: List[str]) -> str:
    for index, (line_a, line_b) in enumerate(zip(left, right)):
        if line_a != line_b:
            return (f"first divergence at line {index}:\n"
                    f"      a: {_clip(line_a)}\n      b: {_clip(line_b)}")
    if len(left) != len(right):
        shorter, longer, name = ((left, right, "b") if len(left) < len(right)
                                 else (right, left, "a"))
        return (f"one run is a prefix of the other; first extra line "
                f"({name}, line {len(shorter)}): "
                f"{_clip(longer[len(shorter)])}")
    return "digests differ but materials are identical (digest-input bug?)"


def _dump_name(case_id: str, variant: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", case_id)
    return f"{safe}.{variant}.json"


def check_dump_dir(dump_dir: Optional[str], force: bool = False) -> None:
    """Refuse to write into a non-empty dump directory without ``force``.

    Divergence artifacts are only meaningful as a matched pair from one
    audit run; mixing them with leftovers of an earlier run (or letting
    stale ones get committed by accident) is exactly how confusing
    "divergences" end up in review.  Called by the CLI before the audit
    starts, so the refusal is loud and immediate.
    """
    if force or dump_dir is None or not os.path.isdir(dump_dir):
        return
    leftover = [name for name in sorted(os.listdir(dump_dir))
                if not name.startswith(".")]
    if leftover:
        raise ValueError(
            f"dump dir {dump_dir!r} already contains {len(leftover)} "
            f"file(s) (e.g. {leftover[0]!r}); stale divergence artifacts "
            f"from an earlier run would be clobbered or mixed in — move "
            f"them away or pass --force"
        )


def _write_dumps(case_id: str, failure: AuditFailure,
                 variant_pair: Tuple[str, str], dump_dir: str,
                 jobs: int) -> str:
    """Re-run the two diverging variants with full materials, write both
    artifacts, and report the first divergent line of the first
    diverging material-backed digest."""
    from repro.fleet import FleetTask, run_fleet

    tasks = [
        FleetTask(key=variant, kind="audit",
                  params={"case_id": case_id, "variant": variant,
                          "materials": True})
        for variant in variant_pair
    ]
    payloads = run_fleet(tasks, jobs=min(jobs, 2))
    os.makedirs(dump_dir, exist_ok=True)
    paths = []
    for variant in variant_pair:
        path = os.path.join(dump_dir, _dump_name(case_id, variant))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payloads[variant], handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    notes = [f"dumps: {paths[0]} vs {paths[1]}"]
    left = payloads[variant_pair[0]].get("materials", {})
    right = payloads[variant_pair[1]].get("materials", {})
    for key in failure.diverging_keys:
        material = _MATERIAL_OF.get(key)
        if material and (left.get(material) or right.get(material)):
            notes.append(f"{key} — " + _first_divergence(
                left.get(material, []), right.get(material, [])))
            break
    return "\n  ".join(notes)


def run_audit(case_ids: Optional[Sequence[str]] = None, jobs: int = 1,
              dump_dir: Optional[str] = None) -> AuditOutcome:
    """Run the audit over the given cases (default: all pinned cases).

    Each case's variant runs are dispatched as independent fleet tasks,
    so at ``jobs`` > 1 the two determinism runs land in *different*
    worker processes — a strictly stronger check than repeating in one
    interpreter.  On divergence, ``dump_dir`` receives one JSON artifact
    per diverging variant with the full digested material.
    """
    from repro.fleet import FleetTask, run_fleet

    if case_ids is None:
        selected = list(CASES)
    else:
        unknown = sorted(set(case_ids) - set(CASES))
        if unknown:
            raise ValueError(
                f"unknown audit case(s) {', '.join(unknown)}; "
                f"valid choices: {', '.join(CASES)}"
            )
        selected = list(case_ids)
    tasks = [
        FleetTask(key=f"{case_id}::{variant}", kind="audit",
                  params={"case_id": case_id, "variant": variant})
        for case_id in selected
        for variant in _variants_of(CASES[case_id])
    ]
    payloads = run_fleet(tasks, jobs=jobs)
    outcome = AuditOutcome()
    for case_id in selected:
        case = CASES[case_id]
        runs = {variant: payloads[f"{case_id}::{variant}"]
                for variant in _variants_of(case)}
        failures: List[Tuple[AuditFailure, Tuple[str, str]]] = []
        failure = _compare(case_id, "determinism", FULL_KEYS,
                           runs["a"], runs["b"], "a", "b")
        if failure:
            failures.append((failure, ("a", "b")))
        if "batching" in case.axes:
            failure = _compare(case_id, "batching", PROTOCOL_KEYS,
                               runs["a"], runs["no_batching"],
                               "a", "no_batching")
            if failure:
                failures.append((failure, ("a", "no_batching")))
        if "obs" in case.axes:
            failure = _compare(case_id, "obs", PROTOCOL_KEYS,
                               runs["a"], runs["obs"], "a", "obs")
            if failure:
                failures.append((failure, ("a", "obs")))
        if "profile" in case.axes:
            # The profiler wraps the event dispatch but must not change
            # a single event — full-key comparison, not just protocol.
            failure = _compare(case_id, "profile", FULL_KEYS,
                               runs["a"], runs["profile"], "a", "profile")
            if failure:
                failures.append((failure, ("a", "profile")))
        # A case that "reproducibly fails" is still broken: the pinned
        # scenarios must complete and pass their invariant checks.
        base = runs["a"]
        if "fleet_error" not in base and \
                base.get("counters", {}).get("ok") is False:
            failures.append((AuditFailure(
                case_id=case_id, axis="broken",
                detail="the pinned scenario itself did not complete/pass",
                repro=_repro_command(case_id),
            ), ("a", "b")))
        if not failures:
            outcome.passed.append(case_id)
            continue
        for failure, pair in failures:
            if dump_dir is not None and failure.diverging_keys:
                failure.detail += "\n  " + _write_dumps(
                    case_id, failure, pair, dump_dir, jobs)
            outcome.failures.append(failure)
    return outcome
