"""Cluster harness: build, drive and fault-inject a replicated database.

This is the main entry point of the library.  A cluster owns one
simulator, one network, N replicated-database sites, a history recorder
for the correctness checkers, and helpers to script crashes, recoveries,
partitions and merges (the fault schedule reproduces the view sequences
of the paper's Figures 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.checkers import HistoryRecorder, run_all_checks
from repro.gcs.config import GCSConfig
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.network import Network
from repro.reconfig.backends import ReconfigBackend, backend_by_name, resolve_backend
from repro.reconfig.strategies import TransferStrategy, strategy_by_name
from repro.replication.node import NodeConfig, ReplicatedDatabaseNode, SiteStatus
from repro.replication.transaction import Transaction
from repro.sim.core import Simulator


@dataclass
class FaultEvent:
    """One scheduled fault action."""

    time: float
    action: str  # "crash" | "recover" | "partition" | "heal"
    target: Any = None  # site id, or list of site groups for "partition"


class FaultSchedule:
    """A scripted sequence of crash / recover / partition / heal events."""

    def __init__(self, events: Optional[Iterable[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = sorted(events or [], key=lambda e: e.time)

    def crash(self, time: float, site: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "crash", site))
        return self

    def recover(self, time: float, site: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "recover", site))
        return self

    def partition(self, time: float, groups: Sequence[Sequence[str]]) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "partition", [list(g) for g in groups]))
        return self

    def heal(self, time: float) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "heal"))
        return self


class ClusterBuilder:
    """Fluent construction of a :class:`Cluster`.

    Parameters mirror the paper's experiment dimensions: number of
    sites, database size, transfer strategy, VS vs EVS mode, and the
    cost model.
    """

    def __init__(
        self,
        n_sites: int = 3,
        db_size: int = 100,
        seed: int = 0,
        strategy: Union[str, TransferStrategy] = "rectable",
        mode: str = "vs",
        gcs_config: Optional[GCSConfig] = None,
        node_config: Optional[NodeConfig] = None,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        initial_sites: Optional[Sequence[str]] = None,
        initial_value: Any = 0,
        batching: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self.n_sites = n_sites
        self.db_size = db_size
        self.seed = seed
        self.strategy = strategy
        self.mode = mode
        #: Reconfiguration backend name (repro.reconfig.backends).  When
        #: None the legacy ``mode`` selects the backend ("vs"/"evs"),
        #: keeping all pre-backend call sites byte-identical.
        self.backend = backend
        self.gcs_config = gcs_config
        self.node_config = node_config
        self.latency = latency or FixedLatency(0.001)
        self.loss_rate = loss_rate
        self.initial_sites = list(initial_sites) if initial_sites is not None else None
        self.initial_value = initial_value
        #: Master switch for the hot-path batching layers (network
        #: same-tick coalescing, sequencer OrderedBatch staging, bulk
        #: write application).  Batching is behaviour-preserving — the
        #: switch exists for the equivalence tests and for measuring the
        #: wall-clock speedup (``python -m repro bench``).
        self.batching = batching

    def site_names(self) -> Tuple[str, ...]:
        return tuple(f"S{i + 1}" for i in range(self.n_sites))

    def build(self) -> "Cluster":
        sim = Simulator(seed=self.seed)
        network = Network(sim, latency=self.latency, loss_rate=self.loss_rate,
                          coalesce=self.batching)
        universe = self.site_names()
        initial_db = {f"obj{i}": self.initial_value for i in range(self.db_size)}
        initial_sites = set(self.initial_sites if self.initial_sites is not None else universe)
        if isinstance(self.strategy, str):
            strategy = strategy_by_name(self.strategy)
        else:
            strategy = self.strategy

        gcs_config = self.gcs_config
        node_config = self.node_config
        if not self.batching:
            # Force every batching layer off, without mutating configs the
            # caller may reuse elsewhere.
            gcs_config = replace(gcs_config or GCSConfig(), sequencer_batching=False)
            node_config = replace(node_config or NodeConfig(), batch_writes=False)

        backend = resolve_backend(self.mode, self.backend)
        history = HistoryRecorder(clock=lambda: sim.now)
        cluster = Cluster(sim, network, {}, history, strategy, initial_db)
        cluster._gcs_config = gcs_config
        cluster._node_config = node_config
        cluster._mode = backend.gcs_mode
        cluster._backend = backend
        for site in universe:
            cluster._make_node(site, universe, has_initial_copy=site in initial_sites)
        cluster.universe = tuple(sorted(cluster.nodes))
        return cluster


class Cluster:
    """A running (or startable) replicated database cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: Dict[str, ReplicatedDatabaseNode],
        history: HistoryRecorder,
        strategy: TransferStrategy,
        initial_db: Dict[str, Any],
    ) -> None:
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.history = history
        self.strategy = strategy
        self.initial_db = initial_db
        self.universe = tuple(sorted(nodes))
        self._fault_schedule: Optional[FaultSchedule] = None
        self._gcs_config: Optional[GCSConfig] = None
        self._node_config = None
        self._mode = "vs"
        self._backend: ReconfigBackend = backend_by_name("vs")
        #: Observability handle (repro.obs.Observability), set by
        #: :meth:`attach_observability`.  None = no instrumentation cost.
        self.obs = None

    def attach_observability(self):
        """Attach the unified observability layer (metrics + spans).

        Idempotent; returns the :class:`repro.obs.Observability` handle.
        Call before :meth:`start` to capture the whole run.
        """
        from repro.obs import attach_observability

        return attach_observability(self)

    @property
    def backend_name(self) -> str:
        """Registry name of the reconfiguration backend in use."""
        return self._backend.name

    # ------------------------------------------------------------------
    # Node construction (used by the builder and by add_site)
    # ------------------------------------------------------------------
    def _make_node(self, site: str, universe, has_initial_copy: bool) -> ReplicatedDatabaseNode:
        node = ReplicatedDatabaseNode(
            self.sim,
            self.network,
            site,
            universe,
            gcs_config=self._gcs_config,
            config=self._node_config,
            mode=self._mode,
            has_initial_copy=has_initial_copy,
            initial_db=self.initial_db,
        )
        node.configure_reconfig(self._backend.make_manager(node, self.strategy))
        node.on_txn_event = self.history.record
        self.nodes[site] = node
        return node

    def add_site(self, site: str, start: bool = True) -> ReplicatedDatabaseNode:
        """Grow the group at runtime (dynamic groups, section 2.1).

        Requires ``GCSConfig(dynamic_universe=True,
        primary_policy="dynamic_linear")``.  The new site has no initial
        copy: it joins, receives a full state transfer and becomes an
        up-to-date member — while processing continues.
        """
        if self._gcs_config is None or not self._gcs_config.dynamic_universe:
            raise RuntimeError(
                "add_site requires a cluster built with "
                "GCSConfig(dynamic_universe=True)"
            )
        if site in self.nodes:
            raise ValueError(f"site {site} already exists")
        universe = tuple(sorted(set(self.universe) | {site}))
        node = self._make_node(site, universe, has_initial_copy=False)
        self.universe = tuple(sorted(self.nodes))
        if start:
            node.start()
        return node

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, only: Optional[Sequence[str]] = None) -> None:
        """Boot all (or the given) sites."""
        for site in only or self.universe:
            self.nodes[site].start()

    def apply_fault_schedule(self, schedule: FaultSchedule) -> None:
        self._fault_schedule = schedule
        # The fluent builders append without re-sorting, so the events
        # list may be out of time order; schedule_at with a past time
        # would fire immediately and reorder the scripted faults.
        for event in sorted(schedule.events, key=lambda e: e.time):
            if event.action == "crash":
                self.sim.schedule_at(event.time, self.crash, event.target)
            elif event.action == "recover":
                self.sim.schedule_at(event.time, self.recover, event.target)
            elif event.action == "partition":
                self.sim.schedule_at(event.time, self.partition, event.target)
            elif event.action == "heal":
                self.sim.schedule_at(event.time, self.heal)
            else:
                raise ValueError(f"unknown fault action {event.action!r}")

    def crash(self, site: str) -> None:
        self.nodes[site].crash()

    def recover(self, site: str) -> None:
        self.nodes[site].recover()

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Partition by *site*: transfer endpoints follow their site."""
        expanded = [[site for s in group for site in (s, f"{s}:xfer")] for group in groups]
        self.network.set_partitions(expanded)

    def heal(self) -> None:
        self.network.heal()

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def add_injector(self, injector) -> Any:
        """Install a network fault injector (see repro.faults.injectors)."""
        return self.network.add_injector(injector)

    def remove_injector(self, injector) -> None:
        self.network.remove_injector(injector)

    def clear_injectors(self) -> None:
        self.network.clear_injectors()

    def set_loss_rate(self, loss_rate: float) -> None:
        self.network.set_loss_rate(loss_rate)

    def install_storage_faults(self, model, sites: Optional[Sequence[str]] = None) -> None:
        """Attach a crash-time storage fault model (e.g. TornTailFaults)
        to the given sites (default: all)."""
        for site in sites or self.universe:
            self.nodes[site].storage_faults = model

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until(self, time: float) -> None:
        self.sim.run(until=time)

    def await_condition(
        self, predicate: Callable[[], bool], timeout: float = 30.0, step: float = 0.05
    ) -> bool:
        """Advance time in small steps until ``predicate()`` or timeout."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if predicate():
                return True
            self.sim.run(until=min(self.sim.now + step, deadline))
        return predicate()

    def await_all_active(self, sites: Optional[Sequence[str]] = None, timeout: float = 30.0) -> bool:
        """Wait until every (alive) given site is an ACTIVE member."""
        targets = sites or self.universe

        def ready() -> bool:
            return all(
                self.nodes[s].status is SiteStatus.ACTIVE
                for s in targets
                if self.nodes[s].alive
            )

        return self.await_condition(ready, timeout=timeout)

    def settle(self, duration: float = 0.5) -> None:
        """Convenience: let in-flight work finish."""
        self.run_for(duration)

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def node(self, site: str) -> ReplicatedDatabaseNode:
        return self.nodes[site]

    def active_sites(self) -> List[str]:
        return [s for s in self.universe if self.nodes[s].status is SiteStatus.ACTIVE]

    def submit_via(self, site: str, reads: List[str], writes: Dict[str, Any]) -> Transaction:
        return self.nodes[site].submit(reads, writes)

    def total_commits(self) -> int:
        return len({e.gid for e in self.history.events if e.kind == "commit"})

    def check(self) -> None:
        """Run the full correctness checker battery."""
        run_all_checks(self.history, list(self.nodes.values()))

    def metrics_summary(self) -> Dict[str, Any]:
        """One-call summary of a run: workload outcome, transfer volume,
        lock pressure and membership churn — what a dashboard would show."""
        from repro.workload.metrics import summarize_latencies

        commits = {e.gid for e in self.history.events if e.kind == "commit"}
        aborts = {e.gid for e in self.history.events if e.kind == "abort"}
        latencies: List[float] = []
        lock_wait = 0.0
        views = 0
        transfers_started = transfers_completed = 0
        objects_sent = bytes_sent = replayed = announcements = 0
        transfer_stalls = transfer_failovers = solicits = 0
        for node in self.nodes.values():
            lock_wait += sum(node.db.locks.wait_times)
            views = max(views, len(node.member.views_installed))
            manager = node.reconfig
            transfers_started += manager.transfers_started
            transfers_completed += manager.transfers_completed
            objects_sent += manager.objects_sent_total
            bytes_sent += manager.bytes_sent_total
            replayed += manager.replayed_transactions
            announcements += manager.announcements_sent
            transfer_stalls += manager.transfer_stalls
            transfer_failovers += manager.transfer_failovers
            solicits += manager.solicits_sent
        return {
            "virtual_time": self.sim.now,
            "commits": len(commits),
            "aborts": len(aborts),
            "lock_wait_total": lock_wait,
            "view_changes": views,
            "transfers_started": transfers_started,
            "transfers_completed": transfers_completed,
            "objects_transferred": objects_sent,
            "bytes_transferred": bytes_sent,
            "transactions_replayed": replayed,
            "announcements": announcements,
            "network_messages": self.network.messages_delivered,
            "network_dropped": self.network.messages_dropped,
            "network_duplicated": self.network.messages_duplicated,
            "transfer_stalls": transfer_stalls,
            "transfer_failovers": transfer_failovers,
            "transfer_solicits": solicits,
        }

    # ------------------------------------------------------------------
    def reconfig_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site reconfiguration counters, for the benchmarks."""
        stats = {}
        for site, node in self.nodes.items():
            manager = node.reconfig
            stats[site] = {
                "transfers_started": manager.transfers_started,
                "transfers_completed": manager.transfers_completed,
                "announcements_sent": manager.announcements_sent,
                "replayed": manager.replayed_transactions,
            }
        return stats
