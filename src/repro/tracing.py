"""Structured event tracing for protocol runs.

A :class:`Tracer` collects timestamped, categorised events from every
layer of a cluster — view changes, e-view changes, status transitions,
transfer lifecycle, creation-protocol steps — so that examples can print
readable timelines and tests can assert event *sequences* rather than
just end states.

Attach with :func:`attach_tracer`, which instruments a cluster's nodes
non-invasively (wrapping the existing callbacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    time: float
    site: str
    category: str  # "view" | "eview" | "status" | "transfer" | "txn" | "replay" | "creation" | "fault"
    kind: str
    detail: str = ""
    #: Optional structured payload (ids, sizes) for machine consumers —
    #: the span tracker and the exporters; ``detail`` stays the
    #: human-readable rendering.
    data: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        return f"{self.time:8.3f}  {self.site:4s}  {self.category:8s} {self.kind}" + (
            f"  {self.detail}" if self.detail else ""
        )


class Tracer:
    """Collects and queries trace events of one simulation run."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.events: List[TraceEvent] = []
        self.enabled = True
        self._listeners: List[Callable[[TraceEvent], None]] = []

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Subscribe to every event as it is emitted (the span tracker
        layers on the tracer this way)."""
        self._listeners.append(listener)

    def emit(self, site: str, category: str, kind: str, detail: str = "",
             data: Optional[Dict[str, Any]] = None) -> None:
        if self.enabled:
            event = TraceEvent(self._clock(), site, category, kind, detail, data)
            self.events.append(event)
            for listener in self._listeners:
                listener(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of(self, category: Optional[str] = None, site: Optional[str] = None,
           kind: Optional[str] = None) -> List[TraceEvent]:
        return [
            e for e in self.events
            if (category is None or e.category == category)
            and (site is None or e.site == site)
            and (kind is None or e.kind == kind)
        ]

    def kinds(self, category: str, site: Optional[str] = None) -> List[str]:
        return [e.kind for e in self.of(category, site)]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time < end]

    def timeline(self, limit: int = 0) -> str:
        """A printable timeline (all events, or the last ``limit``)."""
        events = self.events[-limit:] if limit else self.events
        return "\n".join(str(e) for e in events)

    def assert_order(self, *expectations: Tuple[str, str]) -> None:
        """Assert that events matching (category, kind) pairs occur in the
        given relative order (each after the previous match)."""
        index = 0
        for category, kind in expectations:
            while index < len(self.events):
                event = self.events[index]
                index += 1
                if event.category == category and event.kind == kind:
                    break
            else:
                raise AssertionError(
                    f"event {(category, kind)!r} not found in order; "
                    f"have: {[(e.category, e.kind) for e in self.events]}"
                )


def _transfer_snapshot(manager) -> Dict[str, int]:
    """Receiver-side transfer counters at this instant (embedded in
    transfer events so epoch analytics can diff them)."""
    return {
        "bytes_received": manager.bytes_received_total,
        "objects_received": manager.objects_received_total,
        "retransmissions": manager.transfer_retransmissions,
    }


def attach_tracer(cluster) -> Tracer:
    """Instrument every node of a cluster with a shared tracer.

    Wraps status transitions, view/e-view changes, transfer session
    lifecycle and creation-protocol steps.  Returns the tracer; the
    cluster keeps a reference in ``cluster.tracer``.
    """
    tracer = Tracer(clock=lambda: cluster.sim.now)
    cluster.tracer = tracer
    for site, node in cluster.nodes.items():
        _instrument_node(tracer, node)
    return tracer


def _instrument_node(tracer: Tracer, node) -> None:
    site = node.site_id
    # Direct channel for layers that emit through node.trace() — fault
    # injection, transfer retransmission/stall events.
    node.tracer = tracer

    # Status transitions -------------------------------------------------
    original_handle = node._handle_membership_change

    def traced_handle(view, states, eview=None):
        before = node.status
        original_handle(view, states, eview)
        tracer.emit(site, "view", "install",
                    f"{view} primary={node.member.is_primary()}")
        if node.status is not before:
            tracer.emit(site, "status", node.status.value, f"was {before.value}")

    node._handle_membership_change = traced_handle

    original_become_active = node._become_active

    def traced_become_active():
        original_become_active()
        tracer.emit(site, "status", "active", "up to date")

    node._become_active = traced_become_active

    # Fail-stop lifecycle: crash and restart are direct status writes
    # (no membership change fires at the crashed site), so wrap them to
    # keep the status timeline complete — the epoch extractor anchors
    # every crash-triggered epoch on these two events.
    original_crash = node.crash

    def traced_crash():
        was_alive = node.alive
        original_crash()
        if was_alive:
            tracer.emit(site, "status", "down", "crashed")

    node.crash = traced_crash

    original_recover = node.recover

    def traced_recover():
        original_recover()
        tracer.emit(site, "status", node.status.value, "restarted")

    node.recover = traced_recover

    # E-view changes ------------------------------------------------------
    if node.evs_member is not None:
        original_eview = node.on_eview_change

        def traced_eview(eview, reason, states, gseq=None):
            if reason != "view_change":
                tracer.emit(site, "eview", reason, repr(eview))
            original_eview(eview, reason, states, gseq)

        node.on_eview_change = traced_eview
        node.evs_member.app = node  # callbacks route through the node itself

    # Transfer lifecycle ---------------------------------------------------
    manager = node.reconfig
    if manager is None:
        return

    original_start = manager.start_session

    def traced_start(joiner, sync_gid):
        before = set(manager.sessions_out)
        original_start(joiner, sync_gid)
        if joiner not in before and joiner in manager.sessions_out:
            tracer.emit(site, "transfer", "start", f"-> {joiner} sync={sync_gid}",
                        data={"joiner": joiner, "sync": sync_gid})

    manager.start_session = traced_start

    original_cancel = manager.cancel_session

    def traced_cancel(joiner):
        if joiner in manager.sessions_out:
            tracer.emit(site, "transfer", "cancel", f"-> {joiner}",
                        data={"joiner": joiner})
        original_cancel(joiner)

    manager.cancel_session = traced_cancel

    original_complete = manager._on_transfer_complete

    def traced_complete(msg):
        original_complete(msg)
        if manager.joiner_session is not None and manager.joiner_session.complete:
            tracer.emit(site, "transfer", "complete",
                        f"baseline={msg.baseline_gid}",
                        data={"baseline": msg.baseline_gid,
                              **_transfer_snapshot(manager)})

    manager._on_transfer_complete = traced_complete

    # Joiner-side lifecycle: accepted offers and the replay that follows
    # a completed transfer.  The counter snapshots in the event data let
    # the epoch extractor compute per-epoch transfer economics (bytes,
    # retransmissions) as deltas, purely from the event stream.
    original_joiner = manager.on_new_joiner_session

    def traced_joiner():
        original_joiner()
        session = manager.joiner_session
        tracer.emit(site, "transfer", "accept",
                    data={"peer": None if session is None else session.peer,
                          **_transfer_snapshot(manager)})

    manager.on_new_joiner_session = traced_joiner

    original_replay = manager._start_replay

    def traced_replay():
        tracer.emit(site, "replay", "start")
        original_replay()

    manager._start_replay = traced_replay

    original_caught_up = manager._on_caught_up

    def traced_caught_up():
        tracer.emit(site, "replay", "caught_up",
                    data={"replayed": manager.replayed_transactions})
        original_caught_up()

    manager._on_caught_up = traced_caught_up

    original_creation = manager.check_creation

    def traced_creation(view):
        started_before = manager._creation_started
        original_creation(view)
        if manager._creation_started and not started_before:
            tracer.emit(site, "creation", "report", f"cover={node.db.cover_gid()}")

    manager.check_creation = traced_creation
