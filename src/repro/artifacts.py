"""Shared failure-evidence artifact bundles.

Every harness in this repository that can fail — the chaos storm, the
endurance churn engine, the cross-backend differential runner and the
adversarial schedule search — wants to leave the same evidence behind:
the fault schedule it ran, the full trace timeline, the availability
timeline, the per-site WAL contents, summary metrics, and a one-line
repro command.  The endurance engine grew that dump path first
(PR 6); this module is the shared implementation, so a failure bundle
looks identical no matter which harness produced it and new harnesses
get the whole evidence set from one call.

Only the sections whose inputs are supplied are written; callers pass
whatever their run kind has (a chaos storm has no availability
timeline, a differential report has no single cluster).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple


def write_text(out_dir: str, name: str, text: str) -> str:
    """Write one artifact file (newline-terminated) and return its path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") or not text else text + "\n")
    return path


def render_schedule(events: Sequence[Tuple[float, str, str]]) -> str:
    """The canonical one-line-per-decision schedule dump."""
    return "\n".join(f"{time:.6f} {action} {detail}"
                     for time, action, detail in events)


def render_availability_tsv(samples: Sequence[Tuple[float, int, bool]]) -> str:
    return "# bin_end\tcommits\tmaintenance\n" + "\n".join(
        f"{t:.6f}\t{c}\t{int(m)}" for t, c, m in samples)


def render_wal(cluster, site: str) -> str:
    """One site's WAL contents with the durable prefix marked."""
    storage = cluster.nodes[site].storage
    lines = [f"# {site}: {len(storage.log)} records, "
             f"durable prefix {storage.durable_length}, "
             f"{len(storage.checkpoint_image)} checkpointed objects, "
             f"{len(storage.outcome_image)} outcome rows"]
    for index, record in enumerate(storage.records()):
        durable = "D" if index < storage.durable_length else "-"
        lines.append(f"{index:6d} {durable} {record!r}")
    return "\n".join(lines)


def dump_run_artifacts(
    out_dir: str,
    *,
    title: str,
    repro_command: Optional[str] = None,
    schedule: Optional[Sequence[Tuple[float, str, str]]] = None,
    samples: Optional[Sequence[Tuple[float, int, bool]]] = None,
    tracer: Optional[Any] = None,
    metrics: Optional[Dict[str, Any]] = None,
    cluster: Optional[Any] = None,
    obs: Optional[Any] = None,
    extra: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Write one run's failure-evidence bundle to ``out_dir``.

    ``title`` heads ``repro.txt`` (the verdict line); ``repro_command``
    is the one-line invocation that replays the run.  ``extra`` adds
    caller-specific files (e.g. the search's ``schedule.json`` genome)
    verbatim.  Returns every path written, in a fixed order.
    """
    written: List[str] = []

    def emit(name: str, text: str) -> None:
        written.append(write_text(out_dir, name, text))

    repro_lines = [f"# {title}"]
    if repro_command:
        repro_lines.append(repro_command)
    emit("repro.txt", "\n".join(repro_lines))
    if schedule is not None:
        emit("schedule.txt", render_schedule(schedule))
    if samples is not None:
        emit("availability.tsv", render_availability_tsv(samples))
    if tracer is not None:
        emit("trace.txt", tracer.timeline())
    if metrics is not None:
        emit("metrics.txt", "\n".join(
            f"{key} {value}" for key, value in sorted(metrics.items())))
    if obs is not None:
        path = os.path.join(out_dir, "metrics.prom")
        obs.export_prometheus(path)
        written.append(path)
    if cluster is not None:
        for site in sorted(cluster.universe):
            emit(f"wal_{site}.log", render_wal(cluster, site))
    for name, text in (extra or {}).items():
        emit(name, text)
    return written
