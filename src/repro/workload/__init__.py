"""Workload generation and metrics for the experiment harness."""

from repro.workload.generator import LoadGenerator, WorkloadConfig
from repro.workload.metrics import ThroughputTimeline, summarize_latencies

__all__ = ["LoadGenerator", "ThroughputTimeline", "WorkloadConfig", "summarize_latencies"]
