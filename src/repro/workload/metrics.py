"""Metrics utilities for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.checkers import HistoryRecorder


@dataclass
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Mean / p50 / p95 / p99 / max of a latency sample (0s when empty).

    Percentiles use the nearest-rank definition: the p-th percentile is
    the smallest value such that at least ``p`` of the sample is <= it,
    i.e. ``ordered[ceil(p * n) - 1]``.  (The previous ``int(p * n)``
    over-indexed by one rank — for 100 samples it reported the 51st
    value as the median.)
    """
    if not latencies:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(latencies)
    n = len(ordered)

    def percentile(p: float) -> float:
        index = max(0, min(n - 1, math.ceil(p * n) - 1))
        return ordered[index]

    return LatencySummary(
        count=n,
        mean=sum(ordered) / n,
        p50=percentile(0.50),
        p95=percentile(0.95),
        p99=percentile(0.99),
        maximum=ordered[-1],
    )


class ThroughputTimeline:
    """Commits per time bucket, derived from the history recorder.

    Used by the benchmarks that show how transaction processing
    "continues unhindered" (or not) during a data transfer.
    """

    def __init__(self, history: HistoryRecorder, bucket: float = 0.1) -> None:
        self.bucket = bucket
        self.history = history

    def series(self, site: str = None) -> List[Tuple[float, int]]:
        """(bucket start, commits in bucket), gid-deduplicated unless a
        specific site is requested."""
        buckets: Dict[int, set] = {}
        for event in self.history.events:
            if event.kind != "commit":
                continue
            if site is not None and event.site != site:
                continue
            index = int(event.time / self.bucket)
            buckets.setdefault(index, set()).add(event.gid)
        if not buckets:
            return []
        last = max(buckets)
        return [(i * self.bucket, len(buckets.get(i, ()))) for i in range(last + 1)]

    def min_bucket_between(self, start: float, end: float, site: str = None) -> int:
        """Worst (lowest-commit) bucket in a window — the "dip" metric."""
        values = [
            count for t, count in self.series(site) if start <= t < end
        ]
        return min(values) if values else 0
