"""Synthetic OLTP workload generator.

Parameterised by exactly the dimensions the paper says reconfiguration
efficiency depends on (section 4): transaction throughput, read/write
ratio, database size (via the cluster) and access skew.  Transactions
are submitted to a randomly chosen ACTIVE site with exponential
inter-arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster import Cluster
from repro.replication.transaction import Transaction


@dataclass
class WorkloadConfig:
    """Workload shape.

    Attributes
    ----------
    arrival_rate:
        Mean transactions per (virtual) second across the cluster.
    reads_per_txn / writes_per_txn:
        Operation counts per transaction.  A write-only transaction has
        ``reads_per_txn = 0``; the benchmark sweeps derive read/write
        ratios from these two.
    hot_fraction / hot_access_probability:
        Skew: a ``hot_fraction`` of the database receives
        ``hot_access_probability`` of all accesses (80/20-style).
        Set ``hot_access_probability`` to 0 for uniform access.
    """

    arrival_rate: float = 200.0
    reads_per_txn: int = 2
    writes_per_txn: int = 2
    hot_fraction: float = 0.2
    hot_access_probability: float = 0.0
    #: Resubmit version-check-aborted transactions (the standard OLTP
    #: client behaviour the paper assumes when an optimistic reader
    #: loses): up to ``max_retries`` attempts per logical transaction.
    retry_aborted: bool = False
    max_retries: int = 3

    def validate(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.reads_per_txn < 0 or self.writes_per_txn < 0:
            raise ValueError("operation counts must be non-negative")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_access_probability <= 1.0:
            raise ValueError("hot_access_probability must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


class LoadGenerator:
    """Drives a cluster with the configured workload."""

    def __init__(self, cluster: Cluster, config: Optional[WorkloadConfig] = None) -> None:
        self.cluster = cluster
        self.config = config or WorkloadConfig()
        self.config.validate()
        self.transactions: List[Transaction] = []
        self.skipped = 0  # ticks with no active site to submit to
        self.retries = 0
        #: Aborts whose write-set may still have been sequenced when the
        #: contact site died (SITE_CRASHED/SITE_LEFT_PRIMARY after send):
        #: the open-loop generator cannot resolve them — only a client
        #: session with a durable request id can (repro.client).
        self.in_doubt = 0
        #: Aborts where the contact site died before the write-set was
        #: ever multicast: provably never executed anywhere.
        self.lost_to_crash = 0
        self._running = False
        self._objects = sorted(cluster.initial_db)
        self._value_counter = 0
        self._retry_scan_index = 0
        self._attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        rng = self.cluster.sim.rng
        delay = rng.expovariate(self.config.arrival_rate)
        self.cluster.sim.schedule(delay, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._submit_one()
        if self.config.retry_aborted:
            self._retry_scan()
        self._schedule_next()

    def _retry_scan(self) -> None:
        """Resubmit freshly aborted transactions (scanned incrementally)."""
        from repro.replication.transaction import AbortReason

        while self._retry_scan_index < len(self.transactions):
            txn = self.transactions[self._retry_scan_index]
            if not txn.done:
                break  # keep order: retry only the settled prefix
            self._retry_scan_index += 1
            if not txn.aborted:
                continue
            if txn.abort_reason in (AbortReason.SITE_CRASHED,
                                    AbortReason.SITE_LEFT_PRIMARY):
                # The site is gone.  Resubmitting blindly could execute
                # the transaction twice (the original may have been
                # sequenced before the crash), so the open-loop generator
                # must drop it — but count the loss instead of hiding it.
                # Failing over safely needs a durable request id; that is
                # what repro.client sessions provide.
                if txn.sent_at is not None:
                    self.in_doubt += 1
                else:
                    self.lost_to_crash += 1
                continue
            attempts = self._attempts.get(txn.txn_id, 1)
            if attempts > self.config.max_retries:
                continue
            active = self.cluster.active_sites()
            if not active:
                continue
            site = active[self.cluster.sim.rng.randrange(len(active))]
            try:
                retry = self.cluster.nodes[site].submit(list(txn.reads),
                                                        dict(txn.writes))
            except RuntimeError:
                continue
            self.retries += 1
            self._attempts[retry.txn_id] = attempts + 1
            self.transactions.append(retry)

    # ------------------------------------------------------------------
    def _pick_object(self) -> str:
        rng = self.cluster.sim.rng
        config = self.config
        n = len(self._objects)
        hot_count = max(1, int(n * config.hot_fraction))
        if config.hot_access_probability > 0 and rng.random() < config.hot_access_probability:
            return self._objects[rng.randrange(hot_count)]
        return self._objects[rng.randrange(n)]

    def _submit_one(self) -> None:
        rng = self.cluster.sim.rng
        active = self.cluster.active_sites()
        if not active:
            self.skipped += 1
            return
        site = active[rng.randrange(len(active))]
        reads: List[str] = []
        seen = set()
        for _ in range(self.config.reads_per_txn):
            obj = self._pick_object()
            if obj not in seen:
                seen.add(obj)
                reads.append(obj)
        writes: Dict[str, int] = {}
        for _ in range(self.config.writes_per_txn):
            self._value_counter += 1
            writes[self._pick_object()] = self._value_counter
        try:
            txn = self.cluster.nodes[site].submit(reads, writes)
        except RuntimeError:
            self.skipped += 1
            return
        self.transactions.append(txn)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def committed(self) -> List[Transaction]:
        return [t for t in self.transactions if t.committed]

    def aborted(self) -> List[Transaction]:
        return [t for t in self.transactions if t.aborted]

    def unresolved(self) -> List[Transaction]:
        return [t for t in self.transactions if not t.done]

    def abort_rate(self) -> float:
        done = [t for t in self.transactions if t.done]
        if not done:
            return 0.0
        return len(self.aborted()) / len(done)

    def latencies(self) -> List[float]:
        return [t.latency for t in self.committed() if t.latency is not None]

    def metrics(self) -> Dict[str, float]:
        """Workload-side counters, including the formerly silent losses.

        Recomputes ``in_doubt`` / ``lost_to_crash`` over the full
        transaction list so the numbers are accurate even when
        ``retry_aborted`` is off (the retry scan never runs then).
        """
        from repro.replication.transaction import AbortReason

        in_doubt = 0
        lost = 0
        for txn in self.transactions:
            if txn.aborted and txn.abort_reason in (
                    AbortReason.SITE_CRASHED, AbortReason.SITE_LEFT_PRIMARY):
                if txn.sent_at is not None:
                    in_doubt += 1
                else:
                    lost += 1
        self.in_doubt = in_doubt
        self.lost_to_crash = lost
        return {
            "workload.in_doubt": float(in_doubt),
            "workload.lost_to_crash": float(lost),
            "workload.skipped": float(self.skipped),
            "workload.retries": float(self.retries),
        }
