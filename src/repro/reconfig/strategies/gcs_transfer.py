"""Data transfer within the group communication system (section 4.1).

The baseline the paper argues *against*: the GCS performs the state
transfer during the view change, so (i) it "can only send the entire
database, because the system does not know which data has actually been
changed", and (ii) "the database would have to remain unchanged for the
entire data transfer".

We model it for the E9b ablation: the whole database is shipped
regardless of staleness, under a database-wide read lock held for the
*entire* transfer — i.e. every writer at the peer blocks until the last
batch is acknowledged, approximating the suspension of processing the
paper criticises.
"""

from __future__ import annotations

from repro.db.locks import DB_RESOURCE, LockMode
from repro.reconfig.strategies.base import TransferStrategy


class GcsLevelTransferStrategy(TransferStrategy):
    name = "gcs_level"

    def on_session_created(self, session) -> None:
        state = {"db_granted": False, "accepted": False}
        session.strategy_state = state

        def on_db_grant(_request) -> None:
            state["db_granted"] = True
            self._maybe_stream(session)

        session.db.locks.request(session.owner, DB_RESOURCE, LockMode.SHARED, on_db_grant)

    def begin(self, session, accept) -> None:
        session.strategy_state["accepted"] = True
        self._maybe_stream(session)

    def _maybe_stream(self, session) -> None:
        state = session.strategy_state
        if not (state["db_granted"] and state["accepted"]) or state.get("streamed"):
            return
        state["streamed"] = True
        session.node.call_when_quiescent_below(session.sync_gid, lambda: self._stream(session))

    def _stream(self, session) -> None:
        if not session.active:
            return
        for obj in session.db.store.objects():
            value, version = session.db.store.read(obj)
            session.queue_item(obj, value, version, release_after_ack=False)
        # The DB lock is *not* released per object: it is held until the
        # session completes (release_all_locks in _complete), which is
        # exactly the suspension this baseline is meant to exhibit.
        session.finish(session.sync_gid)
