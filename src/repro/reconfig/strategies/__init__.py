"""The data transfer strategies of sections 4.1 and 4.3-4.7.

Every strategy answers the same three questions differently:

* *what* to send — the whole database, only the objects the joiner's
  cover transaction proves stale, or round-by-round deltas;
* *how* to synchronize with concurrent transactions — long read locks
  (4.3/4.4), a briefly-held database lock downgraded via RecTable (4.5),
  a multiversion snapshot without any locks (4.6), or the lazy
  delimiter transaction (4.7);
* *what the joiner must enqueue* — everything after the synchronization
  point (eager strategies) or only the tail after the delimiter (lazy).

All sessions must be created synchronously inside a totally ordered
event handler (a view change, an e-view change, or a delivered
announcement), with ``sync_gid`` equal to that event's position in the
total order; the lock/snapshot acquisitions in ``on_session_created``
then land *before* any later-delivered writer, which is what makes the
transferred state exactly the state as of the synchronization point.
"""

from repro.reconfig.strategies.base import TransferStrategy
from repro.reconfig.strategies.full import FullTransferStrategy
from repro.reconfig.strategies.gcs_transfer import GcsLevelTransferStrategy
from repro.reconfig.strategies.lazy import LazyTransferStrategy
from repro.reconfig.strategies.log_filter import LogFilterStrategy
from repro.reconfig.strategies.rectable import RecTableStrategy
from repro.reconfig.strategies.version_check import VersionCheckStrategy

_REGISTRY = {
    cls.name: cls
    for cls in (
        FullTransferStrategy,
        VersionCheckStrategy,
        RecTableStrategy,
        LogFilterStrategy,
        LazyTransferStrategy,
        GcsLevelTransferStrategy,
    )
}


def strategy_by_name(name: str, **kwargs) -> TransferStrategy:
    """Instantiate a strategy from its registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; known: {sorted(_REGISTRY)}") from None


ALL_STRATEGY_NAMES = tuple(sorted(_REGISTRY))

__all__ = [
    "ALL_STRATEGY_NAMES",
    "FullTransferStrategy",
    "GcsLevelTransferStrategy",
    "LazyTransferStrategy",
    "LogFilterStrategy",
    "RecTableStrategy",
    "TransferStrategy",
    "VersionCheckStrategy",
    "strategy_by_name",
]
