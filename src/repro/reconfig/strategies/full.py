"""Transferring the entire database (section 4.3).

"Upon delivery of the view change, create transaction T_dt and request
in an atomic step read locks for all objects in the database.  [...]
Whenever a lock on object X is granted, read X and transfer it to the
joiner [...] As soon as the acknowledgment is received, release the
lock."

Mandatory for new sites; attractive when the database is small or most
of it changed while the joiner was down.  Reads continue unhindered on
the peer; writes are delayed exactly until "their" object's batch has
been acknowledged.
"""

from __future__ import annotations

from repro.db.locks import LockMode
from repro.db.partitions import partition_of, partition_resource
from repro.reconfig.strategies.base import TransferStrategy


class FullTransferStrategy(TransferStrategy):
    """Entire-database transfer.

    ``granularity="partition"`` uses coarse locks "e.g., on relations"
    (section 4.3): one read lock per data partition instead of one per
    object.  Fewer lock-manager operations, but each lock covers more
    data and is held until the whole session completes — the classic
    granularity trade-off.  Requires ``NodeConfig.partition_count > 0``.
    """

    name = "full"

    def __init__(self, granularity: str = "object") -> None:
        if granularity not in ("object", "partition"):
            raise ValueError(f"granularity must be 'object' or 'partition', got {granularity!r}")
        self.granularity = granularity

    def on_session_created(self, session) -> None:
        state = {"remaining": 0, "all_queued": False}
        session.strategy_state = state
        if self.granularity == "partition" and session.node.config.partition_count > 0:
            self._lock_by_partition(session)
            return
        objects = list(session.db.store.objects())
        state["remaining"] = len(objects)
        if not objects:
            state["all_queued"] = True
            return
        for obj in objects:
            session.request_read_lock(obj, self._make_grant_handler(session, obj))

    def _lock_by_partition(self, session) -> None:
        state = session.strategy_state
        partition_count = session.node.config.partition_count
        by_partition = {}
        for obj in session.db.store.objects():
            by_partition.setdefault(partition_of(obj, partition_count), []).append(obj)
        state["remaining"] = len(by_partition)
        if not by_partition:
            state["all_queued"] = True
            return
        for partition, objects in sorted(by_partition.items()):
            session.db.locks.request(
                session.owner,
                partition_resource(partition),
                LockMode.SHARED,
                self._make_partition_grant_handler(session, objects),
            )

    def _make_partition_grant_handler(self, session, objects):
        def on_grant(_request) -> None:
            if not session.active:
                return
            # The partition lock is held until the session completes
            # (released by release_all_locks), covering all its objects.
            for obj in objects:
                value, version = session.db.store.read(obj)
                session.queue_item(obj, value, version, release_after_ack=False)
            session.strategy_state["remaining"] -= 1
            if session.strategy_state["remaining"] == 0:
                session.strategy_state["all_queued"] = True
                self._maybe_finish(session)

        return on_grant

    def begin(self, session, accept) -> None:
        # Nothing cover-dependent: everything goes.  Items queued before
        # the accept arrived start flowing now; finish once all are in.
        self._maybe_finish(session)

    def _make_grant_handler(self, session, obj):
        def on_grant(_request) -> None:
            if not session.active:
                return
            value, version = session.db.store.read(obj)
            session.queue_item(obj, value, version, release_after_ack=True)
            session.strategy_state["remaining"] -= 1
            if session.strategy_state["remaining"] == 0:
                session.strategy_state["all_queued"] = True
                self._maybe_finish(session)

        return on_grant

    def _maybe_finish(self, session) -> None:
        if session.accepted and session.strategy_state["all_queued"]:
            session.finish(session.sync_gid)
