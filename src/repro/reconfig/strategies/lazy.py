"""Lazy data transfer (section 4.7).

The synchronization point is decoupled from the view change: the joiner
*discards* transaction messages while the peer ships data in rounds —
each round sends the objects updated during the previous one.  Only the
last round (entered when the residual set is small or a round budget is
exhausted) synchronizes with concurrent processing:

1. the peer announces the last round; the joiner starts enqueueing and
   reports the last gid it saw-and-discarded;
2. the peer picks the *delimiter transaction* d = max(joiner's last
   discarded gid, last gid delivered at the peer) and — in the same
   atomic step — requests the database read lock, so every transaction
   delivered later queues behind it;
3. once quiescent below d, the residual set is transferred under short
   object locks (inheriting the database lock's position) and the
   transfer completes with baseline d; the joiner replays enqueued
   transactions with gid > d.

Round boundaries are piggybacked on the last batch of each round, so a
replacement peer resumes from the joiner's reported progress instead of
restarting from scratch — the fail-over property the paper highlights.
"""

from __future__ import annotations

from repro.db.locks import DB_RESOURCE, LockMode
from repro.db.partitions import partition_names, partition_of
from repro.reconfig.strategies.base import NO_COVER, TransferStrategy


class LazyTransferStrategy(TransferStrategy):
    name = "lazy"
    lazy = True

    def __init__(self, round_threshold: int = None, max_rounds: int = None) -> None:
        self.round_threshold = round_threshold
        self.max_rounds = max_rounds

    def on_session_created(self, session) -> None:
        session.strategy_state = {
            "round": 1,
            "boundary_prev": None,  # state sent so far covers gids <= this
            "needs_full": False,
            "final": False,
        }

    # ------------------------------------------------------------------
    def begin(self, session, accept) -> None:
        state = session.strategy_state
        state["needs_full"] = accept.needs_full
        if accept.needs_full:
            state["boundary_prev"] = NO_COVER
        else:
            state["boundary_prev"] = max(accept.cover_gid, accept.resume_through)
        state["done_partitions"] = dict(accept.done_partitions)
        self._start_round(session)

    # ------------------------------------------------------------------
    def _thresholds(self, session):
        config = session.node.config
        threshold = self.round_threshold or config.lazy_round_threshold
        max_rounds = self.max_rounds or config.lazy_max_rounds
        return threshold, max_rounds

    def _start_round(self, session) -> None:
        if not session.active:
            return
        state = session.strategy_state
        g0 = session.node.last_processed_gid
        session.node.call_when_quiescent_below(g0, lambda: self._run_round(session, g0))

    def _run_round(self, session, g0: int) -> None:
        if not session.active:
            return
        state = session.strategy_state
        threshold, max_rounds = self._thresholds(session)
        partition_count = session.node.config.partition_count
        if state["round"] == 1 and partition_count > 0:
            # Section 4.7: the first round goes partition by partition,
            # with per-partition completion markers for fail-over resume.
            state["partition_queue"] = partition_names(partition_count)
            self._next_partition(session, g0)
            return
        if state["needs_full"] and state["round"] == 1:
            transfer_set = sorted(session.db.store.objects())
        else:
            transfer_set = self.stale_objects_since(session, state["boundary_prev"])
        # Termination checks I and II (section 4.7): enter the last,
        # synchronized round when the residual set is small enough or
        # the round budget is exhausted.
        if state["round"] > 1 and (len(transfer_set) <= threshold or state["round"] >= max_rounds):
            self._announce_last_round(session)
            return
        if state["round"] == 1 and not transfer_set:
            self._announce_last_round(session)
            return
        # Regular round: short "read committed" access, no held locks.
        for obj in transfer_set:
            value, version = session.db.read_committed(obj)
            session.queue_item(obj, value, version, release_after_ack=False)
        session.set_round_boundary(g0)
        state["boundary_prev"] = g0
        state["round"] += 1
        session.call_on_outbox_drained(lambda: self._start_round(session))

    # ------------------------------------------------------------------
    # Per-partition first round (section 4.7)
    # ------------------------------------------------------------------
    def _next_partition(self, session, g0: int) -> None:
        if not session.active:
            return
        state = session.strategy_state
        queue = state["partition_queue"]
        if not queue:
            state["boundary_prev"] = g0
            state["round"] = 2
            self._start_round(session)
            return
        partition = queue.pop(0)
        partition_count = session.node.config.partition_count
        done_through = state["done_partitions"].get(partition, NO_COVER)
        boundary = max(state["boundary_prev"], done_through)
        if state["needs_full"] and boundary == NO_COVER:
            candidates = session.db.store.objects()
        else:
            candidates = self.stale_objects_since(session, boundary)
        for obj in sorted(candidates):
            if partition_of(obj, partition_count) != partition:
                continue
            value, version = session.db.read_committed(obj)
            session.queue_item(obj, value, version, release_after_ack=False)

        def partition_done(partition=partition) -> None:
            session.announce_partition_complete(partition, g0)
            self._next_partition(session, g0)

        session.call_on_outbox_drained(partition_done)

    # ------------------------------------------------------------------
    # Last round (the delimiter transaction)
    # ------------------------------------------------------------------
    def _announce_last_round(self, session) -> None:
        from repro.reconfig.transfer import LastRoundStart

        session.strategy_state["final"] = True
        # Tracked: acknowledged by LastRoundReady, retransmitted on loss —
        # an unanswered announcement would otherwise hang the last round.
        session.send_tracked("last_round", LastRoundStart(session_id=session.session_id))

    def on_last_round_ready(self, session, msg) -> None:
        if not session.active:
            return
        state = session.strategy_state
        if state.get("delimiter") is not None:
            return  # duplicate
        delimiter = max(msg.last_discarded_gid, session.node.last_processed_gid)
        state["delimiter"] = delimiter

        def on_db_grant(request) -> None:
            state["db_ticket"] = request.ticket
            session.node.call_when_quiescent_below(
                delimiter, lambda: self._final_transfer(session, delimiter)
            )

        request = session.db.locks.request(
            session.owner, DB_RESOURCE, LockMode.SHARED, on_db_grant
        )
        state["db_ticket"] = request.ticket

    def _final_transfer(self, session, delimiter: int) -> None:
        if not session.active:
            return
        state = session.strategy_state
        transfer_set = self.stale_objects_since(session, state["boundary_prev"])
        state["remaining"] = len(transfer_set)
        for obj in transfer_set:
            session.db.locks.request(
                session.owner,
                obj,
                LockMode.SHARED,
                self._make_final_grant_handler(session, obj, delimiter),
                inherit_ticket=state["db_ticket"],
            )
        session.db.locks.release(session.owner, DB_RESOURCE)
        if not transfer_set:
            session.set_round_boundary(delimiter)
            session.finish(delimiter)

    def _make_final_grant_handler(self, session, obj: str, delimiter: int):
        def on_grant(_request) -> None:
            if not session.active:
                return
            value, version = session.db.store.read(obj)
            session.queue_item(obj, value, version, release_after_ack=True)
            state = session.strategy_state
            state["remaining"] -= 1
            if state["remaining"] == 0:
                session.set_round_boundary(delimiter)
                session.finish(delimiter)

        return on_grant
