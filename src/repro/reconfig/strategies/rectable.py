"""Restricting the set of objects to check via RecTable (section 4.5).

"Upon delivery of the view change, create T_dt, request a single read
lock on the entire database and wait until all transactions delivered
before the view change have terminated and their updates are registered
in RecTable.  [Compute the transfer set from RecTable], request read
locks on those objects and release the lock on the database."

Compared to section 4.4 this (i) does not scan the whole database,
(ii) never locks non-relevant objects for long, and (iii) does not rely
on version tags on objects (though our store has them anyway).
"""

from __future__ import annotations

from repro.db.locks import DB_RESOURCE, LockMode
from repro.reconfig.strategies.base import TransferStrategy


class RecTableStrategy(TransferStrategy):
    name = "rectable"

    def on_session_created(self, session) -> None:
        state = {"db_granted": False, "accept": None, "db_ticket": None}
        session.strategy_state = state

        def on_db_grant(request) -> None:
            state["db_granted"] = True
            state["db_ticket"] = request.ticket
            self._maybe_proceed(session)

        request = session.db.locks.request(
            session.owner, DB_RESOURCE, LockMode.SHARED, on_db_grant
        )
        state["db_ticket"] = request.ticket

    def begin(self, session, accept) -> None:
        session.strategy_state["accept"] = accept
        self._maybe_proceed(session)

    def _maybe_proceed(self, session) -> None:
        state = session.strategy_state
        if not (state["db_granted"] and state["accept"] is not None) or state.get("running"):
            return
        state["running"] = True
        session.node.call_when_quiescent_below(
            session.sync_gid, lambda: self._determine_and_stream(session)
        )

    def _determine_and_stream(self, session) -> None:
        if not session.active:
            return
        state = session.strategy_state
        accept = state["accept"]
        if accept.needs_full:
            transfer_set = sorted(session.db.store.objects())
        else:
            transfer_set = self.stale_objects_since(session, accept.cover_gid)
        state["remaining"] = len(transfer_set)
        # Downgrade: fine-grained locks inherit the database lock's queue
        # position, then the database lock is released (section 4.5).
        for obj in transfer_set:
            session.db.locks.request(
                session.owner,
                obj,
                LockMode.SHARED,
                self._make_grant_handler(session, obj),
                inherit_ticket=state["db_ticket"],
            )
        session.db.locks.release(session.owner, DB_RESOURCE)
        if not transfer_set:
            session.finish(session.sync_gid)

    def _make_grant_handler(self, session, obj):
        def on_grant(_request) -> None:
            if not session.active:
                return
            value, version = session.db.store.read(obj)
            session.queue_item(obj, value, version, release_after_ack=True)
            state = session.strategy_state
            state["remaining"] -= 1
            if state["remaining"] == 0:
                session.finish(session.sync_gid)

        return on_grant
