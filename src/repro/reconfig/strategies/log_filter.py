"""Filtering the log / multiversion transfer (section 4.6).

"We can avoid setting locks on the current database if the database
system maintains multiple object versions.  Transactions can update the
objects unhindered while the peer simply transfers the versions of the
objects that were current when the view change was delivered."

Our :class:`repro.db.database.Database` provides the multiversion
mechanism: a version snapshot registered at the synchronization point
preserves, for every object, the last version below the boundary the
first time a post-boundary writer overwrites it (the information a
physical redo log with after-images provides).  No transfer locks at
all; peer-side interference is zero.
"""

from __future__ import annotations

from repro.reconfig.strategies.base import TransferStrategy


class LogFilterStrategy(TransferStrategy):
    name = "log_filter"

    def on_session_created(self, session) -> None:
        session.strategy_state = {"limit": session.sync_gid + 1}
        session.db.begin_version_snapshot(session.strategy_state["limit"])

    def begin(self, session, accept) -> None:
        cover = self.effective_cover(accept)
        limit = session.strategy_state["limit"]
        # Writers below the boundary may still be in their write phase;
        # the snapshot is complete once they have terminated.
        session.node.call_when_quiescent_below(
            session.sync_gid, lambda: self._stream(session, cover, limit)
        )

    def _stream(self, session, cover: int, limit: int) -> None:
        if not session.active:
            return
        for obj, (value, version) in sorted(session.db.read_as_of(limit).items()):
            if version > cover:
                session.queue_item(obj, value, version, release_after_ack=False)
        session.finish(session.sync_gid)

    def on_session_closed(self, session) -> None:
        session.db.end_version_snapshot(session.strategy_state["limit"])
