"""Checking version numbers (section 4.4).

The joiner reports its *cover transaction* gid; since object versions
are writer gids and identical at all sites at a given logical time, the
peer transfers exactly the objects whose version exceeds the cover and
"ignores X and releases the lock immediately" otherwise.

Still scans (and briefly locks) the entire database — the shortcoming
the RecTable strategy removes.
"""

from __future__ import annotations

from repro.reconfig.strategies.base import TransferStrategy


class VersionCheckStrategy(TransferStrategy):
    name = "version_check"

    def on_session_created(self, session) -> None:
        state = {"remaining": 0, "all_queued": False, "cover": None, "granted": []}
        session.strategy_state = state
        objects = list(session.db.store.objects())
        state["remaining"] = len(objects)
        if not objects:
            state["all_queued"] = True
            return
        for obj in objects:
            session.request_read_lock(obj, self._make_grant_handler(session, obj))

    def begin(self, session, accept) -> None:
        state = session.strategy_state
        state["cover"] = self.effective_cover(accept)
        for obj in state.pop("granted"):
            self._process(session, obj)
        state["granted"] = None
        self._maybe_finish(session)

    def _make_grant_handler(self, session, obj):
        def on_grant(_request) -> None:
            if not session.active:
                return
            state = session.strategy_state
            if state["cover"] is None:
                # Lock granted before the accept arrived: remember it and
                # filter once we know the joiner's cover.
                state["granted"].append(obj)
                return
            self._process(session, obj)

        return on_grant

    def _process(self, session, obj: str) -> None:
        state = session.strategy_state
        value, version = session.db.store.read(obj)
        if version > state["cover"]:
            session.queue_item(obj, value, version, release_after_ack=True)
        else:
            session.release_lock(obj)
        state["remaining"] -= 1
        if state["remaining"] == 0:
            state["all_queued"] = True
            self._maybe_finish(session)

    def _maybe_finish(self, session) -> None:
        if session.accepted and session.strategy_state["all_queued"]:
            session.finish(session.sync_gid)
