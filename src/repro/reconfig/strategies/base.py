"""Strategy interface shared by all data transfer schemes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.reconfig.transfer import LastRoundReady, PeerTransferSession, TransferAccept

#: Sentinel cover used when the joiner has no database at all (a new
#: site): every object is stale relative to it, so filtered strategies
#: degrade to a full transfer, which the paper notes is "the only
#: solution in the case of a new site".
NO_COVER = -(2**60)


class TransferStrategy:
    """One data-transfer scheme; a single instance may drive many sessions.

    Per-session state lives in ``session.strategy_state`` (a dict created
    in :meth:`on_session_created`), never on the strategy itself.
    """

    #: Registry name (also sent in the TransferOffer).
    name = "abstract"
    #: Lazy strategies make the joiner discard messages until the last
    #: round; eager ones make it enqueue from the synchronization point.
    lazy = False

    def on_session_created(self, session: "PeerTransferSession") -> None:
        """Called synchronously at the synchronization point: acquire
        whatever locks or snapshots pin the state as of ``sync_gid``."""
        session.strategy_state = {}

    def begin(self, session: "PeerTransferSession", accept: "TransferAccept") -> None:
        """The joiner accepted: start (or continue) streaming."""
        raise NotImplementedError

    def on_last_round_ready(self, session: "PeerTransferSession", msg: "LastRoundReady") -> None:
        """Lazy only: the joiner switched to enqueue mode."""

    def on_session_closed(self, session: "PeerTransferSession") -> None:
        """Completion or cancellation: drop snapshots etc. (locks are
        released by the session itself)."""

    # ------------------------------------------------------------------
    @staticmethod
    def effective_cover(accept: "TransferAccept") -> int:
        return NO_COVER if accept.needs_full else accept.cover_gid

    @staticmethod
    def stale_objects_since(session: "PeerTransferSession", cover_gid: int):
        """Objects a joiner covered through ``cover_gid`` must receive.

        Answers from the RecTable when it is still complete for that
        cover.  When garbage collection has purged records above the
        joiner's cover — possible when a stabilization start regresses a
        site's cover below an earlier announcement, breaking the
        monotonicity section 4.5's GC rule relies on — the table would
        silently under-report, so fall back to scanning the store's
        version tags, which always name the last committed writer.
        """
        db = session.db
        rectable = db.rectable
        rectable.ensure_current()
        if rectable.can_answer(cover_gid):
            return sorted(
                obj for obj in rectable.changed_since(cover_gid) if obj in db.store
            )
        return sorted(
            obj for obj in db.store.objects() if db.store.version(obj) > cover_gid
        )
