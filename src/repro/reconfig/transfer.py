"""The peer <-> joiner data transfer channel and sessions.

The transfer runs point-to-point outside the group communication system
(section 4.2: "the data transfer need not occur through the group
communication platform but could, e.g., be performed via TCP"), on a
dedicated network endpoint per site.

A :class:`PeerTransferSession` lives at the peer; the concrete
:class:`repro.reconfig.strategies.TransferStrategy` decides *what* to
send and under which locks, while the session provides the shared
machinery: offer/accept handshake, batching with a single in-flight
batch, per-object marshalling cost, lock release on acknowledgement and
completion signalling.

A :class:`JoinerTransferSession` lives at the joining site; it installs
incoming batches, tracks lazy-transfer resume points for peer fail-over,
and replays the enqueued transaction messages once the transfer
completes (the synchronization-point rule of section 4.2/4.7).
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.db.locks import LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.node import ReplicatedDatabaseNode


def encode_batch_items(items: Tuple[Tuple[str, Any, int], ...]) -> bytes:
    """Compress a transfer batch for the wire (``transfer_compression``).

    Adjacent objects of a chunk usually share long name prefixes
    (``obj-000123``, ``obj-000124``, ...), so names are front-coded —
    each entry stores only (shared-prefix length, suffix) relative to
    the previous name — before the whole chunk is pickled and deflated.
    The resulting length is what the byte-accounting metrics count.
    """
    coded: List[Tuple[int, str, Any, int]] = []
    prev = ""
    for obj, value, version in items:
        shared = 0
        limit = min(len(prev), len(obj))
        while shared < limit and prev[shared] == obj[shared]:
            shared += 1
        coded.append((shared, obj[shared:], value, version))
        prev = obj
    return zlib.compress(pickle.dumps(coded, protocol=pickle.HIGHEST_PROTOCOL))


def decode_batch_items(blob: bytes) -> Tuple[Tuple[str, Any, int], ...]:
    """Inverse of :func:`encode_batch_items`."""
    coded = pickle.loads(zlib.decompress(blob))
    items: List[Tuple[str, Any, int]] = []
    prev = ""
    for shared, suffix, value, version in coded:
        obj = prev[:shared] + suffix
        items.append((obj, value, version))
        prev = obj
    return tuple(items)


# ----------------------------------------------------------------------
# Wire messages of the transfer channel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransferOffer:
    session_id: str
    peer: str
    strategy: str
    sync_gid: int  # transfer covers transactions with gid <= sync_gid (eager)
    #: Session creation time at the peer (shared simulation clock).  The
    #: transfer channel is not FIFO under fault injection: a duplicated
    #: or reordered offer from a *superseded* session can arrive after a
    #: newer session already completed, and without an ordering key the
    #: joiner would tear down the fresh state for a peer that no longer
    #: answers.  Offers not newer than the current session are ignored.
    created_at: float = 0.0


@dataclass(frozen=True)
class TransferAccept:
    session_id: str
    cover_gid: int
    resume_through: int  # lazy fail-over: data already held up to this gid
    needs_full: bool  # new site without any database copy (section 4.3)
    #: Locally committed gids above the cover: under plain reliable
    #: delivery these may be phantoms (section 2.3) and must be checked
    #: against the peer's history before any data is installed.
    committed_above_cover: Tuple[int, ...] = ()
    #: Per-partition resume points ((partition, complete-through gid)):
    #: partitions a previous peer already shipped in lazy round 1.
    done_partitions: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class PartitionComplete:
    """Lazy round 1 per data partition (section 4.7): the named partition
    is now complete at the joiner through ``boundary_gid``.  On peer
    fail-over the replacement "does not need to restart but simply
    continue the transfer for those partitions the joiner has not yet
    received"."""

    session_id: str
    partition: str
    boundary_gid: int


@dataclass(frozen=True)
class ReconcileNotice:
    """Peer -> joiner: these locally committed transactions never
    committed in the primary lineage; compensate them before installing
    the transferred state (section 2.3's reconciliation, ref [13])."""

    session_id: str
    phantom_gids: Tuple[int, ...]


@dataclass(frozen=True)
class ReconcileAck:
    """Joiner -> peer: compensation done, streaming may start."""

    session_id: str
    undone_writes: int


@dataclass(frozen=True)
class TransferBatch:
    session_id: str
    round_no: int
    items: Tuple[Tuple[str, Any, int], ...]  # (object, value, version)
    payload_bytes: int
    round_boundary: Optional[int] = None  # lazy: state complete through this gid
    #: Per-session monotone sequence number; lets the joiner recognise a
    #: retransmitted or duplicated batch (re-ack without re-counting) and
    #: the peer discard stale acks.
    seq: int = 0
    #: With ``transfer_compression`` the chunk travels as a front-coded,
    #: deflated blob instead of ``items`` (which is then empty), and
    #: ``payload_bytes`` counts the compressed size.
    blob: Optional[bytes] = None
    compressed: bool = False

    def decoded_items(self) -> Tuple[Tuple[str, Any, int], ...]:
        """The (object, value, version) triples, decompressing if needed."""
        if self.compressed:
            assert self.blob is not None
            return decode_batch_items(self.blob)
        return self.items


@dataclass(frozen=True)
class TransferBatchAck:
    session_id: str
    count: int
    seq: int = 0


@dataclass(frozen=True)
class LastRoundStart:
    """Lazy transfer: the peer announces the final round; the joiner must
    start enqueueing and report the last gid it saw-and-discarded."""

    session_id: str


@dataclass(frozen=True)
class LastRoundReady:
    session_id: str
    last_discarded_gid: int


@dataclass(frozen=True)
class TransferComplete:
    session_id: str
    baseline_gid: int  # the joiner's state now covers all gids <= baseline
    #: Sequence number of the last batch of the session.  The transfer
    #: channel does not guarantee FIFO under fault injection, so the
    #: completion notice could overtake the final batch; the joiner must
    #: not install the baseline before it has applied batches through
    #: this seq (0 = unknown, accept immediately).
    final_seq: int = 0
    #: Exactly-once outcome table rows whose deciding gid is at or below
    #: ``baseline_gid`` (``(client_id, seq, attempt, gid, committed)``).
    #: Outcomes above the baseline are excluded on purpose: the joiner
    #: replays those gids itself and must reach the same decisions.
    outcomes: Tuple[Tuple[str, int, int, int, bool], ...] = ()


@dataclass(frozen=True)
class TransferCompleteAck:
    """Joiner -> peer: the TransferComplete arrived.  Without this the
    peer cannot distinguish a lost completion notice from a slow joiner
    and would hold the session (and its locks) forever under a one-way
    link fault."""

    session_id: str


@dataclass(frozen=True)
class TransferSolicit:
    """Joiner -> prospective peer: my current transfer stalled (or no
    offer ever arrived); please start a session towards me.  This is the
    fail-over path that works *without* a view change — the stalled peer
    is still a group member, only its transfer channel is degraded."""

    joiner: str
    reason: str = "stall"


@dataclass(frozen=True)
class TransferDecline:
    """Addressee -> peer: I am ACTIVE and up to date, the transfer you
    offered is unnecessary.  Happens when a peer's view of the recipient's
    up-to-dateness lags (e.g. an announcement that was still in flight
    when the peer's flushed state was captured).  The peer must tear the
    session down *immediately* — sessions hold database locks from
    creation, and a session nobody will ever accept would otherwise pin
    those locks through the whole retransmission budget."""

    session_id: str
    joiner: str


@dataclass(frozen=True)
class CatchUpComplete:
    """Joiner -> peer: enqueued transactions replayed; under EVS the peer
    answers with the SubviewMerge that ends reconfiguration."""

    session_id: str
    joiner: str


# ----------------------------------------------------------------------
# Peer side
# ----------------------------------------------------------------------
class PeerTransferSession:
    """Peer-side transfer engine, driven by a strategy."""

    # Offers retry quickly: the first one can race ahead of the view
    # change installation at the joiner and be dropped.
    OFFER_RETRY = 0.05

    def __init__(
        self,
        node: "ReplicatedDatabaseNode",
        joiner: str,
        strategy,
        sync_gid: int,
        on_done: Optional[Callable[["PeerTransferSession"], None]] = None,
    ) -> None:
        self.node = node
        self.joiner = joiner
        self.strategy = strategy
        self.sync_gid = sync_gid
        self.on_done = on_done
        self.session_id = f"{node.site_id}->{joiner}@{node.sim.now:.6f}"
        self.owner = f"xfer:{self.session_id}"
        self.active = True
        self.accepted = False
        self.completed = False
        self.round_no = 1

        self._outbox: List[Tuple[str, Any, int]] = []
        self._release_on_ack: List[str] = []
        self._inflight: Optional[int] = None  # item count of the batch in flight
        self._inflight_release: List[str] = []
        self._finished_baseline: Optional[int] = None
        self._round_boundary: Optional[int] = None
        self._batch_cb: Optional[Callable[[], None]] = None
        self._pending_accept: Optional[TransferAccept] = None

        # Retransmission state: every point-to-point message that expects
        # an answer is *tracked* — resent with exponential backoff until
        # acknowledged, and the session declared stalled after
        # ``transfer_max_retries`` retransmissions (transfer hardening).
        self._tracked: Dict[str, Dict[str, Any]] = {}
        self._offer_attempts = 0
        self._batch_seq = 0
        self._last_acked_seq = 0
        self.retransmissions = 0
        self.stalled = False

        self.objects_sent = 0
        self.bytes_sent = 0
        self.started_at = node.sim.now
        self.finished_at: Optional[float] = None

        # Strategies may grab locks / snapshots synchronously right here,
        # at the synchronization point (view change or SubviewSetMerge).
        self.strategy.on_session_created(self)
        self._send_offer()

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    # How many offers go out at the fast OFFER_RETRY cadence before the
    # retry interval starts backing off exponentially.
    OFFER_FAST_ATTEMPTS = 5

    def _send_offer(self) -> None:
        if not self.active or self.accepted:
            return
        config = self.node.config
        if self._offer_attempts >= self.OFFER_FAST_ATTEMPTS + config.transfer_max_retries:
            self._fail_stalled("offer")
            return
        self._offer_attempts += 1
        self.node.send_transfer(
            self.joiner,
            TransferOffer(
                session_id=self.session_id,
                peer=self.node.site_id,
                strategy=self.strategy.name,
                sync_gid=self.sync_gid,
                created_at=self.started_at,
            ),
        )
        if self._offer_attempts <= self.OFFER_FAST_ATTEMPTS:
            delay = self.OFFER_RETRY
        else:
            # Constant cadence, no exponential growth: the offer is a
            # tiny idempotent handshake, and an exponentially backed-off
            # sender aliases against the heal windows of a flapping link
            # and can miss every single one — while the whole cluster
            # may be suspended waiting for exactly this transfer (a
            # creation companion).  The attempt budget still bounds it.
            delay = config.transfer_ack_timeout
        self.node.proc.after(delay, self._send_offer)

    # ------------------------------------------------------------------
    # Tracked (acknowledged) control sends with retransmission
    # ------------------------------------------------------------------
    def send_tracked(self, kind: str, message: Any) -> None:
        """Send a message that expects an acknowledgement; retransmit
        with exponential backoff until :meth:`ack_tracked` is called for
        the same ``kind``, declaring the session stalled after
        ``transfer_max_retries`` retransmissions."""
        self._tracked[kind] = {"msg": message, "attempts": 0, "event": None}
        self._transmit_tracked(kind)

    def _transmit_tracked(self, kind: str) -> None:
        entry = self._tracked.get(kind)
        if entry is None or not self.active:
            return
        config = self.node.config
        if entry["attempts"] > config.transfer_max_retries:
            self._fail_stalled(kind)
            return
        if entry["attempts"]:
            self.retransmissions += 1
            manager = self.node.reconfig
            if manager is not None:
                manager.transfer_retransmissions += 1
            self.node.trace(
                "fault", "xfer_retransmit",
                f"{kind} -> {self.joiner} attempt {entry['attempts'] + 1}",
            )
        self.node.send_transfer(self.joiner, entry["msg"])
        timeout = config.transfer_ack_timeout * (
            config.transfer_retry_backoff ** entry["attempts"]
        )
        entry["attempts"] += 1
        entry["event"] = self.node.proc.after(timeout, self._transmit_tracked, kind)

    def ack_tracked(self, kind: str) -> None:
        entry = self._tracked.pop(kind, None)
        if entry is not None and entry["event"] is not None:
            entry["event"].cancel()

    def _fail_stalled(self, kind: str) -> None:
        """Too many unanswered retransmissions: give up on this session
        so the manager can fail over to another peer (or the joiner can
        solicit one) without waiting for a view change."""
        if not self.active:
            return
        self.stalled = True
        self.node.trace("fault", "xfer_stalled",
                        f"session -> {self.joiner} gave up on {kind}")
        manager = self.node.reconfig
        self.cancel()
        if manager is not None:
            manager.on_peer_session_stalled(self)

    def on_accept(self, accept: TransferAccept) -> None:
        if not self.active or self.accepted:
            return
        self.accepted = True
        # Reconciliation gate (section 2.3): before shipping any state,
        # tell the joiner which of its above-cover commits never made it
        # into the primary lineage, and wait until it compensated them —
        # otherwise the phantom versions could outrank transferred ones.
        phantoms = self.db.verify_committed(accept.committed_above_cover)
        if phantoms:
            self._pending_accept = accept
            self.send_tracked(
                "reconcile",
                ReconcileNotice(session_id=self.session_id, phantom_gids=phantoms),
            )
            return
        self.strategy.begin(self, accept)
        self._maybe_send_batch()

    def on_reconcile_ack(self, ack: "ReconcileAck") -> None:
        accept = getattr(self, "_pending_accept", None)
        if not self.active or accept is None:
            return
        self.ack_tracked("reconcile")
        self._pending_accept = None
        self.strategy.begin(self, accept)
        self._maybe_send_batch()

    # ------------------------------------------------------------------
    # Strategy-facing helpers
    # ------------------------------------------------------------------
    @property
    def db(self):
        return self.node.db

    def request_read_lock(self, obj: str, on_grant) -> None:
        self.db.locks.request(self.owner, obj, LockMode.SHARED, on_grant)

    def release_lock(self, obj: str) -> None:
        self.db.locks.release(self.owner, obj)

    def release_all_locks(self) -> None:
        # cancel(), not release(): a session torn down while one of its
        # lock requests is still queued (e.g. the joiner died before
        # accepting and the database lock was contended) must also drop
        # that waiting request — otherwise it is granted to the dead
        # session later and the database lock is held forever, freezing
        # every writer on this site.
        self.db.locks.cancel(self.owner)

    def queue_item(self, obj: str, value: Any, version: int, release_after_ack: bool = False) -> None:
        """Queue one object for transfer; optionally keep its lock until
        the batch carrying it is acknowledged (sections 4.3/4.4)."""
        if not self.active:
            return
        self._outbox.append((obj, value, version))
        if release_after_ack:
            self._release_on_ack.append(obj)
        self._maybe_send_batch()

    def announce_partition_complete(self, partition: str, boundary_gid: int) -> None:
        """Lazy round 1: tell the joiner this partition is complete."""
        self.node.send_transfer(
            self.joiner,
            PartitionComplete(
                session_id=self.session_id, partition=partition, boundary_gid=boundary_gid
            ),
        )

    def set_round_boundary(self, gid: int) -> None:
        """Lazy transfer: the current round brings the joiner's state up
        to ``gid``; piggybacked on the round's last batch for fail-over."""
        self._round_boundary = gid

    def finish(self, baseline_gid: int) -> None:
        """Strategy is done queueing; complete once the outbox drains."""
        self._finished_baseline = baseline_gid
        self._maybe_send_batch()

    def call_on_outbox_drained(self, callback: Callable[[], None]) -> None:
        """Lazy transfer: run ``callback`` when the current round's items
        have all been sent and acknowledged."""
        self._batch_cb = callback
        self._maybe_send_batch()

    # ------------------------------------------------------------------
    # Batching engine (single in-flight batch, per-object marshalling cost)
    # ------------------------------------------------------------------
    def _maybe_send_batch(self) -> None:
        if not self.active or not self.accepted or self._inflight is not None:
            return
        if self._outbox:
            size = min(len(self._outbox), self.node.config.transfer_batch_size)
            items = tuple(self._outbox[:size])
            del self._outbox[:size]
            self._inflight = size
            self._inflight_release = self._release_on_ack[:size]
            del self._release_on_ack[:size]
            delay = size * self.node.config.transfer_obj_time
            self.node.proc.after(delay, self._transmit_batch, items)
            return
        # Outbox empty and nothing in flight.
        if self._batch_cb is not None:
            callback, self._batch_cb = self._batch_cb, None
            callback()
            return
        if self._finished_baseline is not None and not self.completed:
            self._complete()

    def _transmit_batch(self, items: Tuple[Tuple[str, Any, int], ...]) -> None:
        if not self.active:
            return
        blob: Optional[bytes] = None
        compressed = False
        if self.node.config.transfer_compression:
            blob = encode_batch_items(items)
            compressed = True
            payload_bytes = len(blob)
            wire_items: Tuple[Tuple[str, Any, int], ...] = ()
        else:
            payload_bytes = len(items) * self.node.config.object_size_bytes
            wire_items = items
        boundary = None
        if self._round_boundary is not None and not self._outbox:
            boundary = self._round_boundary
        self._batch_seq += 1
        self.objects_sent += len(items)
        self.bytes_sent += payload_bytes
        manager = self.node.reconfig
        if manager is not None:
            manager.objects_sent_total += len(items)
            manager.bytes_sent_total += payload_bytes
        obs = self.node.obs
        if obs is not None:
            obs.chunk_objects.observe(len(items))
            obs.chunk_bytes.observe(payload_bytes)
            obs.raw_bytes.inc(len(items) * self.node.config.object_size_bytes)
            obs.wire_bytes.inc(payload_bytes)
        self.send_tracked(
            "batch",
            TransferBatch(
                session_id=self.session_id,
                round_no=self.round_no,
                items=wire_items,
                payload_bytes=payload_bytes,
                round_boundary=boundary,
                seq=self._batch_seq,
                blob=blob,
                compressed=compressed,
            ),
        )

    def on_batch_ack(self, ack: TransferBatchAck) -> None:
        if not self.active or self._inflight is None:
            return
        if ack.seq:
            if ack.seq != self._batch_seq:
                return  # stale ack of an earlier (retransmitted) batch
            if ack.seq <= self._last_acked_seq:
                # Duplicated ack of the current batch: the first copy
                # already advanced the engine (the next transmission may
                # still be sitting in its marshalling delay, so
                # _batch_seq alone cannot tell the copies apart).
                return
            self._last_acked_seq = ack.seq
        self.ack_tracked("batch")
        self._inflight = None
        for obj in self._inflight_release:
            self.release_lock(obj)
        self._inflight_release = []
        self._maybe_send_batch()

    def on_last_round_ready(self, msg: LastRoundReady) -> None:
        if self.active:
            self.ack_tracked("last_round")
            self.strategy.on_last_round_ready(self, msg)

    def on_complete_ack(self) -> None:
        self.ack_tracked("complete")

    def on_catch_up_complete(self) -> None:
        self.ack_tracked("complete")
        if self.on_done is not None:
            self.on_done(self)

    # ------------------------------------------------------------------
    def _complete(self) -> None:
        self.completed = True
        self.finished_at = self.node.sim.now
        self.release_all_locks()
        self.strategy.on_session_closed(self)
        self.send_tracked(
            "complete",
            TransferComplete(session_id=self.session_id,
                             baseline_gid=self._finished_baseline,
                             final_seq=self._batch_seq,
                             outcomes=self.db.outcomes.snapshot_through(
                                 self._finished_baseline)),
        )

    def cancel(self) -> None:
        """Stop the session (joiner left, peer stalled, superseded)."""
        if not self.active:
            return
        self.active = False
        for entry in self._tracked.values():
            if entry["event"] is not None:
                entry["event"].cancel()
        self._tracked.clear()
        self.release_all_locks()
        self.strategy.on_session_closed(self)


# ----------------------------------------------------------------------
# Joiner side
# ----------------------------------------------------------------------
class JoinerTransferSession:
    """Joiner-side transfer state: installs batches, tracks resume info."""

    def __init__(self, node: "ReplicatedDatabaseNode", offer: TransferOffer,
                 resume_through: int,
                 done_partitions: Optional[Dict[str, int]] = None) -> None:
        self.node = node
        self.session_id = offer.session_id
        self.peer = offer.peer
        self.strategy_name = offer.strategy
        self.sync_gid = offer.sync_gid
        self.offer_time = offer.created_at
        self.resume_through = resume_through
        self.done_partitions: Dict[str, int] = dict(done_partitions or {})
        self.active = True
        self.complete = False
        self.baseline_gid: Optional[int] = None
        self.objects_received = 0
        self.bytes_received = 0
        self._last_batch_seq = 0

    def accept(self) -> None:
        needs_full = len(self.node.db.store) == 0
        cover = self.node.db.cover_gid()
        # Phantom candidates exist only under plain reliable delivery
        # (section 2.3): with uniform (safe) delivery a site can never
        # have committed something the primary lineage lacks.  Suspects
        # are the commits above the last provably synchronized point
        # (the baseline) — the cover itself may be poisoned by phantoms.
        if self.node.member.config.uniform:
            suspects: Tuple[int, ...] = ()
        else:
            suspects = self.node.db.committed_gids_above(self.node.db.baseline_gid)
        self.node.send_transfer(
            self.peer,
            TransferAccept(
                session_id=self.session_id,
                cover_gid=cover,
                resume_through=self.resume_through,
                needs_full=needs_full,
                committed_above_cover=suspects,
                done_partitions=tuple(sorted(self.done_partitions.items())),
            ),
        )

    def on_partition_complete(self, msg: PartitionComplete) -> None:
        if not self.active:
            return
        current = self.done_partitions.get(msg.partition, -(2**60))
        self.done_partitions[msg.partition] = max(current, msg.boundary_gid)
        manager = self.node.reconfig
        if manager is not None:
            manager.note_partition_complete(msg.partition, self.done_partitions[msg.partition])

    def on_reconcile_notice(self, notice: ReconcileNotice) -> None:
        if not self.active:
            return
        undone = self.node.db.reconcile_phantoms(notice.phantom_gids)
        self.node.send_transfer(
            self.peer,
            ReconcileAck(session_id=self.session_id, undone_writes=undone),
        )

    def on_batch(self, batch: TransferBatch) -> None:
        if not self.active:
            return
        items = batch.decoded_items()
        duplicate = bool(batch.seq) and batch.seq <= self._last_batch_seq
        if not duplicate:
            # Installing is idempotent anyway (the store keeps the newest
            # version), but the seq guard keeps counters honest under
            # duplication/retransmission.
            self._last_batch_seq = max(self._last_batch_seq, batch.seq)
            self.node.db.store.apply(items)
            # Transferred versions bypass the commit path, so register
            # them in the RecTable here — otherwise this site, acting as
            # peer for a *later* joiner, would silently omit objects it
            # only ever received via transfer (its RecTable rebuild at
            # recovery predates them).
            for obj, _value, version in items:
                if version >= 0:
                    self.node.db.rectable.register(obj, version)
            self.objects_received += len(items)
            self.bytes_received += batch.payload_bytes
            manager = self.node.reconfig
            if manager is not None:
                manager.objects_received_total += len(items)
                manager.bytes_received_total += batch.payload_bytes
            if batch.round_boundary is not None:
                self.resume_through = max(self.resume_through, batch.round_boundary)
        # Always (re-)ack — the previous ack may have been lost.
        self.node.send_transfer(
            self.peer,
            TransferBatchAck(
                session_id=self.session_id, count=len(items), seq=batch.seq
            ),
        )

    def on_complete(self, msg: TransferComplete) -> None:
        if not self.active:
            return
        self.complete = True
        self.baseline_gid = msg.baseline_gid
        self.resume_through = max(self.resume_through, msg.baseline_gid)

    def cancel(self) -> None:
        self.active = False
