"""Reconfiguration management: shared machinery plus the plain-VS manager.

:class:`BaseReconfigManager` owns everything both flavours share: the
peer-side session table, the joiner-side enqueue/replay machinery (the
synchronization-point rule of section 4.2), lazy-transfer resume state,
and the creation protocol after total failures (section 3).

:class:`VsReconfigManager` adds what *plain virtual synchrony* needs on
top (section 5 / Figure 1): because a member of a primary view is not
necessarily up-to-date, reconfiguration completion must be announced
explicitly (``UpToDateAnnouncement``), peers are (re-)elected from the
up-to-date set at every view change, and a primary view with no
up-to-date member must be detected and resolved via the creation
protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.gcs.view import View
from repro.replication.messages import CreationReport, TransactionMessage, UpToDateAnnouncement
from repro.reconfig.strategies.base import TransferStrategy
from repro.reconfig.transfer import (
    CatchUpComplete,
    JoinerTransferSession,
    LastRoundReady,
    LastRoundStart,
    PartitionComplete,
    PeerTransferSession,
    ReconcileAck,
    ReconcileNotice,
    TransferAccept,
    TransferBatch,
    TransferBatchAck,
    TransferComplete,
    TransferDecline,
    TransferCompleteAck,
    TransferOffer,
    TransferSolicit,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.recovery import RecoveryResult
    from repro.replication.node import ReplicatedDatabaseNode


def elect_peer(candidates: List[str], joiner: str, joiners: List[str]) -> Optional[str]:
    """Deterministic peer election "based on the compositions of the
    views" (section 4.2): joiners are spread round-robin over the
    up-to-date members, so concurrent transfers share the load."""
    if not candidates:
        return None
    candidates = sorted(candidates)
    joiners = sorted(joiners)
    return candidates[joiners.index(joiner) % len(candidates)]


class BaseReconfigManager:
    """State and behaviour shared by all reconfiguration backends."""

    #: Registry name of the backend this manager implements; overridden
    #: by subclasses and surfaced in reports/metrics.
    backend_name = "vs"

    def __init__(self, node: "ReplicatedDatabaseNode", strategy: TransferStrategy) -> None:
        self.node = node
        self.strategy = strategy
        self.sessions_out: Dict[str, PeerTransferSession] = {}
        self.joiner_session: Optional[JoinerTransferSession] = None
        self.enqueue_mode = False
        self.enqueued: List[Tuple[int, TransactionMessage]] = []
        self.last_seen_gid = -1
        self.replaying = False
        #: Joiner generation: bumped whenever the enqueued stream is
        #: invalidated (restart, stall, crash).  In-flight scheduled
        #: replay steps carry their generation and drop themselves when
        #: it no longer matches — otherwise a step scheduled before a
        #: restart could apply an old-stream message to the new state.
        self._join_generation = 0
        self.caught_up = False
        self.activation_authorized = False
        self._announced = False
        self._resume_through = -1
        self._done_partitions: Dict[str, int] = {}
        self._creation_reports: Dict[str, CreationReport] = {}
        self._creation_started = False
        # View the running creation round belongs to.  The round is
        # per-view: a new installation re-arms it, otherwise a site whose
        # round was interrupted (or that was the source in an *earlier*
        # total-failure episode) would never contribute its report again.
        self._creation_view: Optional[object] = None
        # Sites whose reports the running round is collecting (the
        # creation view's members; the whole universe when delivery is
        # not uniform — see check_creation).
        self._creation_members: Optional[frozenset] = None

        # Joiner-side stall watchdog (transfer hardening): time
        # of the last inbound message for the current joiner session; a
        # RECOVERING site with no progress for transfer_stall_timeout
        # cancels the session and solicits a different peer.
        self._last_transfer_progress: Optional[float] = None
        self._stalled_peers: Dict[str, float] = {}
        self._solicit_rr = 0

        self.transfers_started = 0
        self.transfers_completed = 0
        self.announcements_sent = 0
        self.replayed_transactions = 0
        self.objects_sent_total = 0
        self.bytes_sent_total = 0
        self.objects_received_total = 0
        self.bytes_received_total = 0
        self.transfer_stalls = 0
        self.transfer_failovers = 0
        self.solicits_sent = 0
        self.transfer_retransmissions = 0

    # ------------------------------------------------------------------
    # Node lifecycle hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called from the node's (re)start path: arm periodic watchdogs.

        The events are owned by ``node.proc``, so a crash cancels them."""
        self._last_transfer_progress = None
        interval = self.node.config.transfer_stall_timeout / 2.0
        self.node.proc.every(interval, self._stall_tick)

    def on_crash(self) -> None:
        for session in list(self.sessions_out.values()):
            session.cancel()
        self.sessions_out.clear()
        self._reset_joiner_state()

    def on_recover(self, recovery: "RecoveryResult") -> None:
        self._reset_joiner_state()
        self._resume_through = self.node.db.cover_gid()
        self._done_partitions = {}

    def on_demoted(self) -> None:
        """The site's view went stale (section 2.1's thin layer): stop
        all reconfiguration activity, like leaving the primary component."""
        self.cancel_all_sessions()
        if self.joiner_session is not None:
            self.joiner_session.cancel()
            self.joiner_session = None
        self._abort_replay()
        self.caught_up = False
        self.activation_authorized = False
        self._announced = False
        self._creation_started = False
        self._creation_view = None
        self._creation_members = None
        self._creation_reports = {}

    def note_partition_complete(self, partition: str, boundary_gid: int) -> None:
        """Record lazy round-1 progress so a replacement peer can skip
        already-shipped partitions (section 4.7)."""
        current = self._done_partitions.get(partition, -(2**60))
        self._done_partitions[partition] = max(current, boundary_gid)

    def restart_join(self) -> None:
        """The GCS skipped sequence numbers while we were recovering (we
        missed an intermediate view): the enqueued message stream has a
        hole, so the current transfer cannot be completed consistently.
        Drop it and wait for a fresh offer anchored at the new view —
        already-installed transfer data stays (it is only ever a valid
        prefix of the lineage's state)."""
        if self.joiner_session is not None:
            self.joiner_session.cancel()
            self.joiner_session = None
        self.enqueued.clear()
        self._abort_replay()
        self.caught_up = False
        self.activation_authorized = False
        self._announced = False

    def _reset_joiner_state(self) -> None:
        if self.joiner_session is not None:
            self.joiner_session.cancel()
        self.joiner_session = None
        self.enqueue_mode = False
        self.enqueued = []
        self.last_seen_gid = -1
        self._abort_replay()
        self.caught_up = False
        self.activation_authorized = False
        self._announced = False
        self._creation_reports = {}
        self._creation_started = False
        self._creation_view = None
        self._creation_members = None

    # ------------------------------------------------------------------
    # Joiner side: message enqueueing and replay (section 4.2)
    # ------------------------------------------------------------------
    def on_recovering_message(self, gid: int, message: TransactionMessage) -> None:
        self.last_seen_gid = gid
        if not self.enqueue_mode:
            return
        self.enqueued.append((gid, message))
        if len(self.enqueued) > self.node.enqueue_high_watermark:
            self.node.enqueue_high_watermark = len(self.enqueued)
        if self.caught_up and not self.replaying:
            # Already drained once but not active yet: keep up as we go.
            self._start_replay()

    def _on_transfer_complete(self, msg: TransferComplete) -> None:
        session = self.joiner_session
        if session is None or session.session_id != msg.session_id:
            return
        if msg.final_seq > session._last_batch_seq:
            # The completion notice overtook the session's final batch
            # (the transfer channel is not FIFO under fault injection).
            # Don't ack and don't install the baseline: the batch is in
            # flight and the peer retransmits the notice until we do.
            return
        # Always (re-)ack — the peer retransmits TransferComplete until
        # it hears this, and our previous ack may have been lost.
        self.node.send_transfer(
            session.peer, TransferCompleteAck(session_id=msg.session_id)
        )
        if session.complete:
            return  # duplicate delivery: baseline already installed
        session.on_complete(msg)
        db = self.node.db
        # Adopt the peer's settled client-request outcomes through the
        # baseline.  A *replace* (not a merge): an up-to-date peer's table
        # is complete, and any local entry it lacks was decided outside
        # the new primary lineage (a phantom or a rolled-back in-flight
        # delivery) and must not survive the rejoin.
        if not self.node.outcome_merge_disabled:
            db.outcomes.reset_to(msg.outcomes)
        # Persist the transferred state before moving the baseline, so a
        # crash right after recovers to a consistent (state, cover) pair.
        db.checkpoint()
        db.set_baseline(msg.baseline_gid)
        self._resume_through = max(self._resume_through, msg.baseline_gid)
        self.transfers_completed += 1
        self._start_replay()

    def _abort_replay(self) -> None:
        """Invalidate the enqueued stream and any in-flight replay step."""
        self._join_generation += 1
        self.replaying = False

    def _start_replay(self) -> None:
        if self.replaying:
            return
        self.replaying = True
        self._replay_next()

    def _replay_next(self) -> None:
        if not self.node.alive:
            return
        baseline = self.node.db.baseline_gid
        while self.enqueued and self.enqueued[0][0] <= baseline:
            self.enqueued.pop(0)  # already contained in the transferred state
        if not self.enqueued:
            self.replaying = False
            self.caught_up = True
            self._on_caught_up()
            return
        gid, message = self.enqueued.pop(0)
        delay = max(len(message.write_set), 1) * self.node.config.replay_op_time
        self.node.proc.after(delay, self._apply_replayed, gid, message,
                             self._join_generation)

    def _apply_replayed(self, gid: int, message: TransactionMessage,
                        generation: Optional[int] = None) -> None:
        if generation is not None and generation != self._join_generation:
            return  # stale step from before a join restart
        db = self.node.db
        node = self.node
        # Same exactly-once dedup as the live delivery path: the replayed
        # stream must reach the identical decisions the ACTIVE sites made
        # for these gids, including the suppressions.
        if message.request is not None and not node.dedup_disabled:
            if db.outcomes.is_duplicate(message.request):
                db.log_noop(gid)
                node.last_processed_gid = gid
                node.duplicates_suppressed += 1
                self.replayed_transactions += 1
                self._replay_next()
                return
        db.log_begin(gid)
        node.last_processed_gid = gid
        if not db.version_check(message.reads()):
            if message.request is not None:
                db.outcomes.record(message.request, gid, False)
            db.abort(gid, message.request)
            node._emit("abort", gid, message)
        else:
            if message.request is not None:
                db.outcomes.record(message.request, gid, True)
            writes = message.writes()
            db.tag_writes(gid, writes.keys())
            for obj, value in sorted(writes.items()):
                db.apply_write(gid, obj, value)
            db.commit(gid, message.request)
            node._emit("commit", gid, message)
        self.replayed_transactions += 1
        self._replay_next()

    def _on_caught_up(self) -> None:
        """Subclasses: announce (VS) or signal the peer (EVS), then
        :meth:`maybe_activate`."""
        raise NotImplementedError

    def maybe_activate(self) -> None:
        session = self.joiner_session
        transfer_done = session is not None and session.complete
        if (
            self.activation_authorized
            and transfer_done
            and self.caught_up
            and not self.replaying
            and not self.enqueued
        ):
            self.joiner_session = None
            self.enqueue_mode = False
            self.node._become_active()
            self.on_activated()

    def replay_pending(self) -> bool:
        """True while enqueued transaction messages have not been replayed.

        EVS structural up-to-dateness (primary-subview membership) must
        not outrank this: a joiner carried into the primary subview with
        an undrained replay queue is *structurally* current but *data*
        stale until the queue empties — treating it as up to date would
        silently skip the enqueued tail.
        """
        return self.replaying or bool(self.enqueued)

    def on_activated(self) -> None:
        """Hook: the node just became an up-to-date processing member."""

    def on_new_joiner_session(self) -> None:
        """Hook: a (new) transfer session towards this joiner was accepted."""

    # ------------------------------------------------------------------
    # Peer side helpers
    # ------------------------------------------------------------------
    def start_session(self, joiner: str, sync_gid: int) -> None:
        existing = self.sessions_out.get(joiner)
        if existing is not None and existing.active:
            return
        self.transfers_started += 1
        self.sessions_out[joiner] = PeerTransferSession(
            self.node, joiner, self.strategy, sync_gid, on_done=self._peer_session_done
        )

    def cancel_session(self, joiner: str) -> None:
        session = self.sessions_out.pop(joiner, None)
        if session is not None:
            session.cancel()

    def cancel_all_sessions(self) -> None:
        for joiner in list(self.sessions_out):
            self.cancel_session(joiner)

    def _peer_session_done(self, session: PeerTransferSession) -> None:
        """The joiner reported catch-up completion for this session."""
        self.sessions_out.pop(session.joiner, None)

    def on_peer_session_stalled(self, session: PeerTransferSession) -> None:
        """A peer-side session exhausted its retransmissions (the joiner
        never answered): drop it.  The joiner's own watchdog solicits a
        replacement peer; if the joiner is truly gone the next view
        change cleans up for good."""
        self.transfer_stalls += 1
        self.sessions_out.pop(session.joiner, None)

    # ------------------------------------------------------------------
    # Joiner-side stall detection and peer fail-over (no view change)
    # ------------------------------------------------------------------
    def _note_transfer_progress(self) -> None:
        self._last_transfer_progress = self.node.sim.now

    def _stall_tick(self) -> None:
        from repro.replication.node import SiteStatus

        node = self.node
        if node.status is not SiteStatus.RECOVERING:
            self._last_transfer_progress = None
            return
        now = node.sim.now
        if self._last_transfer_progress is None:
            self._last_transfer_progress = now
            return
        if now - self._last_transfer_progress < node.config.transfer_stall_timeout:
            return
        # A full stall window with no inbound transfer traffic: either
        # our session's peer went silent (one-way degradation) or the
        # elected peer's offers never reach us.  Fail over.
        stalled_peer = None
        if self.joiner_session is not None:
            stalled_peer = self.joiner_session.peer
            self._stalled_peers[stalled_peer] = now
            self.joiner_session.cancel()
            self.joiner_session = None
        self.transfer_stalls += 1
        node.trace("fault", "xfer_joiner_stall",
                   f"no transfer progress (peer {stalled_peer or 'none'})")
        self._last_transfer_progress = now
        self._solicit_transfer(exclude=stalled_peer)

    def _solicit_transfer(self, exclude: Optional[str] = None) -> None:
        """Ask an up-to-date member to start a transfer towards us,
        avoiding recently stalled peers while the cool-off lasts."""
        node = self.node
        now = node.sim.now
        cooloff = node.config.transfer_stall_timeout * 4.0
        candidates = sorted(
            site for site in node.member.view.members
            if site != node.site_id and node.site_utd.get(site, False)
        )
        fresh = [
            site for site in candidates
            if site != exclude and now - self._stalled_peers.get(site, -1e18) >= cooloff
        ]
        # Fall back to stale candidates (the degradation may have healed)
        # rather than not soliciting at all.
        pool = fresh or [site for site in candidates if site != exclude] or candidates
        if not pool:
            return
        target = pool[self._solicit_rr % len(pool)]
        self._solicit_rr += 1
        self.solicits_sent += 1
        node.trace("fault", "xfer_solicit", f"-> {target}")
        node.send_transfer(target, TransferSolicit(joiner=node.site_id))

    def _on_transfer_solicit(self, msg: TransferSolicit) -> None:
        """Peer side: a stalled joiner asks us to take over its transfer.

        Served regardless of the view-change-time peer election — the
        elected peer is exactly the one that went silent."""
        from repro.replication.node import SiteStatus

        node = self.node
        if node.status is not SiteStatus.ACTIVE or not node.up_to_date:
            return
        joiner = msg.joiner
        if joiner == node.site_id or joiner not in node.member.view.members:
            return
        existing = self.sessions_out.get(joiner)
        if existing is not None and existing.active:
            return  # already serving this joiner (offers may be in flight)
        self.transfer_failovers += 1
        node.trace("fault", "xfer_failover", f"serving solicited joiner {joiner}")
        self.start_session(joiner, sync_gid=node.last_processed_gid)

    # ------------------------------------------------------------------
    # Transfer channel dispatch
    # ------------------------------------------------------------------
    def on_transfer_message(self, src: str, payload: Any) -> None:
        from repro.replication.node import SiteStatus

        # Any inbound message for the current joiner session counts as
        # progress for the stall watchdog; fresh offers do too.
        if isinstance(payload, TransferOffer) or (
            self.joiner_session is not None
            and getattr(payload, "session_id", None) == self.joiner_session.session_id
        ):
            self._note_transfer_progress()
        if isinstance(payload, TransferSolicit):
            self._on_transfer_solicit(payload)
            return
        if isinstance(payload, TransferCompleteAck):
            session = self._session_by_id(payload.session_id)
            if session is not None:
                session.on_complete_ack()
            return
        if isinstance(payload, TransferOffer):
            if self.node.status not in (SiteStatus.RECOVERING, SiteStatus.SUSPENDED):
                if self.node.status is SiteStatus.ACTIVE and self.node.up_to_date:
                    # The peer thinks we need a transfer but we are fully
                    # caught up (its utd knowledge lagged ours).  Decline
                    # explicitly so the session — which holds database
                    # locks from creation — is torn down now instead of
                    # dangling through the retransmission budget.
                    self.node.trace(
                        "view", "xfer_decline",
                        f"declining offer from {payload.peer}: already active")
                    self.node.send_transfer(
                        payload.peer,
                        TransferDecline(session_id=payload.session_id,
                                        joiner=self.node.site_id))
                return
            current = self.joiner_session
            if current is not None and current.session_id == payload.session_id:
                if not current.complete:
                    current.accept()  # duplicate offer (retry): re-accept
                return
            if current is not None and payload.created_at <= current.offer_time:
                # A duplicated or reordered offer from a *superseded*
                # session: its peer session is long gone, so accepting
                # would cancel the current (possibly completed) session
                # in favour of one that can never finish.
                return
            if current is not None:
                current.cancel()
            # A replacement session's batches will rewrite the store to a
            # newer synchronization point: any replay of the old stream
            # must stop *now*, or it would check old messages against the
            # newer state.  (The enqueued messages stay: those above the
            # new baseline are still needed, the rest get skipped.)
            if self.replaying or self.caught_up:
                self._abort_replay()
                self.caught_up = False
            resume = max(self.node.db.cover_gid(), self._resume_through)
            self.joiner_session = JoinerTransferSession(
                self.node, payload, resume, done_partitions=self._done_partitions
            )
            if not self.strategy.lazy and not self.enqueue_mode:
                self.enqueue_mode = True
            self.on_new_joiner_session()
            self.joiner_session.accept()
            return
        if isinstance(payload, TransferDecline):
            session = self._session_by_id(payload.session_id)
            if session is not None and session.active:
                self.node.trace(
                    "view", "xfer_declined",
                    f"{payload.joiner} is up to date; dropping session")
                self.node.site_utd[payload.joiner] = True
                self.cancel_session(payload.joiner)
            return
        if isinstance(payload, TransferAccept):
            session = self._session_by_id(payload.session_id)
            if session is not None:
                session.on_accept(payload)
            return
        if isinstance(payload, PartitionComplete):
            if self.joiner_session is not None and (
                self.joiner_session.session_id == payload.session_id
            ):
                self.joiner_session.on_partition_complete(payload)
            return
        if isinstance(payload, ReconcileNotice):
            if self.joiner_session is not None and (
                self.joiner_session.session_id == payload.session_id
            ):
                self.joiner_session.on_reconcile_notice(payload)
            return
        if isinstance(payload, ReconcileAck):
            session = self._session_by_id(payload.session_id)
            if session is not None:
                session.on_reconcile_ack(payload)
            return
        if isinstance(payload, TransferBatch):
            if self.joiner_session is not None and (
                self.joiner_session.session_id == payload.session_id
            ):
                self.joiner_session.on_batch(payload)
            return
        if isinstance(payload, TransferBatchAck):
            session = self._session_by_id(payload.session_id)
            if session is not None:
                session.on_batch_ack(payload)
            return
        if isinstance(payload, LastRoundStart):
            if self.joiner_session is not None and (
                self.joiner_session.session_id == payload.session_id
            ):
                self.enqueue_mode = True
                self.node.send_transfer(
                    self.joiner_session.peer,
                    LastRoundReady(
                        session_id=payload.session_id,
                        last_discarded_gid=self.last_seen_gid,
                    ),
                )
            return
        if isinstance(payload, LastRoundReady):
            session = self._session_by_id(payload.session_id)
            if session is not None:
                session.on_last_round_ready(payload)
            return
        if isinstance(payload, TransferComplete):
            self._on_transfer_complete(payload)
            return
        if isinstance(payload, CatchUpComplete):
            session = self._session_by_id(payload.session_id)
            if session is not None:
                session.on_catch_up_complete()
            return

    def _session_by_id(self, session_id: str) -> Optional[PeerTransferSession]:
        for session in self.sessions_out.values():
            if session.session_id == session_id and session.active:
                return session
        return None

    # ------------------------------------------------------------------
    # Creation protocol (section 3)
    # ------------------------------------------------------------------
    def check_creation(self, view: View) -> None:
        """In a primary view with no up-to-date member, compare the
        surviving logs to elect the most current site (section 3).

        With uniform (safe) delivery the logs of any *primary* view
        suffice: no site can process — let alone expose — a transaction
        before every member of the delivering view holds it, so a
        majority's logs jointly cover every transaction any site ever
        processed.  Without uniformity a minority site may have
        processed ahead of the stability horizon, and only comparing
        *all* logs is safe (the paper's argument for why a majority is
        not enough).  Waiting for the full universe is exactly what a
        flapping straggler starves: the suspended majority would sit
        dark until the one absent site happens to be reachable."""
        members = frozenset(view.members)
        if self.node.config.creation_majority and self.node.member.config.uniform:
            if not view.is_primary(len(self.node.member.universe)):
                return
        elif members != set(self.node.member.universe):
            return
        if self._creation_started and self._creation_view == view.view_id:
            return
        self._creation_started = True
        self._creation_view = view.view_id
        self._creation_members = members
        self._creation_reports = {}
        db = self.node.db
        cover = db.cover_gid()
        report = CreationReport(
            site=self.node.site_id,
            cover_gid=cover,
            last_delivered_gid=self.node.last_processed_gid,
            committed_above_cover=db.committed_writes_above(cover),
            outcomes=db.outcomes.rows(),
        )
        self.node._multicast(report)

    def on_creation_report(self, report: CreationReport, gseq: int) -> None:
        self._creation_reports[report.site] = report
        if self._creation_members is None:
            return
        if set(self._creation_reports) != self._creation_members:
            return
        reports = self._creation_reports
        source = min(reports.values(), key=lambda r: (-r.cover_gid, r.site)).site
        if source != self.node.site_id:
            self._creation_reports = {}
            self._creation_started = False
            self._creation_view = None
            self._creation_members = None
            return
        # I am the source: apply every committed transaction above my
        # cover found in any log, in gid order.
        db = self.node.db
        my_cover = db.cover_gid()
        merged: Dict[int, Dict[str, Any]] = {}
        for rep in reports.values():
            for gid, writes in rep.committed_above_cover:
                if gid > my_cover:
                    merged.setdefault(gid, {}).update(dict(writes))
        applied_max = my_cover
        for gid in sorted(merged):
            for obj, value in sorted(merged[gid].items()):
                db.store.write(obj, value, gid)
            applied_max = gid
        # Complete the outcome table the same way: every settled client
        # request known to any surviving log is settled system-wide.
        for rep in reports.values():
            db.outcomes.merge(rep.outcomes)
        db.checkpoint()
        db.set_baseline(max(applied_max, my_cover))
        self._creation_reports = {}
        self.on_creation_source(gseq)

    def on_creation_source(self, gseq: int) -> None:
        """Hook: this site now holds the most current state system-wide."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hooks with default no-op implementations
    # ------------------------------------------------------------------
    def on_transaction_terminated(self, gid: int) -> None:
        """Called by the node whenever a delivered transaction commits."""

    def on_up_to_date(self, site: str) -> None:
        """An UpToDateAnnouncement for ``site`` was delivered."""

    def on_view_change(self, view: View, states: Dict[str, Dict[str, Any]]) -> None:
        """VS mode entry point."""

    def on_eview_change(self, eview, reason: str, states, gseq=None) -> None:
        """EVS mode entry point."""

    def on_config_message(self, payload, gseq: int) -> None:
        """A :class:`ConfigChange` was delivered (logless backend only)."""

    def flush_extra(self) -> Dict[str, Any]:
        """Extra keys a backend contributes to the view-change flush
        state (merged into the node's ``repl`` payload).  Must stay
        empty for the vs/evs backends so their flushed states — and
        therefore their audit digests — are byte-identical to the
        pre-backend code."""
        return {}


class VsReconfigManager(BaseReconfigManager):
    """Cascading reconfiguration under plain virtual synchrony.

    Implements the behaviour the paper's section 5 shows to be necessary
    (Figure 1): explicit status announcements, deterministic peer
    re-election when a peer leaves mid-transfer, transfer restart/resume,
    and detection of primary views without any up-to-date member.
    """

    def on_view_change(self, view: View, states: Dict[str, Dict[str, Any]]) -> None:
        from repro.replication.node import SiteStatus

        node = self.node
        status = node.status
        if status in (SiteStatus.STALLED, SiteStatus.DOWN):
            # Rule: leaving the primary component stops everything.
            self.cancel_all_sessions()
            if self.joiner_session is not None:
                self.joiner_session.cancel()
                self.joiner_session = None
            self._abort_replay()
            self.caught_up = False
            self._announced = False
            self.activation_authorized = False
            self._creation_started = False
            self._creation_view = None
            self._creation_members = None
            self._creation_reports = {}
            return

        if status is SiteStatus.ACTIVE:
            self._manage_peers(view)
        elif status is SiteStatus.RECOVERING:
            self.activation_authorized = False  # re-earned via announcement
            self._announced = False
            if node.member.last_install_missed > 0:
                self.restart_join()
            if not self.strategy.lazy:
                self.enqueue_mode = True
            if self.joiner_session is not None and self.joiner_session.peer not in view:
                # Peer failed mid-transfer: keep enqueued messages and
                # resume state; a newly elected peer will contact us.
                self.joiner_session.cancel()
                self.joiner_session = None
        elif status is SiteStatus.SUSPENDED:
            self.check_creation(view)

    def _manage_peers(self, view: View) -> None:
        node = self.node
        utd = sorted(s for s in view.members if node.site_utd.get(s, False))
        joiners = sorted(s for s in view.members if not node.site_utd.get(s, False))
        for joiner in list(self.sessions_out):
            if (joiner not in view.members or joiner not in joiners
                    or elect_peer(utd, joiner, joiners) != node.site_id):
                # Rule: joiner left, already became up to date (its
                # announcement can land before this view's peer review),
                # or was re-elected away.
                self.cancel_session(joiner)
            elif joiner in node.member.stale_members:
                # The joiner missed part of the lineage during this
                # transfer (it restarted its join): re-anchor the session
                # at the new view's synchronization point.
                self.cancel_session(joiner)
        sync_gid = node.member.to.base_gseq - 1
        for joiner in joiners:
            if elect_peer(utd, joiner, joiners) == node.site_id:
                self.start_session(joiner, sync_gid)

    def on_up_to_date(self, site: str) -> None:
        from repro.replication.node import SiteStatus

        node = self.node
        if site == node.site_id:
            if node.status is SiteStatus.ACTIVE:
                # Already active (creation source): the delivery of our
                # own announcement is the ordered point from which we can
                # serve the still-recovering members.
                self.on_activated()
            else:
                self.activation_authorized = True
                self.maybe_activate()
            return
        # A joiner I was serving announced completion.
        if site in self.sessions_out:
            self.cancel_session(site)
        if node.status is SiteStatus.RECOVERING and not self.strategy.lazy:
            self.enqueue_mode = True

    def on_activated(self) -> None:
        """On becoming active *as the only up-to-date member* (creation
        source), serve everyone else; otherwise the already-active
        members keep their view-change-time peer assignments."""
        node = self.node
        view = node.member.view
        utd = sorted(s for s in view.members if node.site_utd.get(s, False))
        if utd != [node.site_id]:
            return
        joiners = sorted(s for s in view.members if not node.site_utd.get(s, False))
        sync_gid = node.last_processed_gid
        for joiner in joiners:
            self.start_session(joiner, sync_gid)

    def _on_caught_up(self) -> None:
        if not self._announced:
            self._announced = True
            self.announcements_sent += 1
            self.node._multicast(
                UpToDateAnnouncement(site=self.node.site_id, cover_gid=self.node.db.cover_gid())
            )
        self.maybe_activate()

    def on_creation_source(self, gseq: int) -> None:
        # The source is up-to-date by construction; announce so everyone
        # else switches to RECOVERING and awaits a transfer from us.
        self.node._become_active()
        self._announced = True
        self.announcements_sent += 1
        self.node._multicast(
            UpToDateAnnouncement(site=self.node.site_id, cover_gid=self.node.db.cover_gid())
        )
