"""Logless reconfiguration: config as replicated state (arXiv:2102.11960).

MongoDB's dynamic reconfiguration stores the active configuration as an
ordinary replicated object — a member set plus a version counter —
instead of writing dedicated membership entries into the log.  This
module reproduces that idea on top of the paper's machinery:

* The configuration is a :class:`ReplicatedConfig` value held in
  volatile state on every site and re-learned from view-change flush
  states after a crash (the max version among the flushed copies wins —
  a site can only ever hold a *prefix* of the group's config history, so
  the maximum is the group's current config).
* Changes travel as :class:`~repro.replication.messages.ConfigChange`
  messages in the uniform total-order stream and apply with a
  compare-and-swap on the version: ``base_version`` must equal the
  current version or the proposal is stale and discarded — everywhere,
  deterministically, because every site sees the same message sequence.
* There are **no membership log entries**: delivered config writes are
  recorded as no-ops exactly like the vs backend records announcements,
  so the gid stream stays aligned across backends and the transfer
  strategies' ``sync_gid`` reasoning carries over unchanged.

The join protocol becomes: catch up via any transfer strategy (inherited
from :class:`~repro.reconfig.manager.VsReconfigManager` wholesale), then
propose ``add self`` instead of multicasting an
``UpToDateAnnouncement``.  The delivery of that config write is the
ordered synchronization point that authorizes activation — the same
role the vs backend gives the joiner's own announcement delivery.  A
conflicting concurrent change simply bumps the version past the
proposal's base; the joiner observes this (its own discarded proposal is
still delivered to it) and re-proposes against the new version.

Membership hygiene is the *coordinator*'s job: the smallest up-to-date
member of the current view proposes removals for config members that
crashed or went stale.  Removals are not required for safety — an add is
idempotent on membership and still authorizes its subject — they keep
the replicated config an honest mirror of who is actually serving.

After a total failure the creation protocol (section 3, inherited
unchanged) elects the most current site; that source proposes a
``replace`` with itself as the sole member, which flips the remaining
suspended sites to recovering — mirroring how the vs creation source's
announcement does it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.reconfig.manager import VsReconfigManager
from repro.replication.messages import ConfigChange


@dataclass(frozen=True)
class ReplicatedConfig:
    """The replicated configuration object: a versioned member set."""

    version: int = 0
    members: Tuple[str, ...] = ()


class LoglessReconfigManager(VsReconfigManager):
    """Reconfiguration via config-as-replicated-state (logless backend).

    Runs on the plain-VS membership layer; everything about transfer
    sessions, enqueue/replay, stall failover and the creation round is
    inherited.  Only the *membership bookkeeping* differs: explicit
    announcements are replaced by CAS'd config writes.
    """

    backend_name = "logless"

    def __init__(self, node, strategy) -> None:
        super().__init__(node, strategy)
        self.config = ReplicatedConfig()
        #: Base version of our in-flight add-self proposal (None when no
        #: proposal is outstanding for the current join attempt).
        self._add_proposed_version: Optional[int] = None
        self._add_attempts = 0
        self.config_proposals_sent = 0
        self.config_changes_applied = 0
        self.config_conflicts = 0

    # ------------------------------------------------------------------
    # Config state: flush, adoption, proposal
    # ------------------------------------------------------------------
    def flush_extra(self) -> Dict[str, Any]:
        return {
            "config_version": self.config.version,
            "config_members": self.config.members,
        }

    def _adopt_flushed_config(self, states: Dict[str, Dict[str, Any]]) -> None:
        """Adopt the highest-version config among the flushed states.

        Any site's volatile copy is a prefix of the group's config
        history (a site that missed deliveries missed config writes
        too), so the maximum version in a flush — which is common
        knowledge at the view change — is the current config."""
        best = self.config
        for state in states.values():
            repl = state.get("repl") or {}
            version = repl.get("config_version")
            if version is not None and version > best.version:
                best = ReplicatedConfig(version, tuple(repl["config_members"]))
        self.config = best

    def _propose(self, add=(), remove=(), replace=None, reason="") -> None:
        self.config_proposals_sent += 1
        # Config writes are this backend's announcements: count them as
        # such so cross-backend metric summaries stay comparable.
        self.announcements_sent += 1
        self.node._multicast(
            ConfigChange(
                proposer=self.node.site_id,
                base_version=self.config.version,
                add=tuple(add),
                remove=tuple(remove),
                replace=None if replace is None else tuple(replace),
                reason=reason,
            )
        )

    def _propose_add_self(self) -> None:
        self._add_proposed_version = self.config.version
        self._add_attempts += 1
        self._propose(add=(self.node.site_id,), reason="join")

    def _maybe_repropose_add(self) -> None:
        """Re-propose add-self after our previous proposal lost a CAS
        race.  Triggered from config deliveries, so a lost race (which
        by definition delivered *some* change) always re-arms it."""
        from repro.replication.node import SiteStatus

        node = self.node
        if (
            node.status is SiteStatus.RECOVERING
            and self.caught_up
            and self._announced
            and not self.activation_authorized
            and self._add_proposed_version is not None
            and self._add_proposed_version != self.config.version
            and self._add_attempts < node.config.logless_repropose_limit
        ):
            self._propose_add_self()

    # ------------------------------------------------------------------
    # Delivery: the CAS apply rule
    # ------------------------------------------------------------------
    def on_config_message(self, payload: ConfigChange, gseq: int) -> None:
        if payload.base_version != self.config.version:
            self.config_conflicts += 1
            self._maybe_repropose_add()
            return
        if payload.replace is not None:
            members = tuple(sorted(payload.replace))
        else:
            merged = set(self.config.members)
            merged.difference_update(payload.remove)
            merged.update(payload.add)
            members = tuple(sorted(merged))
        self.config = ReplicatedConfig(self.config.version + 1, members)
        self.config_changes_applied += 1
        self._apply_membership_effects(payload, members)
        self._maybe_repropose_add()

    def _apply_membership_effects(
        self, change: ConfigChange, members: Tuple[str, ...]
    ) -> None:
        from repro.replication.node import SiteStatus

        node = self.node
        me = node.site_id
        joined = (
            tuple(change.replace) if change.replace is not None else change.add
        )
        # Config membership is the backend's up-to-date set.
        for site in joined:
            node.site_utd[site] = True
        for site in change.remove:
            node.site_utd[site] = False
        if change.replace is not None:
            for site in list(node.site_utd):
                if site not in members:
                    node.site_utd[site] = False

        if me in joined:
            if node.status is SiteStatus.ACTIVE:
                # Creation source / bootstrap coordinator: the delivery
                # of our own config write is the ordered point from
                # which we serve the still-recovering members.
                self.on_activated()
            else:
                self._add_proposed_version = None
                self.activation_authorized = True
                self.maybe_activate()
        for site in joined:
            # A joiner we were serving is now a config member: its
            # transfer completed (possibly via another peer).
            if site != me and site in self.sessions_out:
                self.cancel_session(site)
        if (
            any(site != me for site in joined)
            and node.status is SiteStatus.RECOVERING
            and not self.strategy.lazy
        ):
            self.enqueue_mode = True
        if (
            node.status is SiteStatus.SUSPENDED
            and members
            and me not in members
        ):
            # Someone (e.g. the creation-protocol source) wrote a config
            # with serving members: we can recover from them.
            node.status = SiteStatus.RECOVERING

    # ------------------------------------------------------------------
    # Joiner / source hooks (vs announcements replaced by config writes)
    # ------------------------------------------------------------------
    def _on_caught_up(self) -> None:
        if not self._announced:
            self._announced = True
            self._propose_add_self()
        self.maybe_activate()

    def on_creation_source(self, gseq: int) -> None:
        self.node._become_active()
        self._announced = True
        self._propose(replace=(self.node.site_id,), reason="creation")

    def on_up_to_date(self, site: str) -> None:
        """No-op: the logless backend never multicasts announcements, so
        the only announcement-driven path left is the node-side cover
        bookkeeping, which is backend-independent."""

    # ------------------------------------------------------------------
    # View changes: adopt flushed config, then coordinator repair
    # ------------------------------------------------------------------
    def on_view_change(self, view, states: Dict[str, Dict[str, Any]]) -> None:
        self._adopt_flushed_config(states)
        super().on_view_change(view, states)
        self._coordinator_repair(view)

    def _coordinator_repair(self, view) -> None:
        """The smallest up-to-date member reconciles the config with the
        installed view: add serving members the config misses (also the
        bootstrap path — the initial config is empty), drop members that
        left the view or were identified stale by the flush."""
        from repro.replication.node import SiteStatus

        node = self.node
        if node.status is not SiteStatus.ACTIVE:
            return
        utd = sorted(s for s in view.members if node.site_utd.get(s, False))
        if not utd or utd[0] != node.site_id:
            return
        current = set(self.config.members)
        add = tuple(s for s in utd if s not in current)
        remove = tuple(
            sorted(
                s
                for s in current
                if s not in view.members or s in node.member.stale_members
            )
        )
        if add or remove:
            self._propose(add=add, remove=remove, reason="repair")

    # ------------------------------------------------------------------
    # Lifecycle: the config is volatile state
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.config = ReplicatedConfig()
        self._add_proposed_version = None
        self._add_attempts = 0

    def restart_join(self) -> None:
        super().restart_join()
        self._add_proposed_version = None
        self._add_attempts = 0

    def _reset_joiner_state(self) -> None:
        super()._reset_joiner_state()
        self._add_proposed_version = None
        self._add_attempts = 0


__all__ = ["LoglessReconfigManager", "ReplicatedConfig"]
