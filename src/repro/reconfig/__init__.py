"""Online reconfiguration: data transfer strategies and managers.

This package implements section 4 (the suite of data transfer
strategies) and section 5 (cascading reconfigurations) of the paper:

* :mod:`repro.reconfig.transfer` — the point-to-point transfer channel
  between peer and joiner ("the data transfer need not occur through the
  group communication platform but could, e.g., be performed via TCP");
* :mod:`repro.reconfig.strategies` — the five database-level transfer
  strategies (sections 4.3-4.7) plus the GCS-level baseline the paper
  rejects (section 4.1);
* :mod:`repro.reconfig.manager` — cascading reconfiguration under plain
  virtual synchrony, including the explicit up-to-date announcement
  sub-protocol that plain VS requires (section 5's Figure 1 analysis)
  and the creation protocol after a total failure (section 3);
* :mod:`repro.reconfig.evs_manager` — the EVS-based manager implementing
  the rules of section 5.2 (Subview-SetMerge starts the transfer,
  SubviewMerge is the final synchronization point);
* :mod:`repro.reconfig.logless` — an alternative backend that keeps the
  member configuration as replicated state in the total-order stream
  (versioned config object, compare-and-swap apply rule) instead of
  membership log entries;
* :mod:`repro.reconfig.backends` — the registry the cluster builder,
  CLI and conformance harness select backends from
  (docs/RECONFIG_BACKENDS.md).
"""

from repro.reconfig.backends import (
    ALL_BACKEND_NAMES,
    ReconfigBackend,
    backend_by_name,
    resolve_backend,
)
from repro.reconfig.evs_manager import EvsReconfigManager
from repro.reconfig.logless import LoglessReconfigManager, ReplicatedConfig
from repro.reconfig.manager import VsReconfigManager
from repro.reconfig.strategies import (
    FullTransferStrategy,
    GcsLevelTransferStrategy,
    LazyTransferStrategy,
    LogFilterStrategy,
    RecTableStrategy,
    TransferStrategy,
    VersionCheckStrategy,
    strategy_by_name,
)

__all__ = [
    "ALL_BACKEND_NAMES",
    "EvsReconfigManager",
    "FullTransferStrategy",
    "GcsLevelTransferStrategy",
    "LazyTransferStrategy",
    "LogFilterStrategy",
    "LoglessReconfigManager",
    "RecTableStrategy",
    "ReconfigBackend",
    "ReplicatedConfig",
    "TransferStrategy",
    "VersionCheckStrategy",
    "VsReconfigManager",
    "backend_by_name",
    "resolve_backend",
    "strategy_by_name",
]
