"""Pluggable reconfiguration backends.

A *backend* bundles the two decisions that together define how the
cluster reconfigures itself online:

* which GCS membership layer the node runs (``gcs_mode``): plain
  virtual synchrony (``"vs"``) or Enriched View Synchrony (``"evs"``,
  section 5.2 of the paper); and
* which reconfiguration manager drives joins, transfer sessions,
  activation, and the creation protocol on top of it.

Three backends ship today:

``vs``
    The paper's section 5.1 baseline: plain virtual synchrony with
    explicit ``UpToDateAnnouncement`` membership log entries.
``evs``
    The paper's section 5.2 protocol: up-to-dateness is structural
    (primary-subview membership), announcements are replaced by subview
    merges.
``logless``
    Logless reconfiguration in the style of MongoDB (arXiv:2102.11960):
    the active configuration is replicated *state* — a versioned member
    set written through the total-order stream via ``ConfigChange``
    compare-and-swap messages — with no dedicated membership log
    entries.  Joiners catch up via the ordinary transfer strategies and
    activate when the config write that adds them is delivered.

All three expose the same contract (see ``docs/RECONFIG_BACKENDS.md``):
the manager returned by :meth:`ReconfigBackend.make_manager` is a
:class:`repro.reconfig.manager.BaseReconfigManager`, and the full
invariant battery (``repro.checkers.run_all_checks``) must hold on any
of them under the conformance suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ReconfigBackend:
    """One named reconfiguration strategy: membership layer + manager."""

    name: str
    #: GCS membership layer the node instantiates: ``"vs"`` or ``"evs"``.
    gcs_mode: str
    #: ``(node, strategy) -> BaseReconfigManager``
    manager_factory: Callable
    description: str

    def make_manager(self, node, strategy):
        return self.manager_factory(node, strategy)


def _vs_manager(node, strategy):
    from repro.reconfig.manager import VsReconfigManager

    return VsReconfigManager(node, strategy)


def _evs_manager(node, strategy):
    from repro.reconfig.evs_manager import EvsReconfigManager

    return EvsReconfigManager(node, strategy)


def _logless_manager(node, strategy):
    from repro.reconfig.logless import LoglessReconfigManager

    return LoglessReconfigManager(node, strategy)


_REGISTRY = {
    backend.name: backend
    for backend in (
        ReconfigBackend(
            name="vs",
            gcs_mode="vs",
            manager_factory=_vs_manager,
            description="plain virtual synchrony with explicit "
            "up-to-date announcements (section 5.1)",
        ),
        ReconfigBackend(
            name="evs",
            gcs_mode="evs",
            manager_factory=_evs_manager,
            description="Enriched View Synchrony: structural "
            "up-to-dateness via subview merges (section 5.2)",
        ),
        ReconfigBackend(
            name="logless",
            gcs_mode="vs",
            manager_factory=_logless_manager,
            description="logless reconfiguration: versioned config as "
            "replicated state in the total-order stream "
            "(arXiv:2102.11960)",
        ),
    )
}

ALL_BACKEND_NAMES = tuple(sorted(_REGISTRY))


def backend_by_name(name: str) -> ReconfigBackend:
    """Look up a backend from its registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def resolve_backend(mode: str, backend: Optional[str]) -> ReconfigBackend:
    """Resolve the effective backend from a (mode, backend) pair.

    ``backend`` wins when given; otherwise the legacy ``mode`` names the
    backend directly ("vs" / "evs"), which keeps every pre-backend call
    site byte-identical in behaviour.
    """
    return backend_by_name(backend if backend is not None else mode)


__all__ = [
    "ALL_BACKEND_NAMES",
    "ReconfigBackend",
    "backend_by_name",
    "resolve_backend",
]
