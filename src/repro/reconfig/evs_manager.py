"""Reconfiguration using Enriched View Synchrony (section 5.2).

The manager encodes the paper's handling rules:

I.   On a view change:
     1. for every subview-set other than the primary's, a deterministic
        peer in the primary subview issues Subview-SetMerge "whenever
        appropriate";
     2. if a peer left, the newly elected peer either issues the merge
        (the old peer died before initiating it) or *resumes* the data
        transfer (joiner already in the peer's subview-set);
     3. transfers to joiners that left the view stop;
     4. a site that left the primary subview stops processing and stops
        its transfers.
II.  On a Subview-SetMerge e-view change: the peer starts the data
     transfer to every site of each newly merged subview.
III. On a SubviewMerge e-view change: the merged sites are up-to-date;
     the peer issues it once every site of the subview has caught up.

Implementation note: merge requests are totally ordered, but a request
issued against identities that a concurrently delivered merge rewrote is
dropped by the EVS layer as a no-op.  Every e-view change therefore ends
in a *reconciliation pass* that re-derives pending work from the current
structure; racing re-issues are themselves no-ops, so the system makes
progress without duplicating merges.

The key property (benchmark E2 measures exactly this): the up-to-date
bookkeeping that plain VS needs explicit announcements for is
*structural* here — "the notion of up-to-date member depends on the
membership of the primary subview, not of the primary view".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.gcs.evs import EView, SubviewId
from repro.reconfig.manager import BaseReconfigManager
from repro.reconfig.transfer import CatchUpComplete, PeerTransferSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.node import ReplicatedDatabaseNode


def elect_for(candidates, index: int) -> Optional[str]:
    """Deterministic choice of a primary-subview member for task #index."""
    candidates = sorted(candidates)
    if not candidates:
        return None
    return candidates[index % len(candidates)]


class EvsReconfigManager(BaseReconfigManager):
    """Section 5.2's reconfiguration rules, driven by e-view changes."""

    backend_name = "evs"

    def __init__(self, node: "ReplicatedDatabaseNode", strategy) -> None:
        super().__init__(node, strategy)
        self._pending_svs_merges: Set[SubviewId] = set()
        self._caught_up_joiners: Set[str] = set()
        self._sv_merges_requested: Set[SubviewId] = set()
        self._creation_source = False
        self._catch_up_sent = False
        self.svs_merges_issued = 0
        self.sv_merges_issued = 0

    # ------------------------------------------------------------------
    @property
    def evs(self):
        member = self.node.evs_member
        assert member is not None, "EvsReconfigManager requires an EVS member"
        return member

    def _primary_subview(self, eview: EView):
        return eview.primary_subview(len(self.node.universe))

    def _is_coordinating(self, eview: EView) -> bool:
        """Am I responsible for driving reconfigurations right now?"""
        primary = self._primary_subview(eview)
        if primary is not None:
            return self.node.site_id in primary
        return self._creation_source

    # ------------------------------------------------------------------
    # E-view change dispatch
    # ------------------------------------------------------------------
    def on_eview_change(self, eview: EView, reason: str, states, gseq=None) -> None:
        self._pending_svs_merges.clear()
        self._sv_merges_requested.clear()
        if reason == "view_change":
            self._on_view_change(eview)
        elif reason == "subview_set_merge":
            self._on_subview_set_merge(eview, gseq)
        elif reason == "subview_merge":
            self._on_subview_merge(eview, gseq)

    # ------------------------------------------------------------------
    # Rule I: view changes
    # ------------------------------------------------------------------
    def _on_view_change(self, eview: EView) -> None:
        from repro.replication.node import SiteStatus

        node = self.node
        primary = self._primary_subview(eview)
        self._caught_up_joiners &= set(eview.view.members)

        if node.status in (SiteStatus.STALLED, SiteStatus.DOWN):
            # Rule I.4: out of the primary component.
            self.cancel_all_sessions()
            if self.joiner_session is not None:
                self.joiner_session.cancel()
                self.joiner_session = None
            self._abort_replay()
            self.caught_up = False
            self._catch_up_sent = False
            self.activation_authorized = False
            self._creation_source = False
            self._creation_started = False
            self._creation_view = None
            self._creation_members = None
            self._creation_reports = {}
            self._caught_up_joiners.clear()
            return

        if primary is None or node.site_id not in primary:
            # Authorization to activate is structural and per-merge: any
            # view change that leaves me outside a primary subview voids it.
            self.activation_authorized = False

        if primary is None and not self._creation_source:
            # Primary view but no operational primary subview: every site
            # realizes locally that processing must be suspended, and the
            # creation protocol runs once all sites are present.
            self.cancel_all_sessions()
            self.check_creation(eview.view)
            return

        if primary is not None and node.site_id not in primary:
            # I'm a joiner.  Enqueueing starts once my subview-set has
            # been merged with the primary's (rule II); re-check here for
            # the cascaded / resume case.
            if node.member.last_install_missed > 0:
                self.restart_join()
                self._catch_up_sent = False
            my_svs = eview.subview_set_of(node.site_id)
            if primary <= my_svs and not self.strategy.lazy:
                self.enqueue_mode = True
            if self.joiner_session is not None and self.joiner_session.peer not in eview.view:
                self.joiner_session.cancel()
                self.joiner_session = None
            return

        self._reconcile(eview, sync_gid=node.member.to.base_gseq - 1)

    # ------------------------------------------------------------------
    # Rule II: subview-set merged
    # ------------------------------------------------------------------
    def _on_subview_set_merge(self, eview: EView, gseq: Optional[int]) -> None:
        node = self.node
        primary = self._primary_subview(eview)
        sync_gid = gseq if gseq is not None else node.last_processed_gid
        if self._is_coordinating(eview):
            self._reconcile(eview, sync_gid)
            return
        # Joiner side: "discards transactions until it is in the same
        # subview-set as the primary subview, then starts enqueueing".
        # During creation (no primary subview yet) nothing is processing,
        # but switching to enqueue mode is the safe equivalent.
        my_svs = eview.subview_set_of(node.site_id)
        merged_with_primary = primary is not None and primary <= my_svs
        if (merged_with_primary or primary is None) and not self.strategy.lazy:
            self.enqueue_mode = True

    # ------------------------------------------------------------------
    # Rule III: subview merged -> recovery of those sites completed
    # ------------------------------------------------------------------
    def _on_subview_merge(self, eview: EView, gseq: Optional[int]) -> None:
        node = self.node
        primary = self._primary_subview(eview)
        if primary is not None and node.site_id in primary:
            for site in primary:
                node.site_utd[site] = True
            if not node.up_to_date:
                # I was just merged into the primary subview: the final
                # synchronization point (activation still waits for the
                # replay queue to drain).
                self.activation_authorized = True
                self.maybe_activate()
            self._caught_up_joiners -= set(primary)
            if self._is_coordinating(eview):
                sync_gid = gseq if gseq is not None else node.last_processed_gid
                self._reconcile(eview, sync_gid)
            return
        if self._creation_source:
            sync_gid = gseq if gseq is not None else node.last_processed_gid
            self._reconcile(eview, sync_gid)

    # ------------------------------------------------------------------
    # The reconciliation pass (rules I.1-I.3, II, III precondition)
    # ------------------------------------------------------------------
    def _reconcile(self, eview: EView, sync_gid: int) -> None:
        node = self.node
        primary = self._primary_subview(eview)
        if (
            primary is not None
            and node.site_id in primary
            and not node.up_to_date
            and not self._creation_source
        ):
            # Structurally primary but data-stale: a companion of the
            # creation source whose subview survived a total failure is
            # *in* the primary subview without holding the source's
            # merged state.  It must not coordinate merges or serve
            # transfers until its own catch-up completes.
            return
        if primary is not None:
            coordinators = sorted(primary)
            my_sv = eview.subview_id_of(node.site_id)
            my_svs_id = eview.subview_set_id_of(node.site_id)
        elif self._creation_source:
            coordinators = [node.site_id]
            my_sv = eview.subview_id_of(node.site_id)
            my_svs_id = eview.subview_set_id_of(node.site_id)
        else:
            return

        # Rule I.3: stop transfers to joiners that left the view; also
        # re-anchor transfers whose joiner missed part of the lineage.
        for joiner in list(self.sessions_out):
            if joiner not in eview.view or joiner in node.member.stale_members:
                self.cancel_session(joiner)

        # Rule I.1: merge foreign subview-sets into ours.
        foreign_svs = sorted(
            (svs_id for svs_id in eview.subview_sets() if svs_id != my_svs_id), key=str
        )
        for index, svs_id in enumerate(foreign_svs):
            if elect_for(coordinators, index) == node.site_id:
                self._schedule_svs_merge(my_svs_id, svs_id)

        # Rules I.2 / II / III precondition, for every subview of my
        # subview-set that is not (part of) the primary subview.
        my_svs_members = eview.subview_set_of(node.site_id)
        anchor = primary if primary is not None else frozenset({node.site_id})
        foreign_subviews = sorted(
            (
                sv_id
                for sv_id, members in eview.subviews().items()
                if members <= my_svs_members and not (members & anchor)
            ),
            key=str,
        )
        if self._creation_source:
            # A total failure dissolves the pre-failure subview
            # structure: my subview companions are not guaranteed to
            # hold the merged state the creation protocol just built
            # here, so they recover like any other joiner.
            my_sv_members = eview.subviews().get(my_sv, frozenset())
            for joiner in sorted(my_sv_members - {node.site_id}):
                if joiner not in self._caught_up_joiners:
                    self.start_session(joiner, sync_gid)

        for index, sv_id in enumerate(foreign_subviews):
            members = eview.subviews()[sv_id]
            if members <= self._caught_up_joiners:
                # Rule III precondition: every site of the subview caught
                # up -> merge it into the primary subview.  Issued by any
                # coordinator that *knows* the catch-up happened, not only
                # the elected one: a stalled transfer may have failed over
                # (TransferSolicit) to a non-elected peer, which is then
                # the only site holding this knowledge.  Racing duplicate
                # merges are no-ops at the EVS layer.
                if sv_id not in self._sv_merges_requested:
                    self._sv_merges_requested.add(sv_id)
                    self.sv_merges_issued += 1
                    node.trace(
                        "eview", "sv_merge_issued",
                        f"subview {sv_id} caught up, merging into {my_sv}",
                        data={"subview": str(sv_id)},
                    )
                    self.evs.subview_merge((my_sv, sv_id))
                continue
            if elect_for(coordinators, index) != node.site_id:
                continue
            for joiner in sorted(members):
                if joiner not in self._caught_up_joiners:
                    self.start_session(joiner, sync_gid)  # start or resume (rule I.2/II)

    def _schedule_svs_merge(self, my_svs_id: SubviewId, svs_id: SubviewId) -> None:
        if svs_id in self._pending_svs_merges:
            return
        self._pending_svs_merges.add(svs_id)
        delay = getattr(self.node.config, "evs_merge_delay", 0.02)
        self.node.proc.after(delay, self._issue_svs_merge, my_svs_id, svs_id)

    def _issue_svs_merge(self, my_svs_id: SubviewId, svs_id: SubviewId) -> None:
        eview = self.evs.eview
        if eview is None or svs_id not in eview.subview_sets():
            return
        if not self._is_coordinating(eview):
            return
        self.svs_merges_issued += 1
        self.node.trace(
            "eview", "svs_merge_issued",
            f"merging subview-set {svs_id} into {my_svs_id}",
            data={"subview_set": str(svs_id)},
        )
        self.evs.subview_set_merge((my_svs_id, svs_id))

    # ------------------------------------------------------------------
    # Catch-up completion -> CatchUpComplete -> SubviewMerge
    # ------------------------------------------------------------------
    def on_demoted(self) -> None:
        super().on_demoted()
        self._catch_up_sent = False
        self._creation_source = False
        self._caught_up_joiners.clear()

    def on_new_joiner_session(self) -> None:
        # The catch-up signal is per-session: a replacement session (new
        # peer, or a post-creation retry) needs its own CatchUpComplete.
        self._catch_up_sent = False

    def _on_caught_up(self) -> None:
        session = self.joiner_session
        if session is not None and session.complete and not self._catch_up_sent:
            self._catch_up_sent = True
            self._send_catch_up(session.session_id, session.peer)
        self.maybe_activate()

    def _send_catch_up(self, session_id: str, peer: str) -> None:
        """Send (and keep re-sending) CatchUpComplete until the merge
        arrives — the signal may race a peer failure and be lost."""
        session = self.joiner_session
        if (
            session is None
            or session.session_id != session_id
            or not self._catch_up_sent
            or self.activation_authorized
            or not self.node.alive
        ):
            return
        self.node.send_transfer(
            peer, CatchUpComplete(session_id=session_id, joiner=self.node.site_id)
        )
        self.node.proc.after(0.25, self._send_catch_up, session_id, peer)

    def _peer_session_done(self, session: PeerTransferSession) -> None:
        """A joiner caught up: record it and reconcile (possibly issuing
        the SubviewMerge that ends its recovery)."""
        super()._peer_session_done(session)
        self._caught_up_joiners.add(session.joiner)
        eview = self.evs.eview
        if eview is not None:
            self._sv_merges_requested.clear()
            self._reconcile(eview, sync_gid=self.node.last_processed_gid)

    def on_peer_session_stalled(self, session: PeerTransferSession) -> None:
        """Unlike the plain-VS case, a stalled peer session cannot always
        rely on the joiner's own watchdog: during the creation protocol
        the source is the *only* possible peer and every site (including
        the joiner) is SUSPENDED, so nobody solicits and the whole
        cluster stays unavailable until this transfer lands.  Keep
        retrying for as long as Rule III is still waiting on the joiner."""
        super().on_peer_session_stalled(session)
        self.node.proc.after(
            self.node.config.transfer_ack_timeout,
            self._retry_stalled_session,
            session.joiner,
        )

    def _retry_stalled_session(self, joiner: str) -> None:
        node = self.node
        eview = self.evs.eview
        if (
            not node.alive
            or eview is None
            or joiner in self._caught_up_joiners
            or joiner not in eview.view.members
        ):
            return
        # _reconcile re-derives who still needs a session (and whether we
        # are the one to serve it) with all its usual guards; a demotion
        # or completed catch-up in the meantime makes this a no-op.
        self._reconcile(eview, sync_gid=node.last_processed_gid)

    # ------------------------------------------------------------------
    def maybe_activate(self) -> None:
        # Under EVS the structural signal can arrive without a transfer
        # session (e.g. nothing needed transferring after creation).
        session = self.joiner_session
        transfer_done = session is not None and session.complete
        if (
            self.activation_authorized
            and (transfer_done or self._creation_source)
            and not self.replaying
            and not self.enqueued
        ):
            self.joiner_session = None
            self.enqueue_mode = False
            self._creation_source = False
            self._catch_up_sent = False
            self.node._become_active()
            self.on_activated()

    # ------------------------------------------------------------------
    # Creation protocol under EVS (total failure / bootstrap)
    # ------------------------------------------------------------------
    def on_creation_source(self, gseq: int) -> None:
        """Elected source: merge every subview-set, transfer to everyone,
        then SubviewMerges form the primary subview and the whole system
        resumes in lockstep."""
        self._creation_source = True
        eview = self.evs.eview
        assert eview is not None
        svs_ids = tuple(sorted(eview.subview_sets(), key=str))
        if len(svs_ids) >= 2:
            self.svs_merges_issued += 1
            self.node.trace(
                "eview", "svs_merge_issued",
                "creation source: merging every subview-set",
            )
            self.evs.subview_set_merge(svs_ids)
        else:
            # Already a single subview-set (the view change itself can
            # pre-merge the structure): the merge request would be a
            # silent no-op at delivery and the e-view change it normally
            # triggers never happens, so reconcile directly to start the
            # companion transfers.
            self._reconcile(eview, sync_gid=gseq)

    def on_activated(self) -> None:
        pass
