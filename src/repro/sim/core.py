"""The discrete-event simulation kernel.

Everything in this reproduction runs on top of :class:`Simulator`: the
network, the group communication system, the databases and the workload
generators all schedule callbacks on a single virtual clock.  The kernel is
single-threaded and fully deterministic: given the same seed and the same
sequence of ``schedule`` calls, a run always produces the same history.

Ties on the virtual clock are broken by insertion order (a monotonically
increasing sequence number), which is what makes the simulation
reproducible even when many events share a timestamp.

The ready queue is a *calendar queue* rather than a single binary heap:
virtual time is quantized into integer ticks of ``TICK`` seconds and
near-future events land in a preallocated ring of per-tick buckets, so
the common schedule path is a list append and the common pop path walks
a tiny per-tick heap.  Events beyond the ring's horizon spill into a
slow-path overflow heap and migrate into the ring as the clock advances.
Pop order is identical to the old global heap: ``(time, seq)``
lexicographic, i.e. FIFO among events sharing an exact timestamp.
"""

from __future__ import annotations

import random
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator, Optional, Tuple

#: Width of one calendar tick in virtual seconds.  A power of two so
#: ``time * _INV_TICK`` is exact float arithmetic: ``a < b`` implies
#: ``tick(a) <= tick(b)`` with no rounding surprises.  At ~0.98ms per
#: tick the default network latencies (0.5-2ms) span only a few ticks,
#: which keeps per-tick buckets small and the ring walk short.
_INV_TICK = 1024.0
#: Number of preallocated buckets; ring horizon is RING/1024 ≈ 4 virtual
#: seconds.  Power of two so ``tick & _RING_MASK`` replaces ``tick %``.
_RING_SIZE = 4096
_RING_MASK = _RING_SIZE - 1

#: Entries are ``(time, seq, event)`` tuples: heap comparisons stay in C
#: (tuple __lt__ on floats/ints) and never call back into Python.
_Entry = Tuple[float, int, "Event"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when it is popped from the queue.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} #{self.seq} {self.label or self.fn} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with a seeded RNG.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  All
        stochastic components (latency models, workload generators) must
        draw from :attr:`rng` so runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self._seq = 0
        self._running = False
        self.events_processed = 0
        self._trace_hooks: list[Callable[[Event], None]] = []
        #: Optional cost-attribution layer (repro.obs.profile.SimProfiler).
        #: When set, the kernel routes each event through
        #: ``profiler.run_event`` instead of calling it directly; when
        #: None (the default) the only per-event cost is one check of a
        #: local hoisted at the top of :meth:`run`.
        self.profiler: Optional[Any] = None
        # --- calendar queue state -------------------------------------
        #: Heapified entries for the tick currently being drained, plus
        #: any entry scheduled at or before it (zero-delay events).
        self._cur_heap: list[_Entry] = []
        #: Tick whose bucket was most recently loaded into _cur_heap.
        self._cur_tick = 0
        #: Ring of per-tick buckets for ticks in (cur, cur + RING).
        #: Lazily allocated lists; None = empty.  Each bucket holds only
        #: entries of a single tick (distinct in-horizon ticks map to
        #: distinct slots), appended in seq order.
        self._ring: list[Optional[list[_Entry]]] = [None] * _RING_SIZE
        #: Number of entries currently in the ring (cancelled included).
        self._ring_count = 0
        #: Slow-path heap for entries at or beyond the ring horizon.
        self._overflow: list[_Entry] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, label)
        tick = int(time * _INV_TICK)
        cur = self._cur_tick
        if tick <= cur:
            # At or before the tick being drained (zero/short delays):
            # goes straight into the current heap.  Safe even when the
            # entry sorts after everything in the ring — the heap orders
            # by (time, seq) and a tick <= cur entry can never sort
            # after an in-ring entry of a strictly later tick.
            heappush(self._cur_heap, (time, seq, event))
        elif tick - cur < _RING_SIZE:
            slot = tick & _RING_MASK
            bucket = self._ring[slot]
            if bucket is None:
                self._ring[slot] = [(time, seq, event)]
            else:
                bucket.append((time, seq, event))
            self._ring_count += 1
        else:
            heappush(self._overflow, (time, seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        return self.schedule(time - self.now, fn, *args, label=label)

    def call_soon(self, fn: Callable[..., Any], *args: Any, label: str = "") -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.schedule(0.0, fn, *args, label=label)

    # ------------------------------------------------------------------
    # Calendar-queue internals
    # ------------------------------------------------------------------
    def _advance(self) -> Optional[list[_Entry]]:
        """Load the next non-empty tick bucket into ``_cur_heap``.

        Called only when ``_cur_heap`` is empty.  Returns the freshly
        loaded (heapified) bucket, or None when no events remain
        anywhere.  Jumps over empty stretches: when the ring is empty it
        warps straight to the overflow head's tick instead of scanning.
        """
        ring = self._ring
        overflow = self._overflow
        tick = self._cur_tick
        while True:
            if self._ring_count == 0:
                if not overflow:
                    return None
                # Warp to the earliest far-future entry.
                tick = int(overflow[0][0] * _INV_TICK)
            else:
                tick += 1
            # Pull overflow entries that fall inside the new horizon.
            while overflow:
                otick = int(overflow[0][0] * _INV_TICK)
                if otick - tick >= _RING_SIZE:
                    break
                entry = heappop(overflow)
                slot = otick & _RING_MASK
                bucket = ring[slot]
                if bucket is None:
                    ring[slot] = [entry]
                else:
                    bucket.append(entry)
                self._ring_count += 1
            slot = tick & _RING_MASK
            bucket = ring[slot]
            if bucket is not None:
                ring[slot] = None
                self._ring_count -= len(bucket)
                heapify(bucket)
                self._cur_heap = bucket
                self._cur_tick = tick
                return bucket
            self._cur_tick = tick

    def _entries(self) -> Iterator[_Entry]:
        """Every queued entry, in no particular order (introspection)."""
        yield from self._cur_heap
        for bucket in self._ring:
            if bucket is not None:
                yield from bucket
        yield from self._overflow

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue is empty, ``until`` is reached,
        or ``max_events`` events have been processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        # Hoisted locals: when no profiler/hooks are attached the only
        # per-event overhead beyond the pop itself is two falsy checks.
        # (Attaching a profiler or hook mid-run takes effect next run.)
        profiler = self.profiler
        hooks = self._trace_hooks
        budget = max_events if max_events is not None else 0x7FFFFFFFFFFFFFFF
        pop = heappop
        heap = self._cur_heap
        try:
            while True:
                if processed >= budget:
                    break
                if not heap:
                    heap = self._advance()
                    if heap is None:
                        break
                    continue
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                pop(heap)
                self.now = time
                if hooks:
                    for hook in hooks:
                        hook(event)
                if profiler is None:
                    event.fn(*event.args)
                else:
                    profiler.run_event(event)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain every pending event (bounded by ``max_events`` as a safety net)."""
        self.run(max_events=max_events)
        if any(not entry[2].cancelled for entry in self._entries()):
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events; "
                "likely a livelock in the protocol under test"
            )

    def step(self) -> bool:
        """Process a single event.  Returns False when nothing is pending."""
        heap = self._cur_heap
        while True:
            if not heap:
                heap = self._advance()
                if heap is None:
                    return False
                continue
            time, _seq, event = heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            for hook in self._trace_hooks:
                hook(event)
            if self.profiler is None:
                event.fn(*event.args)
            else:
                self.profiler.run_event(event)
            self.events_processed += 1
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for entry in self._entries() if not entry[2].cancelled)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending event, or None."""
        best: Optional[float] = None
        for time, _seq, event in self._entries():
            if not event.cancelled and (best is None or time < best):
                best = time
        return best

    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a callable invoked just before each event fires."""
        self._trace_hooks.append(hook)
