"""The discrete-event simulation kernel.

Everything in this reproduction runs on top of :class:`Simulator`: the
network, the group communication system, the databases and the workload
generators all schedule callbacks on a single virtual clock.  The kernel is
single-threaded and fully deterministic: given the same seed and the same
sequence of ``schedule`` calls, a run always produces the same history.

Ties on the virtual clock are broken by insertion order (a monotonically
increasing sequence number), which is what makes the simulation
reproducible even when many events share a timestamp.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when it is popped from the heap.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Hot path: called O(log n) times per heap operation.  Comparing
        # fields directly avoids building two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} #{self.seq} {self.label or self.fn} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with a seeded RNG.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  All
        stochastic components (latency models, workload generators) must
        draw from :attr:`rng` so runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0
        self._trace_hooks: list[Callable[[Event], None]] = []
        #: Optional cost-attribution layer (repro.obs.profile.SimProfiler).
        #: When set, the kernel routes each event through
        #: ``profiler.run_event`` instead of calling it directly; when
        #: None (the default) the only cost is this attribute check.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, self._seq, fn, args, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        return self.schedule(time - self.now, fn, *args, label=label)

    def call_soon(self, fn: Callable[..., Any], *args: Any, label: str = "") -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.schedule(0.0, fn, *args, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap is empty, ``until`` is reached,
        or ``max_events`` events have been processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                if self._trace_hooks:
                    for hook in self._trace_hooks:
                        hook(event)
                if self.profiler is None:
                    event.fn(*event.args)
                else:
                    self.profiler.run_event(event)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain every pending event (bounded by ``max_events`` as a safety net)."""
        self.run(max_events=max_events)
        if self._heap and not all(e.cancelled for e in self._heap):
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events; "
                "likely a livelock in the protocol under test"
            )

    def step(self) -> bool:
        """Process a single event.  Returns False when nothing is pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            for hook in self._trace_hooks:
                hook(event)
            if self.profiler is None:
                event.fn(*event.args)
            else:
                self.profiler.run_event(event)
            self.events_processed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest pending event, or None."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None

    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a callable invoked just before each event fires."""
        self._trace_hooks.append(hook)
