"""Process and timer helpers on top of the raw event heap.

A :class:`Process` is a convenience base class for protocol actors (group
members, database nodes, workload clients): it owns its scheduled events so
that stopping the process cancels everything it had in flight — which is
exactly what a crash must do.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.core import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    Used for heartbeat timeouts, protocol round timeouts, etc.  ``restart``
    cancels any pending expiry and re-arms the timer, which is the common
    "push back the deadline" idiom of failure detectors.
    """

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], Any]) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        if not self.armed:
            self._event = self.sim.schedule(self.interval, self._fire, label="timer")

    def restart(self) -> None:
        self.cancel()
        self._event = self.sim.schedule(self.interval, self._fire, label="timer")

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.callback()


class Process:
    """Base class for simulated actors that can be stopped/crashed.

    Subclasses schedule work through :meth:`after` / :meth:`every`; all
    such events are tracked and cancelled by :meth:`stop`.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.alive = False
        self._owned_events: list[Event] = []

    def start(self) -> None:
        self.alive = True

    def stop(self) -> None:
        """Stop the process and cancel everything it scheduled."""
        self.alive = False
        for event in self._owned_events:
            event.cancel()
        self._owned_events.clear()

    # ------------------------------------------------------------------
    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn`` after ``delay``, skipped if the process has died."""
        event = self.sim.schedule(delay, self._guarded, fn, args)
        self._owned_events.append(event)
        self._compact()
        return event

    def every(self, interval: float, fn: Callable[..., Any]) -> Event:
        """Run ``fn`` every ``interval`` until the process stops."""

        def tick() -> None:
            if not self.alive:
                return
            fn()
            self.every(interval, fn)

        return self.after(interval, tick)

    def _guarded(self, fn: Callable[..., Any], args: tuple) -> None:
        if self.alive:
            fn(*args)

    def _compact(self) -> None:
        # Drop references to fired/cancelled events now and then so a
        # long-lived process does not accumulate unbounded garbage.
        if len(self._owned_events) > 256:
            self._owned_events = [
                e for e in self._owned_events if not e.cancelled and e.time >= self.sim.now
            ]
