"""Deterministic discrete-event simulation kernel."""

from repro.sim.core import Event, Simulator
from repro.sim.process import Process, Timer

__all__ = ["Event", "Process", "Simulator", "Timer"]
