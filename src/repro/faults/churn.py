"""Churn schedulers and storm composers for the endurance engine.

Each segment is one imperative composer driven against a live cluster by
:class:`repro.endurance.EnduranceEngine` (passed in as ``engine``): it
advances the simulation, injects membership churn, and returns a
human-readable summary.  All randomness comes from ``engine.rng`` — the
dedicated endurance stream — so a segment schedule is a pure function of
the endurance seed.

Every composer preserves the availability invariant the endurance runs
assert: at most one site is ever outside ACTIVE at a time (the static
majority policy needs ``n - 1`` connected sites out of ``n = 4`` to keep
a primary view serving clients).  Partitions always isolate exactly one
site; a second crash only ever strikes the site already down or
recovering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.replication.node import SiteStatus

#: Registry used by :class:`repro.endurance.EnduranceConfig.segments`.
SEGMENT_NAMES = ("rolling", "storm", "churn", "stabilize")


# ----------------------------------------------------------------------
# Concurrent-churn policy
# ----------------------------------------------------------------------
def _majority_quorum(n_sites: int) -> int:
    """Connected sites a primary partition needs to keep serving.

    All three current backends (vs, evs, logless) are majority-based:
    the primary-partition rule (paper §2, arXiv:2102.11960 for logless)
    needs strictly more than half of the universe connected."""
    return n_sites // 2 + 1


#: Per-backend quorum rules: backend name -> callable(n_sites) -> sites
#: that must stay connected for the cluster to keep serving.  Every
#: current backend is majority-based; a future non-majority backend
#: (e.g. Matchmaker Paxos with disjoint phase quorums) registers its own
#: rule here and the churn policy picks it up automatically.
QUORUM_RULES: Dict[str, Callable[[int], int]] = {
    "vs": _majority_quorum,
    "evs": _majority_quorum,
    "logless": _majority_quorum,
}


def backend_quorum(backend: Optional[str], n_sites: int) -> int:
    """Quorum size for ``backend`` (majority for unknown/None names)."""
    rule = QUORUM_RULES.get(backend or "vs", _majority_quorum)
    return rule(n_sites)


@dataclass(frozen=True)
class ChurnPolicy:
    """How many sites churn may take out of service *concurrently*.

    The endurance segments above hard-code the historical rule — at most
    one site outside ACTIVE at a time.  This policy generalises it: the
    cap is the universe size minus the backend's serving quorum, so a
    5-site majority cluster may lose 2 sites at once and keep serving.
    The adversarial schedule search (:mod:`repro.search`) generates and
    clamps its fault genes against this policy, deliberately pushing
    churn to the admissible limit.

    ``max_down`` explicitly tightens the derived cap (never widens it);
    ``respect_creation_majority`` handles the paper's §3 creation rule:
    without :attr:`repro.replication.node.NodeConfig.creation_majority`,
    forming a *new* creation round needs every site of the subview set,
    so concurrent multi-site churn can wedge a post-partition creation —
    the policy then falls back to the legacy single-site cap.
    """

    #: Explicit concurrent-down cap; None derives it from the quorum.
    max_down: Optional[int] = None
    #: Fall back to the single-site cap when the cluster runs the
    #: paper's all-sites creation rule (creation_majority=False).
    respect_creation_majority: bool = True

    def __post_init__(self) -> None:
        if self.max_down is not None and self.max_down < 0:
            raise ValueError("max_down must be None or >= 0")

    def concurrency_limit(self, n_sites: int, backend: Optional[str] = None,
                          creation_majority: bool = True) -> int:
        """Most sites that may be down/isolated at once under this policy."""
        if n_sites < 1:
            raise ValueError("n_sites must be >= 1")
        derived = max(0, n_sites - backend_quorum(backend, n_sites))
        if self.respect_creation_majority and not creation_majority:
            derived = min(derived, 1)
        if self.max_down is not None:
            derived = min(derived, self.max_down)
        return derived

    def admits(self, down_now: int, n_sites: int,
               backend: Optional[str] = None,
               creation_majority: bool = True) -> bool:
        """May one *more* site leave service, given ``down_now`` already out?"""
        return down_now < self.concurrency_limit(n_sites, backend,
                                                 creation_majority)


def _transfer_counts(cluster):
    started = sum(n.reconfig.transfers_started for n in cluster.nodes.values())
    completed = sum(n.reconfig.transfers_completed for n in cluster.nodes.values())
    return started, completed


def run_rolling(engine) -> str:
    """Rolling restart: every site bounced in sequence, one at a time.

    The next victim is only struck after the previous one is ACTIVE
    again, so the primary view never loses more than one member and no
    client request is lost — sessions fail over to the three survivors.
    """
    cluster, rng = engine.cluster, engine.rng
    if not engine.normalize():
        return "skipped: cluster did not settle to all-active"
    restarted = 0
    for site in cluster.universe:
        cluster.crash(site)
        engine.note("rolling_crash", site)
        cluster.run_for(0.10 + 0.20 * rng.random())
        cluster.recover(site)
        engine.note("rolling_recover", site)
        if not engine.await_site_active(site):
            engine.fail(f"rolling restart stuck: {site} never became ACTIVE")
            return f"stuck at {site} after {restarted} restarts"
        restarted += 1
    engine.report.rolling_restarts += restarted
    return f"{restarted} sites restarted in sequence"


def run_storm(engine) -> str:
    """Repeated partition/merge cycles against one victim site.

    Paced so the state transfer triggered by each merge is usually still
    in flight when the next cut lands — the paper's cascading-
    reconfiguration story (Figure 1), repeated until it stops being an
    anecdote.  The majority side keeps serving throughout.
    """
    cluster, rng = engine.cluster, engine.rng
    for site in cluster.universe:
        if not cluster.nodes[site].alive:
            cluster.recover(site)
    victim = rng.choice(list(cluster.universe))
    majority = [s for s in cluster.universe if s != victim]
    cycles = 2 + rng.randrange(3)
    interrupted = 0
    for cycle in range(cycles):
        cluster.partition([majority, [victim]])
        engine.note("partition", f"{majority} | [{victim}]")
        # Long enough for the majority view to install and keep serving
        # (back-to-back cuts with no serving window would just thrash
        # the membership protocol and zero out availability).
        cluster.run_for(0.20 + 0.20 * rng.random())
        started_0, completed_0 = _transfer_counts(cluster)
        cluster.heal()
        engine.note("merge", victim)
        # Long enough for the rejoin transfer to start, short enough
        # that the next cut usually interrupts it before completion.
        cluster.run_for(0.12 + 0.12 * rng.random())
        started_1, completed_1 = _transfer_counts(cluster)
        in_flight = (started_1 - started_0) - (completed_1 - completed_0)
        if cycle < cycles - 1 and in_flight > 0:
            interrupted += in_flight
    engine.report.partition_cycles += cycles
    engine.report.transfers_interrupted += interrupted
    return (f"{cycles} partition/merge cycles against {victim}, "
            f"{interrupted} transfers cut mid-flight")


def run_churn(engine) -> str:
    """Continuous join/leave churn under live client traffic.

    A random walk over single-site membership events: an ACTIVE site
    leaves, the down site rejoins, and a still-recovering site is
    sometimes struck again mid-transfer (the restart-during-recovery
    case the lazy strategy's fail-over resume exists for).
    """
    cluster, rng = engine.cluster, engine.rng
    steps = 4 + rng.randrange(4)
    leaves = joins = 0
    for _ in range(steps):
        cluster.run_for(0.08 + 0.12 * rng.random())
        down = [s for s in cluster.universe if not cluster.nodes[s].alive]
        recovering = [
            s for s in cluster.universe
            if cluster.nodes[s].alive
            and cluster.nodes[s].status is not SiteStatus.ACTIVE
        ]
        if down:
            site = rng.choice(down)
            cluster.recover(site)
            engine.note("join", site)
            joins += 1
        elif recovering:
            if rng.random() < 0.4:
                site = rng.choice(recovering)
                cluster.crash(site)
                engine.note("leave", f"{site} (struck mid-recovery)")
                leaves += 1
            # else: give the recovery a beat to make progress
        else:
            site = rng.choice(list(cluster.universe))
            cluster.crash(site)
            engine.note("leave", site)
            leaves += 1
    for site in cluster.universe:
        if not cluster.nodes[site].alive:
            cluster.recover(site)
            engine.note("join", f"{site} (churn epilogue)")
    engine.report.churn_leaves += leaves
    return f"{steps} churn steps: {leaves} leaves, {joins} rejoins"


def run_stabilize(engine) -> str:
    """Self-stabilization start: boot a site from corrupted stable state.

    One site is crashed, its WAL/outcome-table image is damaged in a
    CRC-valid way (:class:`repro.faults.storage.StableStateCorruptor`),
    and the site is rebooted.  Recovery cannot detect the damage locally;
    the run requires the rejoin protocol to converge it anyway — the
    arXiv:1606.00195 recovery-from-plausible-state model.
    """
    cluster, rng = engine.cluster, engine.rng
    if not engine.normalize():
        return "skipped: cluster did not settle to all-active"
    site = rng.choice(list(cluster.universe))
    cluster.crash(site)
    detail = engine.corruptor.corrupt(cluster.nodes[site].storage, site)
    engine.note("stabilize", f"{site} {detail}")
    cluster.run_for(0.05 + 0.10 * rng.random())
    cluster.recover(site)
    if not engine.await_site_active(site):
        engine.fail(
            f"stabilization start did not converge: {site} rebooted from "
            f"a corrupted state ({detail}) and never became ACTIVE"
        )
        return f"{site} stuck after corruption ({detail})"
    engine.report.stabilize_starts += 1
    return f"{site} converged from corrupted state ({detail})"


SEGMENTS = {
    "rolling": run_rolling,
    "storm": run_storm,
    "churn": run_churn,
    "stabilize": run_stabilize,
}
