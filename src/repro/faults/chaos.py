"""Seeded randomized chaos testing for the replicated database.

The :class:`ChaosEngine` drives a cluster through a random storm of
crashes, recoveries, partitions, heals, one-way link degradations and
loss/latency bursts — on top of always-on message duplication,
reordering and torn-WAL-on-crash faults — then forces the system to
quiescence and asserts the full :mod:`repro.checkers` invariant suite
(total order, atomicity, 1-copy-serializability, view synchrony,
convergence).

Every random decision is drawn from a dedicated ``random.Random`` keyed
on the chaos seed, separate from the simulator RNG, so a (seed,
intensity, config) triple identifies one exact storm.  Exposed on the
command line as ``python -m repro chaos --seed N --intensity X``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checkers import ConsistencyViolation, run_all_checks
from repro.cluster import Cluster, ClusterBuilder
from repro.faults.injectors import (
    DuplicateInjector,
    LatencySpikeInjector,
    OneWayLinkInjector,
    ReorderInjector,
)
from repro.faults.storage import TornTailFaults
from repro.replication.node import SiteStatus
from repro.tracing import Tracer, attach_tracer
from repro.workload.generator import LoadGenerator, WorkloadConfig


@dataclass
class ChaosConfig:
    """Shape of one chaos run.

    ``intensity`` scales both the fault event rate and the always-on
    injector probabilities; 0 disables random events entirely (the
    always-on injectors still run at rate 0, i.e. not at all), 1.0 is a
    violent storm.  ``min_alive`` keeps at least that many sites up so
    the run cannot degenerate into everybody-down-forever (total failure
    is still reachable through partitions; set it to 0 to allow outright
    full crashes and exercise the creation protocol on quiesce).
    """

    seed: int = 0
    intensity: float = 0.5
    n_sites: int = 4
    db_size: int = 40
    duration: float = 3.0
    mode: str = "vs"
    #: Reconfiguration backend (repro.reconfig.backends); None lets the
    #: legacy ``mode`` select it ("vs"/"evs").
    backend: Optional[str] = None
    strategy: str = "rectable"
    arrival_rate: float = 60.0
    enable_duplication: bool = True
    enable_reordering: bool = True
    enable_torn_wal: bool = True
    enable_one_way: bool = True
    enable_latency_spikes: bool = True
    enable_loss_bursts: bool = True
    min_alive: int = 1
    quiesce_timeout: float = 60.0
    #: Number of closed-loop client sessions (repro.client).  0 keeps the
    #: classic open-loop LoadGenerator; > 0 drives the run through
    #: ClientSession objects with failover + exactly-once checking.
    clients: int = 0
    #: Sabotage hook: disable the replicated dedup table at every site.
    #: Used by tests/CI to prove check_exactly_once actually catches
    #: double execution — a sabotaged run is expected to FAIL.
    sabotage_dedup: bool = False
    #: Hot-path batching (sequencer, network, bulk writes).  Off gives
    #: the pre-batching event schedule; histories and final states are
    #: identical either way (see tests/properties/test_batching_equivalence).
    batching: bool = True
    #: Attach the full observability layer (metrics registry + causal
    #: spans, repro.obs) instead of the bare tracer.  The report then
    #: carries an ``obs`` handle whose trace/metrics can be exported —
    #: the CLI uses this to dump evidence when an invariant fails.
    observe: bool = False
    #: Attach the deterministic event-loop profiler
    #: (repro.obs.profile.SimProfiler).  Observation-equivalent: the
    #: storm, histories and digests are identical with or without it.
    profile: bool = False

    def validate(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")
        if self.n_sites < 2:
            raise ValueError("chaos needs at least 2 sites")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mode not in ("vs", "evs"):
            raise ValueError(f"mode must be 'vs' or 'evs', got {self.mode!r}")
        if self.backend is not None:
            from repro.reconfig.backends import backend_by_name

            backend_by_name(self.backend)  # raises on unknown names
        if not 0 <= self.min_alive <= self.n_sites:
            raise ValueError("min_alive must be in [0, n_sites]")
        if self.quiesce_timeout <= 0:
            raise ValueError("quiesce_timeout must be positive")
        if self.clients < 0:
            raise ValueError("clients must be non-negative")
        if self.sabotage_dedup and self.clients == 0:
            raise ValueError("sabotage_dedup only makes sense with clients > 0")


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    intensity: float
    ok: bool = False
    error: Optional[str] = None
    #: (virtual time, action, detail) for every chaos decision taken.
    events: List[Tuple[float, str, str]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    wal_tears: int = 0
    wal_corruptions: int = 0
    tracer: Optional[Tracer] = None
    #: Observability handle (repro.obs.Observability) when the run was
    #: built with ``ChaosConfig(observe=True)``.
    obs: Optional[Any] = None
    #: Profiler handle (repro.obs.profile.SimProfiler) when the run was
    #: built with ``ChaosConfig(profile=True)``.
    profiler: Optional[Any] = None
    #: Virtual end time of the run (set at finish; epoch extraction
    #: uses it to truncate still-open epochs).
    virtual_time: float = 0.0

    def epochs(self):
        """Reconfiguration epochs reconstructed from the trace."""
        from repro.obs.epochs import extract_epochs

        if self.tracer is None:
            return []
        return extract_epochs(self.tracer.events,
                              end_time=self.virtual_time or None)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else f"FAIL ({self.error})"
        return (
            f"chaos seed={self.seed} intensity={self.intensity}: {verdict} — "
            f"{len(self.events)} fault events, "
            f"{self.metrics.get('commits', 0)} commits, "
            f"{self.wal_tears} WAL tears "
            f"({self.wal_corruptions} with corruption)"
        )

    def payload(self) -> Dict[str, Any]:
        """A picklable plain-data view of the report for the
        :mod:`repro.fleet` seed fleets: the verdict, the aggregate
        metrics, and digests of the fault schedule and the full trace
        (the trace itself can be thousands of lines; a seed fleet only
        needs to compare runs, and a digest mismatch pinpoints the seed
        to re-run locally with ``python -m repro chaos --seed N``)."""
        import hashlib

        schedule = "\n".join(
            f"{time:.6f} {action} {detail}" for time, action, detail in self.events
        )
        from repro.obs.epochs import epoch_summary

        trace = ""
        if self.tracer is not None:
            trace = "\n".join(str(event) for event in self.tracer.events)
        return {
            "epochs": epoch_summary(self.epochs()),
            "seed": self.seed,
            "intensity": self.intensity,
            "ok": self.ok,
            "error": self.error,
            "fault_events": len(self.events),
            "wal_tears": self.wal_tears,
            "wal_corruptions": self.wal_corruptions,
            "metrics": {key: value for key, value in self.metrics.items()},
            "schedule_digest": hashlib.sha256(schedule.encode()).hexdigest(),
            "trace_digest": hashlib.sha256(trace.encode()).hexdigest(),
            "trace_events": len(self.tracer.events) if self.tracer else 0,
        }


class ChaosEngine:
    """Runs one seeded chaos storm against a freshly built cluster."""

    #: Mean virtual seconds between chaos events at intensity 1.0.
    BASE_EVENT_INTERVAL = 0.18

    def __init__(self, config: Optional[ChaosConfig] = None) -> None:
        self.config = config or ChaosConfig()
        self.config.validate()
        # Chaos decisions use their own stream so the storm shape depends
        # only on the chaos seed, not on how many random draws the
        # protocols under test happen to make.
        self.rng = random.Random(f"chaos-{self.config.seed}")
        self.cluster: Optional[Cluster] = None
        self.report = ChaosReport(seed=self.config.seed,
                                  intensity=self.config.intensity)
        self._storming = False
        self._partitioned = False
        self._loss_burst_active = False
        self._storage_faults: Optional[TornTailFaults] = None

    # ------------------------------------------------------------------
    def run(self) -> ChaosReport:
        config = self.config
        cluster = self._build()
        if config.sabotage_dedup:
            for node in cluster.nodes.values():
                node.dedup_disabled = True
        workload = WorkloadConfig(arrival_rate=config.arrival_rate,
                                  reads_per_txn=1, writes_per_txn=2)
        load: Optional[LoadGenerator] = None
        fleet = None
        if config.clients > 0:
            from repro.client import ClientFleet

            fleet = ClientFleet(cluster, config.clients, workload)
        else:
            load = LoadGenerator(cluster, workload)
        driver = fleet if fleet is not None else load
        if not cluster.await_all_active(timeout=15):
            self.report.error = "bootstrap failed"
            return self._finish(load, fleet)
        driver.start()
        self._storming = True
        self._schedule_next_event()
        cluster.run_for(config.duration)
        self._storming = False
        driver.stop()
        self._quiesce()
        if fleet is not None:
            # Sessions drive their own retries; give every in-flight
            # request time to reach a terminal state on the healed
            # cluster before judging exactly-once.
            if not cluster.await_condition(fleet.drained,
                                           timeout=config.quiesce_timeout):
                self.report.error = "client drain timeout"
        return self._finish(load, fleet)

    # ------------------------------------------------------------------
    def _build(self) -> Cluster:
        config = self.config
        cluster = ClusterBuilder(
            n_sites=config.n_sites,
            db_size=config.db_size,
            seed=config.seed,
            strategy=config.strategy,
            mode=config.mode,
            backend=config.backend,
            batching=config.batching,
        ).build()
        self.cluster = cluster
        if config.observe:
            self.report.obs = cluster.attach_observability()
        else:
            attach_tracer(cluster)
        self.report.tracer = cluster.tracer
        if config.profile:
            from repro.obs.profile import attach_profiler

            self.report.profiler = attach_profiler(cluster)
        intensity = config.intensity
        if config.enable_duplication:
            cluster.add_injector(DuplicateInjector(rate=0.10 * intensity,
                                                   spread=0.02))
        if config.enable_reordering:
            cluster.add_injector(ReorderInjector(rate=0.25 * intensity,
                                                 max_extra=0.02))
        if config.enable_latency_spikes:
            cluster.add_injector(LatencySpikeInjector(rate=0.01 * intensity,
                                                      spike=0.05,
                                                      burst_duration=0.2))
        if config.enable_torn_wal:
            self._storage_faults = TornTailFaults(tear_probability=0.8,
                                                  corrupt_probability=0.5)
            cluster.install_storage_faults(self._storage_faults)
        cluster.start()
        return cluster

    # ------------------------------------------------------------------
    # The storm
    # ------------------------------------------------------------------
    def _schedule_next_event(self) -> None:
        if not self._storming or self.config.intensity <= 0.0:
            return
        mean = self.BASE_EVENT_INTERVAL / self.config.intensity
        self.cluster.sim.schedule(self.rng.expovariate(1.0 / mean),
                                  self._fire_event, label="chaos event")

    def _fire_event(self) -> None:
        if not self._storming:
            return
        action = self._pick_action()
        if action is not None:
            name, fire = action
            detail = fire()
            self._note(name, detail or "")
        self._schedule_next_event()

    def _pick_action(self):
        """Weighted choice among the actions currently applicable."""
        cluster, config = self.cluster, self.config
        alive = [s for s in cluster.universe if cluster.nodes[s].alive]
        dead = [s for s in cluster.universe if not cluster.nodes[s].alive]
        choices = []
        if len(alive) > config.min_alive:
            choices.append((3.0, ("crash_armed", self._do_crash)))
        if dead:
            choices.append((4.0, ("recover", self._do_recover)))
        if not self._partitioned and len(alive) >= 2:
            choices.append((2.0, ("partition", self._do_partition)))
        if self._partitioned:
            choices.append((3.0, ("heal", self._do_heal)))
        if config.enable_one_way and len(alive) >= 2:
            choices.append((2.0, ("one_way", self._do_one_way)))
        if config.enable_loss_bursts and not self._loss_burst_active:
            choices.append((2.0, ("loss_burst", self._do_loss_burst)))
        if not choices:
            return None
        total = sum(weight for weight, _ in choices)
        pick = self.rng.random() * total
        for weight, action in choices:
            pick -= weight
            if pick <= 0:
                return action
        return choices[-1][1]

    # Individual actions.  Each returns a human-readable detail string.
    #: How long an armed crash waits for the victim's WAL tail to be
    #: dirty before striking anyway.
    CRASH_ARM_WINDOW = 0.06

    def _do_crash(self) -> str:
        """Crash a site — preferring the moment its WAL has an unflushed
        tail, so the torn-tail storage fault actually gets exercised
        (an instantaneous random crash almost always lands between
        commits, when everything is already durable)."""
        cluster = self.cluster
        alive = [s for s in cluster.universe if cluster.nodes[s].alive]
        site = self.rng.choice(alive)
        node = cluster.nodes[site]
        deadline = cluster.sim.now + self.CRASH_ARM_WINDOW

        def strike() -> None:
            if not self._storming or not node.alive:
                return
            others = sum(
                1 for s in cluster.universe if s != site and cluster.nodes[s].alive
            )
            if others < self.config.min_alive:
                return
            if node.storage.unflushed_count > 0 or cluster.sim.now >= deadline:
                dirty = node.storage.unflushed_count
                cluster.crash(site)
                self._note("crash", f"{site} (unflushed={dirty})")
            else:
                cluster.sim.schedule(0.001, strike, label="chaos crash arm")

        cluster.sim.call_soon(strike)
        return f"{site} armed"

    def _do_recover(self) -> str:
        cluster = self.cluster
        dead = [s for s in cluster.universe if not cluster.nodes[s].alive]
        site = self.rng.choice(dead)
        cluster.recover(site)
        return site

    def _do_partition(self) -> str:
        cluster = self.cluster
        sites = list(cluster.universe)
        self.rng.shuffle(sites)
        cut = self.rng.randrange(1, len(sites))
        groups = [sorted(sites[:cut]), sorted(sites[cut:])]
        cluster.partition(groups)
        self._partitioned = True
        return f"{groups[0]} | {groups[1]}"

    def _do_heal(self) -> str:
        self.cluster.heal()
        self._partitioned = False
        return ""

    def _do_one_way(self) -> str:
        cluster, rng = self.cluster, self.rng
        src, dst = rng.sample(list(cluster.universe), 2)
        if rng.random() < 0.6:
            injector = OneWayLinkInjector(src, dst, loss_rate=1.0)
        else:
            injector = OneWayLinkInjector(src, dst, loss_rate=0.5,
                                          extra_latency=0.02)
        cluster.add_injector(injector)
        hold = 0.3 + rng.random() * 0.9
        cluster.sim.schedule(hold, self._end_one_way, injector,
                             label="chaos one-way end")
        return f"{injector.describe()} for {hold:.2f}s"

    def _end_one_way(self, injector) -> None:
        # remove_injector tolerates an already-cleared pipeline (quiesce).
        self.cluster.remove_injector(injector)
        self._note("one_way_end", injector.describe())

    def _do_loss_burst(self) -> str:
        cluster, rng = self.cluster, self.rng
        rate = 0.05 + 0.15 * rng.random() * self.config.intensity
        cluster.set_loss_rate(rate)
        self._loss_burst_active = True
        hold = 0.2 + rng.random() * 0.4
        cluster.sim.schedule(hold, self._end_loss_burst,
                             label="chaos loss burst end")
        return f"loss={rate:.3f} for {hold:.2f}s"

    def _end_loss_burst(self) -> None:
        self.cluster.set_loss_rate(0.0)
        self._loss_burst_active = False
        self._note("loss_burst_end", "")

    def _note(self, action: str, detail: str) -> None:
        now = self.cluster.sim.now
        self.report.events.append((now, action, detail))
        if self.cluster.tracer is not None:
            self.cluster.tracer.emit("--", "fault", f"chaos_{action}", detail)

    # ------------------------------------------------------------------
    # Quiescence and verdict
    # ------------------------------------------------------------------
    def _quiesce(self) -> None:
        """Remove every fault source, bring everyone back, let the
        protocols converge."""
        cluster = self.cluster
        cluster.clear_injectors()
        cluster.set_loss_rate(0.0)
        self._loss_burst_active = False
        if self._partitioned:
            cluster.heal()
            self._partitioned = False
        # The last tears have already happened; recoveries from here on
        # should be clean so convergence is only a matter of time.
        if self._storage_faults is not None:
            self._storage_faults.tear_probability = 0.0
        for site in cluster.universe:
            if not cluster.nodes[site].alive:
                cluster.recover(site)
        self._note("quiesce", "all faults cleared, all sites recovering")
        cluster.await_all_active(timeout=self.config.quiesce_timeout)
        cluster.settle(1.0)

    def _finish(self, load: Optional[LoadGenerator],
                fleet=None) -> ChaosReport:
        cluster, report = self.cluster, self.report
        if self._storage_faults is not None:
            report.wal_tears = self._storage_faults.tears
            report.wal_corruptions = self._storage_faults.corruptions
        report.metrics = cluster.metrics_summary()
        if load is not None:
            report.metrics["workload_commits"] = len(load.committed())
            report.metrics["workload_aborts"] = len(load.aborted())
            report.metrics.update(load.metrics())
        if fleet is not None:
            report.metrics["workload_commits"] = len(fleet.committed())
            report.metrics["workload_aborts"] = len(fleet.aborted())
            report.metrics.update(fleet.metrics())
            report.metrics["dedup.suppressed"] = sum(
                node.duplicates_suppressed for node in cluster.nodes.values()
            )
        report.metrics["events_processed"] = cluster.sim.events_processed
        report.virtual_time = cluster.sim.now
        if report.error is not None:
            return report
        stuck = [
            s for s in cluster.universe
            if cluster.nodes[s].status is not SiteStatus.ACTIVE
        ]
        if stuck:
            report.error = (
                "quiesce timeout: "
                + ", ".join(f"{s}={cluster.nodes[s].status.value}" for s in stuck)
            )
            return report
        try:
            run_all_checks(cluster.history, list(cluster.nodes.values()),
                           sessions=fleet.sessions if fleet is not None else None)
        except ConsistencyViolation as violation:
            report.error = f"invariant violated: {violation}"
            return report
        report.ok = True
        return report


def run_chaos(seed: int, intensity: float = 0.5, **overrides: Any) -> ChaosReport:
    """One-call entry point: run a chaos storm and return its report."""
    config = ChaosConfig(seed=seed, intensity=intensity, **overrides)
    return ChaosEngine(config).run()
