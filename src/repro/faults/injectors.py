"""Composable network fault injectors.

An injector is a small object plugged into :class:`repro.net.Network`
(via ``network.add_injector``) that rewrites the *delivery schedule* of
each message.  When the network decides a message survives the basic
loss check, it computes the nominal latency ``d`` and builds the list
``[d]``; every installed injector is then given a chance to transform
that list:

* return ``[]``            — drop the message entirely;
* return ``[d]``           — deliver once, possibly with altered delay;
* return ``[d1, d2, ...]`` — deliver several copies (duplication).

Because injectors compose left-to-right, a duplicate produced by one
injector can subsequently be delayed or dropped by the next.  All
randomness comes from the simulator RNG passed in, so runs stay fully
deterministic for a given seed.

Matching is done on the *site* prefix of endpoint names: the cluster
gives every site two endpoints, ``S`` for group communication and
``S:xfer`` for the reliable data-transfer channel, and a fault on a link
should normally affect both.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional


def site_of(node_id: str) -> str:
    """The site that owns an endpoint (``"B:xfer"`` -> ``"B"``)."""
    return node_id.split(":", 1)[0]


class FaultInjector:
    """Base class: pass-through (identity) transform.

    ``transform`` receives the source/destination endpoint names, the
    payload, the current list of planned delivery delays, the simulator
    RNG, and the current simulation time; it returns the new list of
    delays.  Implementations must not mutate ``delays`` in place.
    """

    def transform(
        self,
        src: str,
        dst: str,
        payload: Any,
        delays: List[float],
        rng: random.Random,
        now: float,
    ) -> List[float]:
        return delays

    def describe(self) -> str:
        return type(self).__name__


class DuplicateInjector(FaultInjector):
    """Deliver extra copies of a message with probability ``rate``.

    Each duplicate is scheduled a small random offset (up to ``spread``)
    after the original, modelling retransmission artefacts at the
    transport layer.  The protocols above must therefore be idempotent
    against re-delivery — which this injector exists to prove.
    """

    def __init__(self, rate: float = 0.1, copies: int = 1, spread: float = 0.05) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.rate = rate
        self.copies = copies
        self.spread = spread

    def transform(self, src, dst, payload, delays, rng, now):
        out = list(delays)
        for delay in delays:
            if rng.random() < self.rate:
                for _ in range(self.copies):
                    out.append(delay + rng.random() * self.spread)
        return out

    def describe(self) -> str:
        return f"dup(rate={self.rate}, copies={self.copies})"


class ReorderInjector(FaultInjector):
    """Delay a message by a bounded random extra amount with probability
    ``rate``, letting later sends overtake it.

    The extra delay is uniform in ``(0, max_extra]``; because the network
    already randomises base latency, even a small ``max_extra`` produces
    genuine out-of-order delivery between a pair of endpoints.
    """

    def __init__(self, rate: float = 0.2, max_extra: float = 0.05) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if max_extra <= 0.0:
            raise ValueError("max_extra must be positive")
        self.rate = rate
        self.max_extra = max_extra

    def transform(self, src, dst, payload, delays, rng, now):
        out = []
        for delay in delays:
            if rng.random() < self.rate:
                delay += rng.random() * self.max_extra
            out.append(delay)
        return out

    def describe(self) -> str:
        return f"reorder(rate={self.rate}, max_extra={self.max_extra})"


class OneWayLinkInjector(FaultInjector):
    """Asymmetric link degradation: traffic *from* ``src_site`` *to*
    ``dst_site`` is lost with ``loss_rate`` and/or slowed by
    ``extra_latency``; the reverse direction is untouched.

    This models the nastiest failure mode for request/ack protocols: the
    data flows but the acknowledgements (or vice versa) silently vanish,
    so neither side sees a crash or view change.  ``loss_rate=1.0`` is a
    full one-way blackout.  Matching is by site prefix, so both the GCS
    endpoint and the ``:xfer`` transfer endpoint of the site pair are
    affected.
    """

    def __init__(
        self,
        src_site: str,
        dst_site: str,
        loss_rate: float = 1.0,
        extra_latency: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if extra_latency < 0.0:
            raise ValueError("extra_latency must be >= 0")
        self.src_site = src_site
        self.dst_site = dst_site
        self.loss_rate = loss_rate
        self.extra_latency = extra_latency

    def matches(self, src: str, dst: str) -> bool:
        return site_of(src) == self.src_site and site_of(dst) == self.dst_site

    def transform(self, src, dst, payload, delays, rng, now):
        if not self.matches(src, dst):
            return delays
        out = []
        for delay in delays:
            if self.loss_rate > 0.0 and rng.random() < self.loss_rate:
                continue
            out.append(delay + self.extra_latency)
        return out

    def describe(self) -> str:
        return (
            f"oneway({self.src_site}->{self.dst_site}, "
            f"loss={self.loss_rate}, +{self.extra_latency})"
        )


class LatencySpikeInjector(FaultInjector):
    """Random latency bursts: with probability ``rate`` per message a
    burst starts, and for ``burst_duration`` of simulated time *all*
    messages get ``spike`` added to their delay.

    Bursts model transient congestion — during one, timeouts fire and
    retransmissions pile up even though nothing is lost.
    """

    def __init__(
        self,
        rate: float = 0.02,
        spike: float = 0.2,
        burst_duration: float = 0.3,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if spike < 0.0 or burst_duration < 0.0:
            raise ValueError("spike and burst_duration must be >= 0")
        self.rate = rate
        self.spike = spike
        self.burst_duration = burst_duration
        self._burst_until = -1.0

    def in_burst(self, now: float) -> bool:
        return now < self._burst_until

    def transform(self, src, dst, payload, delays, rng, now):
        if not self.in_burst(now) and rng.random() < self.rate:
            self._burst_until = now + self.burst_duration
        if not self.in_burst(now):
            return delays
        return [delay + self.spike for delay in delays]

    def describe(self) -> str:
        return f"spike(rate={self.rate}, +{self.spike} for {self.burst_duration})"
