"""Storage fault models applied at crash time.

A real crash can tear the WAL tail: records sitting in the OS page
cache (appended but not yet fsynced) may be lost wholesale, and the
sector being written at the instant of the crash may be half-written
garbage.  :class:`TornTailFaults` reproduces exactly that against
:class:`repro.db.wal.PersistentStorage`, which tracks the durable
(flushed) prefix separately from the volatile tail.

The model is installed on a node (``node.storage_faults``) or cluster
(``cluster.install_storage_faults``) and consulted by
``ReplicatedDatabaseNode.crash()``; recovery then detects the damage via
the per-record CRC32 checksums and rejoins through data transfer.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.db.wal import PersistentStorage


class TornTailFaults:
    """Tear the unflushed WAL tail on crash.

    With probability ``tear_probability`` a crash loses a random suffix
    of the unflushed records; with probability ``corrupt_probability``
    the record at the tear point is kept but fails its checksum (a
    partially-written sector) instead of disappearing cleanly.  The
    durable prefix — everything up to the last flush — is never touched.
    """

    def __init__(
        self,
        tear_probability: float = 1.0,
        corrupt_probability: float = 0.5,
    ) -> None:
        if not 0.0 <= tear_probability <= 1.0:
            raise ValueError(f"tear_probability must be in [0, 1], got {tear_probability}")
        if not 0.0 <= corrupt_probability <= 1.0:
            raise ValueError(f"corrupt_probability must be in [0, 1], got {corrupt_probability}")
        self.tear_probability = tear_probability
        self.corrupt_probability = corrupt_probability
        self.tears = 0
        self.corruptions = 0

    def on_crash(self, storage: PersistentStorage, rng: random.Random) -> int:
        """Apply the fault to ``storage``; returns records affected
        (dropped outright plus the one left corrupted, if any)."""
        unflushed = storage.unflushed_count
        if unflushed == 0 or rng.random() >= self.tear_probability:
            return 0
        keep = rng.randrange(unflushed)  # damage at least one record
        corrupt = rng.random() < self.corrupt_probability
        corrupt_before = storage.corrupt_records
        dropped = storage.tear_tail(keep, corrupt_next=corrupt)
        corrupted = storage.corrupt_records > corrupt_before
        affected = dropped + (1 if corrupted else 0)
        if affected:
            self.tears += 1
            if corrupted:
                self.corruptions += 1
        return affected

    def describe(self) -> str:
        return (
            f"torn-tail(tear={self.tear_probability}, "
            f"corrupt={self.corrupt_probability})"
        )


class StableStateCorruptor:
    """Corrupted-but-CRC-valid stable state for self-stabilization starts.

    Unlike :class:`TornTailFaults` (which damages records so recovery's
    checksum scan *detects* them), this model produces states every
    record of which checksums clean — the damage is structural, the kind
    a disk that lied about fsync or a buggy checkpointer leaves behind.
    Single-site recovery has no local way to notice; the endurance runs
    (:mod:`repro.endurance`) boot sites from such states and require the
    protocol stack to converge anyway.

    Every operation only *loses* or *duplicates* genuine state, never
    fabricates it, so the result is always a plausible stale replica:

    * ``lost_suffix`` — drop a suffix of the log **including durable
      records** (the fsync lie).  The surviving prefix may be older than
      the checkpoint image; the recomputed cover is honestly lower and
      the data transfer resends everything above it.
    * ``outcome_amnesia`` — forget a random subset of the checkpointed
      exactly-once outcome rows.  Healed because transfer completion
      replaces the joiner's table wholesale (``OutcomeTable.reset_to``)
      before any replay decision consults it.
    * ``duplicate_records`` — stutter a chunk of log records (a replayed
      journal segment).  Recovery's terminated-set bookkeeping and
      forward-version-only redo make the second copy a no-op.

    Applied to a crashed site's storage between ``crash()`` and
    ``recover()``; decisions draw from a dedicated seeded RNG so a
    corruption campaign is reproducible independent of the simulation.
    """

    OPS = ("lost_suffix", "outcome_amnesia", "duplicate_records")

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(f"stabilize-{seed}")
        #: ``(site, op, detail)`` per corruption applied, in order.
        self.applied = []

    def corrupt(self, storage: PersistentStorage, site: str = "?",
                op: "str | None" = None) -> str:
        """Apply one corruption; returns ``"op: detail"``.

        ``op`` pins the operation explicitly (the schedule-search genome
        carries it as a gene field so a replay makes the identical
        choice); None keeps the historical random pick."""
        if op is None:
            op = self.rng.choice(self.OPS)
        elif op not in self.OPS:
            raise ValueError(f"unknown corruption op {op!r}; "
                             f"valid: {', '.join(self.OPS)}")
        detail = getattr(self, f"_{op}")(storage)
        self.applied.append((site, op, detail))
        return f"{op}: {detail}"

    def _lost_suffix(self, storage: PersistentStorage) -> str:
        if len(storage.log) <= 1:
            return "log too short, nothing lost"
        # Keep at least the leading baseline record so the site still
        # looks like it once held a copy.
        cut = self.rng.randrange(1, len(storage.log))
        durable_before = storage.durable_length
        removed = storage.truncate_at(cut)
        durable_lost = max(0, durable_before - storage.durable_length)
        return (f"dropped {removed} records from index {cut} "
                f"({durable_lost} of them durable)")

    def _outcome_amnesia(self, storage: PersistentStorage) -> str:
        rows = storage.outcome_image
        if not rows:
            return "no checkpointed outcome rows to forget"
        kept = tuple(row for row in rows if self.rng.random() >= 0.5)
        storage.outcome_image = kept
        return f"forgot {len(rows) - len(kept)} of {len(rows)} outcome rows"

    def _duplicate_records(self, storage: PersistentStorage) -> str:
        if not storage.log:
            return "empty log, nothing to duplicate"
        start = self.rng.randrange(len(storage.log))
        length = min(1 + self.rng.randrange(4), len(storage.log) - start)
        chunk = storage.log[start:start + length]
        insert_at = start + length
        storage.log[insert_at:insert_at] = chunk
        storage._crcs[insert_at:insert_at] = [None] * len(chunk)
        # A duplicated durable segment is itself durable.
        if insert_at <= storage.durable_length:
            storage.durable_length += len(chunk)
        return f"stuttered {length} records at index {start}"

    def describe(self) -> str:
        return f"stable-state-corruptor({len(self.applied)} applied)"
