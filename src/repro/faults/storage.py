"""Storage fault models applied at crash time.

A real crash can tear the WAL tail: records sitting in the OS page
cache (appended but not yet fsynced) may be lost wholesale, and the
sector being written at the instant of the crash may be half-written
garbage.  :class:`TornTailFaults` reproduces exactly that against
:class:`repro.db.wal.PersistentStorage`, which tracks the durable
(flushed) prefix separately from the volatile tail.

The model is installed on a node (``node.storage_faults``) or cluster
(``cluster.install_storage_faults``) and consulted by
``ReplicatedDatabaseNode.crash()``; recovery then detects the damage via
the per-record CRC32 checksums and rejoins through data transfer.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.db.wal import PersistentStorage


class TornTailFaults:
    """Tear the unflushed WAL tail on crash.

    With probability ``tear_probability`` a crash loses a random suffix
    of the unflushed records; with probability ``corrupt_probability``
    the record at the tear point is kept but fails its checksum (a
    partially-written sector) instead of disappearing cleanly.  The
    durable prefix — everything up to the last flush — is never touched.
    """

    def __init__(
        self,
        tear_probability: float = 1.0,
        corrupt_probability: float = 0.5,
    ) -> None:
        if not 0.0 <= tear_probability <= 1.0:
            raise ValueError(f"tear_probability must be in [0, 1], got {tear_probability}")
        if not 0.0 <= corrupt_probability <= 1.0:
            raise ValueError(f"corrupt_probability must be in [0, 1], got {corrupt_probability}")
        self.tear_probability = tear_probability
        self.corrupt_probability = corrupt_probability
        self.tears = 0
        self.corruptions = 0

    def on_crash(self, storage: PersistentStorage, rng: random.Random) -> int:
        """Apply the fault to ``storage``; returns records affected
        (dropped outright plus the one left corrupted, if any)."""
        unflushed = storage.unflushed_count
        if unflushed == 0 or rng.random() >= self.tear_probability:
            return 0
        keep = rng.randrange(unflushed)  # damage at least one record
        corrupt = rng.random() < self.corrupt_probability
        corrupt_before = storage.corrupt_records
        dropped = storage.tear_tail(keep, corrupt_next=corrupt)
        corrupted = storage.corrupt_records > corrupt_before
        affected = dropped + (1 if corrupted else 0)
        if affected:
            self.tears += 1
            if corrupted:
                self.corruptions += 1
        return affected

    def describe(self) -> str:
        return (
            f"torn-tail(tear={self.tear_probability}, "
            f"corrupt={self.corrupt_probability})"
        )
