"""Fault injection: network injectors, storage fault models, chaos.

The subpackage groups everything that deliberately breaks a cluster:

* :mod:`repro.faults.injectors` — composable network-level injectors
  (duplication, reordering, one-way link degradation, latency spikes)
  plugged into :class:`repro.net.Network`;
* :mod:`repro.faults.storage` — crash-time WAL damage
  (:class:`TornTailFaults`), detected at recovery via per-record
  checksums, and CRC-valid stable-state damage
  (:class:`StableStateCorruptor`) for self-stabilization starts;
* :mod:`repro.faults.churn` — the membership-churn segment composers
  (rolling restarts, partition/merge cycles, join/leave churn,
  stabilization starts) driven by :mod:`repro.endurance`;
* :mod:`repro.faults.chaos` — the seeded randomized chaos engine that
  combines all of the above and asserts the global invariants.
"""

from repro.faults.chaos import ChaosConfig, ChaosEngine, ChaosReport, run_chaos
from repro.faults.churn import SEGMENTS
from repro.faults.injectors import (
    DuplicateInjector,
    FaultInjector,
    LatencySpikeInjector,
    OneWayLinkInjector,
    ReorderInjector,
    site_of,
)
from repro.faults.storage import StableStateCorruptor, TornTailFaults

__all__ = [
    "ChaosConfig",
    "ChaosEngine",
    "ChaosReport",
    "DuplicateInjector",
    "FaultInjector",
    "LatencySpikeInjector",
    "OneWayLinkInjector",
    "ReorderInjector",
    "SEGMENTS",
    "StableStateCorruptor",
    "TornTailFaults",
    "run_chaos",
    "site_of",
]
