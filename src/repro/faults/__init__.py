"""Fault injection: network injectors, storage fault models, chaos.

The subpackage groups everything that deliberately breaks a cluster:

* :mod:`repro.faults.injectors` — composable network-level injectors
  (duplication, reordering, one-way link degradation, latency spikes)
  plugged into :class:`repro.net.Network`;
* :mod:`repro.faults.storage` — crash-time WAL damage
  (:class:`TornTailFaults`), detected at recovery via per-record
  checksums;
* :mod:`repro.faults.chaos` — the seeded randomized chaos engine that
  combines all of the above and asserts the global invariants.
"""

from repro.faults.chaos import ChaosConfig, ChaosEngine, ChaosReport, run_chaos
from repro.faults.injectors import (
    DuplicateInjector,
    FaultInjector,
    LatencySpikeInjector,
    OneWayLinkInjector,
    ReorderInjector,
    site_of,
)
from repro.faults.storage import TornTailFaults

__all__ = [
    "ChaosConfig",
    "ChaosEngine",
    "ChaosReport",
    "DuplicateInjector",
    "FaultInjector",
    "LatencySpikeInjector",
    "OneWayLinkInjector",
    "ReorderInjector",
    "TornTailFaults",
    "run_chaos",
    "site_of",
]
