"""Global correctness checkers.

These validate the guarantees the paper claims, across a whole simulated
history:

* **total order / gid consistency** — every site processes transactions
  in strictly increasing gid order, and any two sites that processed the
  same gid saw the same transaction message;
* **decision agreement (transaction atomicity, section 2.3)** — no site
  commits a transaction another site aborts: the version check is
  deterministic, so commit/abort is a pure function of the gid prefix;
* **1-copy-serializability (section 2.2)** — replaying the committed
  transactions in gid order, every committed transaction's recorded read
  versions match the replay state: the gid order is a valid serial order
  consistent with every read;
* **replica convergence** — all up-to-date sites hold byte-identical
  database states.

The :class:`HistoryRecorder` collects the per-site event streams that
feed the checks (the cluster wires it to every node's ``on_txn_event``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.replication.messages import TransactionMessage


@dataclass
class TxnEvent:
    site: str
    kind: str  # "commit" | "abort"
    gid: int
    message: TransactionMessage
    time: float


class HistoryRecorder:
    """Collects commit/abort events from every site of a cluster."""

    def __init__(self, clock=None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.events: List[TxnEvent] = []
        self.by_site: Dict[str, List[TxnEvent]] = {}

    def record(self, site: str, kind: str, gid: int, message: TransactionMessage) -> None:
        event = TxnEvent(site=site, kind=kind, gid=gid, message=message, time=self._clock())
        self.events.append(event)
        self.by_site.setdefault(site, []).append(event)

    # ------------------------------------------------------------------
    def commits_of(self, site: str) -> List[int]:
        return [e.gid for e in self.by_site.get(site, []) if e.kind == "commit"]

    def decided_gids(self) -> Set[int]:
        return {e.gid for e in self.events}


class ConsistencyViolation(AssertionError):
    """Raised when a checker finds a violated guarantee."""


def check_gid_consistency(history: HistoryRecorder) -> None:
    """Same gid => same transaction message, across all sites."""
    seen: Dict[int, TransactionMessage] = {}
    for event in history.events:
        previous = seen.get(event.gid)
        if previous is None:
            seen[event.gid] = event.message
        elif previous != event.message:
            raise ConsistencyViolation(
                f"gid {event.gid} bound to two different transactions: "
                f"{previous} vs {event.message}"
            )


def check_processing_order(history: HistoryRecorder) -> None:
    """Each site terminates transactions without ever *starting* them out
    of order.  Termination order may legally deviate (non-conflicting
    write phases run concurrently), so we check the per-site gid streams
    only for duplicates; delivery-order is enforced by construction and
    covered by gid consistency."""
    for site, events in history.by_site.items():
        seen: Set[int] = set()
        for event in events:
            if event.gid in seen:
                raise ConsistencyViolation(f"{site} terminated gid {event.gid} twice")
            seen.add(event.gid)


def check_decision_agreement(history: HistoryRecorder) -> None:
    """No transaction may commit at one site and abort at another."""
    decisions: Dict[int, str] = {}
    for event in history.events:
        previous = decisions.get(event.gid)
        if previous is None:
            decisions[event.gid] = event.kind
        elif previous != event.kind:
            raise ConsistencyViolation(
                f"gid {event.gid} {previous} at one site but {event.kind} at {event.site}"
            )


def check_one_copy_serializability(history: HistoryRecorder) -> None:
    """The gid order is a valid serial order for the committed history.

    Replay all committed transactions in gid order against a virtual
    one-copy database of versions; every recorded read must have seen
    exactly the version the serial execution produces.
    """
    committed: Dict[int, TransactionMessage] = {}
    for event in history.events:
        if event.kind == "commit":
            committed[event.gid] = event.message
    version: Dict[str, int] = {}
    for gid in sorted(committed):
        message = committed[gid]
        for obj, read_version in message.read_set:
            current = version.get(obj, -1)
            if current != read_version:
                raise ConsistencyViolation(
                    f"gid {gid} read {obj} at version {read_version}, but the "
                    f"serial execution has version {current}"
                )
        for obj, _value in message.write_set:
            version[obj] = gid


def check_convergence(nodes) -> None:
    """All up-to-date sites hold identical database contents."""
    digests = {}
    for node in nodes:
        if node.alive and node.up_to_date:
            digests[node.site_id] = node.db.store.content_digest()
    if len(set(digests.values())) > 1:
        detail = {site: hash(d) for site, d in digests.items()}
        raise ConsistencyViolation(f"replica divergence among up-to-date sites: {detail}")


def check_view_synchrony(nodes) -> None:
    """Any two sites that installed a view with the same identifier agree
    on its membership — the heart of the virtual-synchrony contract the
    replica control protocol builds on (section 2.1).

    Checked over each member's full installation history, so a violation
    is caught even if later views diverge back into agreement.
    """
    seen: Dict[Any, Tuple[str, Tuple[str, ...]]] = {}
    for node in nodes:
        for view in node.member.views_installed:
            previous = seen.get(view.view_id)
            if previous is None:
                seen[view.view_id] = (node.site_id, view.members)
            elif previous[1] != view.members:
                raise ConsistencyViolation(
                    f"view {view.view_id} installed with members "
                    f"{previous[1]} at {previous[0]} but {view.members} "
                    f"at {node.site_id}"
                )


def check_atomicity_durability(history: HistoryRecorder, nodes) -> None:
    """Every committed transaction's writes are present (at that or a
    newer version) at every up-to-date site."""
    committed: Dict[int, TransactionMessage] = {}
    for event in history.events:
        if event.kind == "commit":
            committed[event.gid] = event.message
    for node in nodes:
        if not (node.alive and node.up_to_date):
            continue
        for gid, message in committed.items():
            for obj, _value in message.write_set:
                if obj not in node.db.store:
                    raise ConsistencyViolation(
                        f"{node.site_id} misses object {obj} written by committed gid {gid}"
                    )
                if node.db.store.version(obj) < gid:
                    raise ConsistencyViolation(
                        f"{node.site_id} has {obj} at version "
                        f"{node.db.store.version(obj)} < committed writer {gid}"
                    )


def check_exactly_once(history: HistoryRecorder, sessions) -> None:
    """Every client request executes at most once system-wide, and a
    session's verdict matches the global history.

    ``sessions`` is an iterable of :class:`repro.client.ClientSession`.
    Per logical request ``(client_id, seq)``:

    * at most one distinct gid may commit across all attempts — a second
      commit means the dedup table failed to suppress a resubmission;
    * a session that reports COMMITTED must match the gid that actually
      committed (and one must exist);
    * a session that reports ABORTED (all attempts settled definitively)
      must have no commit in the history;
    * EXHAUSTED (gave up with attempts in doubt) tolerates zero or one
      commit — the at-most-once half still holds;
    * a request still PENDING after the drain is itself a liveness
      violation.
    """
    commits: Dict[Tuple[str, int], Set[int]] = {}
    for event in history.events:
        request = event.message.request
        if request is None or event.kind != "commit":
            continue
        commits.setdefault(request.key, set()).add(event.gid)

    for key, gids in commits.items():
        if len(gids) > 1:
            raise ConsistencyViolation(
                f"request {key[0]}:{key[1]} committed under "
                f"{len(gids)} distinct gids {sorted(gids)}: executed more than once"
            )

    for session in sessions:
        for record in session.records:
            key = (record.client_id, record.seq)
            committed_gids = commits.get(key, set())
            if record.state.value == "committed":
                if not committed_gids:
                    raise ConsistencyViolation(
                        f"request {key[0]}:{key[1]} reported committed "
                        f"(gid {record.committed_gid}) but no site committed it"
                    )
                if record.committed_gid not in committed_gids:
                    raise ConsistencyViolation(
                        f"request {key[0]}:{key[1]} reported gid "
                        f"{record.committed_gid} but the history committed it "
                        f"as {sorted(committed_gids)}"
                    )
            elif record.state.value == "aborted":
                if committed_gids:
                    raise ConsistencyViolation(
                        f"request {key[0]}:{key[1]} reported a definitive "
                        f"abort but committed as gid {sorted(committed_gids)}"
                    )
            elif record.state.value == "pending":
                raise ConsistencyViolation(
                    f"request {key[0]}:{key[1]} still pending after drain"
                )
            # EXHAUSTED: zero or one commit both legal; the multi-commit
            # case was already rejected above.


@dataclass(frozen=True)
class AvailabilityWindow:
    """One contiguous zero-commit span of an availability timeline.

    ``covered`` classifies the window against the run's reconfiguration
    epochs (when the caller supplies them): ``True`` means every second
    of the dark span is explained by an epoch interval (the cluster was
    *blocked* by an in-progress reconfiguration), ``False`` means part
    of it is *uncovered* — dark time no epoch accounts for, the kind of
    gap that exposed the storm-epoch model (see
    :mod:`repro.obs.epochs`).  ``None`` means unclassified.
    """

    start: float
    end: float
    covered: Optional[bool] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def describe(self) -> str:
        label = {True: " [blocked]", False: " [uncovered]", None: ""}
        return (f"t={self.start:.3f}..t={self.end:.3f} "
                f"({self.duration:.3f}s){label[self.covered]}")


def availability_violations(samples, window: float, bin_width: float,
                            warmup: float = 0.0, min_span: Optional[float] = None,
                            epochs=None) -> List[AvailabilityWindow]:
    """Every zero-commit span of an availability timeline, longest first.

    ``samples`` is the endurance timeline: ``(time, commits,
    maintenance)`` bins where ``time`` is the virtual end of the bin.
    Maintenance bins and the ``warmup`` prefix break a span without
    counting toward it, exactly as in :func:`check_availability_floor`.
    A zero bin ending at ``t`` darkens ``[t - bin_width, t]``; adjacent
    zero bins merge.

    ``min_span`` filters the result (default: ``window``, i.e. only the
    floor *violations*); pass ``bin_width`` to get every dark span — the
    schedule search scores partial damage from the full list.  When
    ``epochs`` (:class:`repro.obs.epochs.EpochRecord` sequence) is
    given, each window is classified blocked/uncovered via
    :func:`repro.obs.epochs.uncovered_blocked_time` with one bin of
    slack.
    """
    if window <= 0 or bin_width <= 0:
        raise ValueError("window and bin_width must be positive")
    if min_span is None:
        min_span = window
    spans: List[Tuple[float, float]] = []
    gap_start: Optional[float] = None
    gap_end: Optional[float] = None
    for time, commits, maintenance in samples:
        if time <= warmup or maintenance or commits > 0:
            if gap_start is not None:
                spans.append((gap_start, gap_end))
            gap_start = gap_end = None
            continue
        if gap_start is None:
            gap_start = time - bin_width
        gap_end = time
    if gap_start is not None:
        spans.append((gap_start, gap_end))
    windows = []
    for start, end in spans:
        if end - start < min_span:
            continue
        covered = None
        if epochs is not None:
            from repro.obs.epochs import uncovered_blocked_time

            covered = uncovered_blocked_time(
                epochs, [(start, end)], slack=bin_width) == 0.0
        windows.append(AvailabilityWindow(start, end, covered))
    windows.sort(key=lambda w: (-w.duration, w.start))
    return windows


def check_availability_floor(samples, window: float, bin_width: float,
                             warmup: float = 0.0, epochs=None) -> None:
    """The system never stops serving clients for a whole window.

    ``samples`` is the availability timeline of an endurance run: an
    iterable of ``(time, commits, maintenance)`` bins, where ``time`` is
    the virtual end of the bin, ``commits`` the client requests committed
    during it, and ``maintenance`` flags bins in which the harness itself
    paused the fleet (quiescent sweeps) — those are excluded, as is a
    ``warmup`` prefix while the cluster bootstraps.

    A consecutive run of zero-commit, non-maintenance bins spanning at
    least ``window`` virtual seconds is an availability-floor violation:
    the cluster went dark under churn instead of riding it out.  The
    violation reports **every** violating window (longest first, with
    blocked/uncovered classification when ``epochs`` are supplied), not
    just the first — the schedule search ranks schedules by total
    damage, and a one-window error would hide most of it.
    """
    violations = availability_violations(samples, window, bin_width,
                                         warmup=warmup, epochs=epochs)
    if not violations:
        return
    worst = violations[0]
    detail = "; ".join(w.describe() for w in violations)
    raise ConsistencyViolation(
        f"availability floor violated: no client commit for "
        f"{worst.duration:.3f}s >= window {window:g}s in "
        f"{len(violations)} window(s): {detail}"
    )


def run_all_checks(history: HistoryRecorder, nodes, sessions=None) -> None:
    """Run the full checker battery (used by tests and examples)."""
    check_gid_consistency(history)
    check_processing_order(history)
    check_decision_agreement(history)
    check_one_copy_serializability(history)
    check_view_synchrony(nodes)
    check_convergence(nodes)
    check_atomicity_durability(history, nodes)
    if sessions is not None:
        check_exactly_once(history, sessions)
