"""Epoch analytics: decompose reconfiguration downtime phase by phase.

An **epoch** is one site's journey from leaving service (crash,
partition-suspension, or first boot as a joiner) back to ACTIVE
membership.  :func:`extract_epochs` reconstructs every epoch of a run
from the Tracer event bus alone — it works identically on a live
``cluster.tracer`` and on events reloaded from a JSON-lines export —
and tiles each epoch into the paper's protocol phases:

``down``
    fail-stop outage: crash until the site restarts (suspicion +
    detection + operator restart delay).
``membership``
    restart (or suspension) until the first view installation — the
    group-membership agreement plus the view-synchronous flush.
``transfer_wait``
    view installed, waiting for a peer's transfer offer (solicitation,
    offer retries).
``transfer``
    accepted offer until the data transfer completes (bytes,
    retransmissions and peer fail-overs are attributed here).
``replay``
    WAL/log replay of transactions missed while away.
``drain``
    replay-pending drain and residual catch-up until ACTIVE.

The tiling is exact by construction: phase boundaries are clamped
monotonically into ``[start, end]``, so the phase durations of every
epoch sum to its recovery window to within floating-point rounding.

Besides per-site epochs, the extractor emits **cluster epochs** (site
``--``, trigger ``partition_storm``) for network partitions injected by
the chaos/endurance engines: a partition can block commits cluster-wide
without any single site leaving service, so the storm interval — split
until heal (``down``), then heal until the next view installation
(``membership``) — is what explains those outage windows.

Blocked-window coverage (:func:`blocked_windows`,
:func:`uncovered_blocked_time`) mirrors the gap logic of
``repro.checkers.check_availability_floor`` so the client-visible
outage bins of an endurance run can be checked against the epoch
intervals that explain them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical phase order.  Every epoch's ``phases`` list is a subset of
#: these names, in this order; summary tables always show all of them.
PHASE_ORDER: Tuple[str, ...] = (
    "down", "membership", "transfer_wait", "transfer", "replay", "drain",
)

#: Status kinds that open an epoch.
_OPENING = ("down", "recovering", "suspended")


@dataclass
class PhaseSlice:
    """One contiguous slice of an epoch attributed to a protocol phase."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EpochRecord:
    """One reconstructed reconfiguration epoch of one site."""

    site: str
    trigger: str          # "crash" | "partition" | "join" | "churn:<segment>"
    start: float
    end: float
    phases: List[PhaseSlice] = field(default_factory=list)
    #: True when the run (or a second fault) cut the epoch short: the
    #: site never reached ACTIVE inside this epoch.
    truncated: bool = False
    #: Transfer economics, from the counter snapshots the tracer embeds
    #: in transfer events (deltas between accept and complete).
    bytes_received: int = 0
    objects_received: int = 0
    retransmissions: int = 0
    #: Superseded transfer sessions (peer fail-over) inside the epoch.
    failovers: int = 0
    replayed: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def phase_durations(self) -> Dict[str, float]:
        """Per-phase seconds, padded with 0.0 to the full PHASE_ORDER."""
        durations = {name: 0.0 for name in PHASE_ORDER}
        for phase in self.phases:
            durations[phase.name] = durations.get(phase.name, 0.0) + phase.duration
        return durations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "trigger": self.trigger,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "truncated": self.truncated,
            "phases": self.phase_durations(),
            "bytes_received": self.bytes_received,
            "objects_received": self.objects_received,
            "retransmissions": self.retransmissions,
            "failovers": self.failovers,
            "replayed": self.replayed,
        }


class _OpenEpoch:
    """Per-site accumulator while an epoch is in flight."""

    __slots__ = ("site", "trigger", "start", "restart", "install", "accept",
                 "transfer_done", "replay_start", "caught_up", "failovers",
                 "accept_snapshot", "complete_snapshot", "replayed")

    def __init__(self, site: str, trigger: str, start: float) -> None:
        self.site = site
        self.trigger = trigger
        self.start = start
        self.restart: Optional[float] = None       # down -> recovering
        self.install: Optional[float] = None       # first view install
        self.accept: Optional[float] = None        # first transfer accept
        self.transfer_done: Optional[float] = None
        self.replay_start: Optional[float] = None
        self.caught_up: Optional[float] = None
        self.failovers = 0
        self.accept_snapshot: Dict[str, int] = {}
        self.complete_snapshot: Dict[str, int] = {}
        self.replayed = 0

    def close(self, end: float, truncated: bool) -> EpochRecord:
        record = EpochRecord(self.site, self.trigger, self.start, end,
                             truncated=truncated, failovers=self.failovers,
                             replayed=self.replayed)
        # Tile [start, end] with monotonically clamped boundaries; the
        # final "drain" slice absorbs whatever remains, so durations sum
        # to the window exactly.
        markers = (
            ("down", self.restart),
            ("membership", self.install),
            ("transfer_wait", self.accept),
            ("transfer", self.transfer_done),
            ("replay", self.caught_up),
        )
        cursor = self.start
        for name, marker in markers:
            if marker is None:
                continue
            boundary = min(max(marker, cursor), end)
            record.phases.append(PhaseSlice(name, cursor, boundary))
            cursor = boundary
        record.phases.append(PhaseSlice("drain", cursor, end))
        if self.complete_snapshot:
            base = self.accept_snapshot
            record.bytes_received = max(
                0, self.complete_snapshot.get("bytes_received", 0)
                - base.get("bytes_received", 0))
            record.objects_received = max(
                0, self.complete_snapshot.get("objects_received", 0)
                - base.get("objects_received", 0))
            record.retransmissions = max(
                0, self.complete_snapshot.get("retransmissions", 0)
                - base.get("retransmissions", 0))
        return record


def _classify_trigger(kind: str, context: Optional[str]) -> str:
    """Trigger of an epoch from its opening status kind plus the nearest
    preceding chaos/endurance context event."""
    if kind == "down":
        return "crash"
    if kind == "suspended":
        return "partition"
    # "recovering" without a preceding local DOWN: a fresh joiner, a
    # scripted recover of a site crashed before tracing started, or a
    # churn restart.
    if context:
        return context
    return "join"


def extract_epochs(events: Iterable[Any],
                   end_time: Optional[float] = None) -> List[EpochRecord]:
    """Reconstruct every reconfiguration epoch from a trace event list.

    ``events`` is any iterable of :class:`repro.tracing.TraceEvent`
    (live tracer events or a reloaded ``RunData.events``).  Epochs still
    open at ``end_time`` (default: the last event's timestamp) are
    emitted as ``truncated``.
    """
    events = list(events)
    if end_time is None:
        end_time = events[-1].time if events else 0.0
    open_epochs: Dict[str, _OpenEpoch] = {}
    records: List[EpochRecord] = []
    #: Most recent chaos/endurance context, used to classify triggers.
    segment: Optional[str] = None
    #: Cluster-level partition-storm epoch (site "--"), open while the
    #: network is split or a post-heal view is still being agreed.
    storm: Optional[_OpenEpoch] = None

    for event in events:
        site, category, kind = event.site, event.category, event.kind
        data = event.data or {}

        if category == "endurance" and kind == "segment":
            segment = f"churn:{event.detail}" if event.detail else "churn"
            continue
        if category == "endurance" and kind == "segment_done":
            segment = None
            continue

        if (category, kind) in (("endurance", "partition"),
                                ("fault", "chaos_partition")):
            if storm is None:
                storm = _OpenEpoch("--", "partition_storm", event.time)
            else:
                # Another wave before the previous heal settled: the
                # storm continues, back in the split state.
                storm.restart = None
            continue
        if (category, kind) in (("endurance", "merge"),
                                ("fault", "chaos_heal")):
            if storm is not None:
                storm.restart = event.time
            continue

        if category == "status":
            epoch = open_epochs.get(site)
            if kind == "down":
                if epoch is not None:
                    # A second fault cut the recovery short: close the
                    # current epoch truncated and chain a new one.
                    records.append(epoch.close(event.time, truncated=True))
                open_epochs[site] = _OpenEpoch(
                    site, _classify_trigger("down", segment), event.time)
            elif kind in ("stalled", "recovering", "suspended"):
                # "stalled" is the restart instant (node.recover());
                # "recovering"/"suspended" come from the first view
                # installed afterwards — either marks the end of the
                # outage, and the latter two also open partition/join
                # epochs for sites that never crashed.
                if epoch is None:
                    if kind != "stalled":
                        open_epochs[site] = _OpenEpoch(
                            site, _classify_trigger(kind, segment), event.time)
                elif epoch.restart is None:
                    epoch.restart = event.time
            elif kind == "active":
                if epoch is not None:
                    records.append(epoch.close(event.time, truncated=False))
                    del open_epochs[site]
        elif category == "view" and kind == "install":
            # Membership agreement ends at the view in which the
            # transfer starts (or the last view before going active), so
            # keep tracking installs until an offer is accepted — the
            # restart itself installs a transitional singleton view at
            # the same timestamp which must not close the phase early.
            epoch = open_epochs.get(site)
            if epoch is not None and epoch.accept is None:
                epoch.install = event.time
            # First view installed after a heal closes the storm epoch:
            # commits resume once the merged membership is agreed.
            if storm is not None and storm.restart is not None:
                storm.install = event.time
                records.append(storm.close(event.time, truncated=False))
                storm = None
        elif category == "transfer":
            epoch = open_epochs.get(site)
            if epoch is None:
                continue
            if kind == "accept":
                if epoch.accept is None:
                    epoch.accept = event.time
                    epoch.accept_snapshot = {
                        k: int(v) for k, v in data.items()
                        if isinstance(v, (int, float)) and k != "peer"}
                else:  # superseded session: peer fail-over
                    epoch.failovers += 1
            elif kind == "complete" and epoch.transfer_done is None:
                epoch.transfer_done = event.time
                epoch.complete_snapshot = {
                    k: int(v) for k, v in data.items()
                    if isinstance(v, (int, float))}
        elif category == "replay":
            epoch = open_epochs.get(site)
            if epoch is None:
                continue
            if kind == "start" and epoch.replay_start is None:
                epoch.replay_start = event.time
            elif kind == "caught_up":
                if epoch.caught_up is None:
                    epoch.caught_up = event.time
                epoch.replayed = int(data.get("replayed", epoch.replayed) or 0)

    if storm is not None:
        records.append(storm.close(end_time, truncated=True))
    for site in sorted(open_epochs):
        records.append(open_epochs[site].close(end_time, truncated=True))
    records.sort(key=lambda r: (r.start, r.site))
    return records


# ----------------------------------------------------------------------
# Blocked-window coverage (mirrors checkers.check_availability_floor)
# ----------------------------------------------------------------------
def blocked_windows(events: Iterable[Any], warmup: float = 0.0
                    ) -> List[Tuple[float, float]]:
    """Client-visible zero-commit windows from ``availability_sample``
    trace events, using the same gap rule as
    ``check_availability_floor``: a zero-commit non-maintenance bin
    ending at ``t`` covers ``[t - bin_width, t]``; adjacent zero bins
    merge into one window."""
    samples = [(float(e.data["t"]), int(e.data["commits"]),
                bool(e.data["maintenance"]))
               for e in events
               if e.category == "endurance" and e.kind == "availability_sample"
               and e.data]
    if len(samples) < 2:
        return []
    deltas = sorted(b[0] - a[0] for a, b in zip(samples, samples[1:])
                    if b[0] > a[0])
    bin_width = deltas[len(deltas) // 2]
    windows: List[Tuple[float, float]] = []
    gap_start: Optional[float] = None
    for t, commits, maintenance in samples:
        if t <= warmup or maintenance:
            continue
        if commits == 0:
            if gap_start is None:
                gap_start = t - bin_width
        else:
            if gap_start is not None:
                windows.append((gap_start, t - bin_width))
                gap_start = None
    if gap_start is not None:
        windows.append((gap_start, samples[-1][0]))
    return [(s, e) for s, e in windows if e > s]


def uncovered_blocked_time(epochs: Sequence[EpochRecord],
                           windows: Sequence[Tuple[float, float]],
                           slack: float = 0.0) -> float:
    """Total blocked-window seconds NOT overlapped by any epoch.

    ``slack`` widens each epoch interval on both sides — one sampling
    bin of slack absorbs the bin-quantisation of the availability
    sampler relative to the exact fault times.
    """
    intervals = sorted((e.start - slack, e.end + slack) for e in epochs)
    merged: List[List[float]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    uncovered = 0.0
    for w_start, w_end in windows:
        cursor = w_start
        for start, end in merged:
            if end <= cursor:
                continue
            if start >= w_end:
                break
            if start > cursor:
                uncovered += start - cursor
            cursor = max(cursor, min(end, w_end))
            if cursor >= w_end:
                break
        uncovered += max(0.0, w_end - cursor)
    return uncovered


# ----------------------------------------------------------------------
# Epoch signatures (novelty feedback for the schedule search)
# ----------------------------------------------------------------------
def epoch_signature(epoch: EpochRecord, backend: str = "vs") -> str:
    """Canonical ``trigger|phase-shape|backend`` signature of one epoch.

    The *phase shape* is the ordered subset of :data:`PHASE_ORDER` the
    epoch actually spent time in (truncation marked with ``!``) — two
    epochs with the same trigger but different shapes (say one stalled
    in ``transfer_wait``, one that never needed a transfer) are
    different behaviors.  The coverage-guided search
    (:mod:`repro.search`) treats a never-seen signature as novelty worth
    keeping a schedule for.
    """
    durations = epoch.phase_durations()
    shape = "+".join(name for name in PHASE_ORDER if durations[name] > 0.0)
    mark = "!" if epoch.truncated else ""
    return f"{epoch.trigger}|{shape or 'instant'}{mark}|{backend}"


def epoch_signatures(epochs: Sequence[EpochRecord],
                     backend: str = "vs") -> List[str]:
    """Sorted, de-duplicated signatures of a run's epochs."""
    return sorted({epoch_signature(epoch, backend) for epoch in epochs})


# ----------------------------------------------------------------------
# Summaries and rendering
# ----------------------------------------------------------------------
def epoch_summary(epochs: Sequence[EpochRecord]) -> Dict[str, Any]:
    """Aggregate, JSON-safe roll-up of a run's epochs — what bench
    results, chaos/endurance payloads and the differential runner embed."""
    phase_totals = {name: 0.0 for name in PHASE_ORDER}
    for epoch in epochs:
        for name, seconds in epoch.phase_durations().items():
            phase_totals[name] = phase_totals.get(name, 0.0) + seconds
    completed = [e for e in epochs if not e.truncated]
    worst = max(epochs, key=lambda e: e.duration, default=None)
    return {
        "count": len(epochs),
        "completed": len(completed),
        "truncated": len(epochs) - len(completed),
        "total_downtime": round(sum(e.duration for e in epochs), 9),
        "worst": None if worst is None else {
            "site": worst.site, "trigger": worst.trigger,
            "duration": round(worst.duration, 9), "start": worst.start,
        },
        "phase_seconds": {k: round(v, 9) for k, v in phase_totals.items()},
        "bytes_received": sum(e.bytes_received for e in epochs),
        "retransmissions": sum(e.retransmissions for e in epochs),
        "failovers": sum(e.failovers for e in epochs),
        "replayed": sum(e.replayed for e in epochs),
        "triggers": dict(sorted(
            _count_by(epochs, lambda e: e.trigger).items())),
    }


def merge_epoch_summaries(summaries: Sequence[Dict[str, Any]]
                          ) -> Dict[str, Any]:
    """Fold several :func:`epoch_summary` dicts (e.g. one per seed) into
    one aggregate with the same shape."""
    merged: Dict[str, Any] = {
        "count": 0, "completed": 0, "truncated": 0, "total_downtime": 0.0,
        "worst": None, "phase_seconds": {name: 0.0 for name in PHASE_ORDER},
        "bytes_received": 0, "retransmissions": 0, "failovers": 0,
        "replayed": 0, "triggers": {},
    }
    for summary in summaries:
        if not summary:
            continue
        for key in ("count", "completed", "truncated", "bytes_received",
                    "retransmissions", "failovers", "replayed"):
            merged[key] += summary.get(key, 0)
        merged["total_downtime"] = round(
            merged["total_downtime"] + summary.get("total_downtime", 0.0), 9)
        for name, seconds in summary.get("phase_seconds", {}).items():
            merged["phase_seconds"][name] = round(
                merged["phase_seconds"].get(name, 0.0) + seconds, 9)
        worst = summary.get("worst")
        if worst and (merged["worst"] is None
                      or worst["duration"] > merged["worst"]["duration"]):
            merged["worst"] = dict(worst)
        for trigger, count in summary.get("triggers", {}).items():
            merged["triggers"][trigger] = (
                merged["triggers"].get(trigger, 0) + count)
    merged["triggers"] = dict(sorted(merged["triggers"].items()))
    return merged


def _count_by(items, key) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for item in items:
        counts[key(item)] = counts.get(key(item), 0) + 1
    return counts


def render_epoch_table(epochs: Sequence[EpochRecord],
                       limit: int = 0) -> str:
    """Fixed-width per-epoch table with the phase decomposition."""
    if not epochs:
        return "no reconfiguration epochs"
    rows = list(epochs)[-limit:] if limit else list(epochs)
    header = (f"  {'site':5s} {'trigger':14s} {'start':>8s} {'total':>8s} "
              + " ".join(f"{name:>9s}" for name in PHASE_ORDER)
              + f" {'bytes':>8s} {'rexmit':>6s}")
    lines = [f"reconfiguration epochs ({len(epochs)} total"
             + (f", last {len(rows)}" if limit and len(rows) < len(epochs)
                else "") + ")",
             header, "  " + "-" * (len(header) - 2)]
    for epoch in rows:
        durations = epoch.phase_durations()
        flag = "*" if epoch.truncated else " "
        lines.append(
            f"  {epoch.site:5s} {epoch.trigger:14s} {epoch.start:8.3f} "
            f"{epoch.duration:7.3f}{flag}"
            + " ".join(f"{durations[name]:9.3f}" for name in PHASE_ORDER)
            + f" {epoch.bytes_received:8d} {epoch.retransmissions:6d}")
    if any(e.truncated for e in rows):
        lines.append("  [* epoch truncated: site never reached ACTIVE]")
    return "\n".join(lines)


def render_phase_comparison(summaries: Dict[str, Dict[str, Any]]) -> str:
    """Side-by-side per-backend phase table (``repro diff``, E7 sweep).

    ``summaries`` maps a label (backend name, cell name) to an
    :func:`epoch_summary` dict.
    """
    if not summaries:
        return "no epoch summaries to compare"
    labels = list(summaries)
    rows = [("epochs", lambda s: str(s.get("count", 0))),
            ("truncated", lambda s: str(s.get("truncated", 0))),
            ("total downtime s", lambda s: f"{s.get('total_downtime', 0.0):.3f}")]
    rows += [(f"  {name} s",
              lambda s, n=name: f"{s.get('phase_seconds', {}).get(n, 0.0):.3f}")
             for name in PHASE_ORDER]
    rows += [("transfer bytes", lambda s: str(s.get("bytes_received", 0))),
             ("retransmissions", lambda s: str(s.get("retransmissions", 0))),
             ("failovers", lambda s: str(s.get("failovers", 0))),
             ("replayed txns", lambda s: str(s.get("replayed", 0)))]
    width = max(14, *(len(label) for label in labels))
    header = f"  {'phase breakdown':22s} " + " ".join(
        f"{label:>{width}s}" for label in labels)
    lines = [header, "  " + "-" * (len(header) - 2)]
    for title, fmt in rows:
        lines.append(f"  {title:22s} " + " ".join(
            f"{fmt(summaries[label]):>{width}s}" for label in labels))
    return "\n".join(lines)
