"""Render a human-readable run summary from a :class:`RunData`.

Used by ``python -m repro report``: top metrics, span durations grouped
by phase, and a per-site timeline digest.  Pure formatting — everything
here works identically on a live run and on a reloaded JSON-lines file.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.epochs import (blocked_windows, extract_epochs,
                              render_epoch_table)
from repro.obs.export import RunData
from repro.obs.spans import Span
from repro.workload.metrics import summarize_latencies

#: How many counters the "top metrics" table shows.
TOP_METRICS = 16


def _phase_label(span: Span) -> str:
    if span.category == "txn":
        return "txn (submit -> done)"
    if span.category == "txn_apply":
        return "apply (deliver -> commit/abort)"
    if span.category == "reconfig":
        return "recovery (view change -> active)"
    # Phase spans: "state_transfer", "replay", "serve <joiner>".
    return span.name.split(" ", 1)[0]


def span_durations(run: RunData) -> Dict[str, List[float]]:
    """Closed-span durations grouped by phase label."""
    groups: Dict[str, List[float]] = {}
    for span in run.spans:
        if span.end is None:
            continue
        groups.setdefault(_phase_label(span), []).append(span.end - span.start)
    return groups


def _site_rows(run: RunData) -> List[Tuple[str, int, int, int, int, float]]:
    rows = []
    for site in run.sites():
        if site == "--":  # chaos engine's global events, not a site
            continue
        events = sum(1 for e in run.events if e.site == site)
        applies = [s for s in run.spans if s.category == "txn_apply" and s.site == site]
        commits = sum(1 for s in applies if s.attrs.get("outcome") == "commit")
        recoveries = [s for s in run.spans
                      if s.category == "reconfig" and s.site == site
                      and s.end is not None]
        recovery_time = sum(s.end - s.start for s in recoveries)
        rows.append((site, events, len(applies), commits, len(recoveries),
                     recovery_time))
    return rows


def availability_samples(run: RunData) -> List[Tuple[float, int, bool]]:
    """``(bin end, commits, maintenance)`` rows from an endurance run's
    ``availability_sample`` trace events (empty for other runs)."""
    samples: List[Tuple[float, int, bool]] = []
    for event in run.events:
        if (event.category == "endurance"
                and event.kind == "availability_sample" and event.data):
            samples.append((float(event.data["t"]),
                            int(event.data["commits"]),
                            bool(event.data["maintenance"])))
    return samples


def render_availability(samples: List[Tuple[float, int, bool]],
                        bin_width: float, warmup: float = 0.0,
                        columns: int = 60) -> str:
    """Compact availability timeline: one character per sample bin.

    ``#`` serving at/above the run mean, ``+`` below it, ``0`` a
    zero-commit serving bin (the outage signature), ``m`` maintenance
    (quiescent sweep), ``.`` warmup.
    """
    serving = [c for t, c, m in samples if not m and t > warmup]
    mean = (sum(serving) / len(serving)) if serving else 0.0
    rows: List[str] = []
    line: List[str] = []
    start = samples[0][0] - bin_width if samples else 0.0
    for t, commits, maintenance in samples:
        if t <= warmup:
            line.append(".")
        elif maintenance:
            line.append("m")
        elif commits == 0:
            line.append("0")
        else:
            line.append("#" if commits >= mean else "+")
        if len(line) == columns:
            rows.append(f"  {start:7.2f}s  {''.join(line)}")
            line = []
            start = t
    if line:
        rows.append(f"  {start:7.2f}s  {''.join(line)}")
    legend = ("  [# >= mean rate, + below mean, 0 ZERO commits, "
              "m maintenance sweep, . warmup]")
    return "\n".join(["availability timeline "
                      f"({bin_width:g}s bins, mean {mean / bin_width:.1f}/s):"]
                     + rows + [legend])


def render_summary(run: RunData) -> str:
    lines: List[str] = []
    meta = run.meta
    lines.append(f"run: {meta.get('name', 'repro run')}  "
                 f"virtual_time={meta.get('virtual_time', 0.0):.3f}s  "
                 f"sites={','.join(meta.get('sites', run.sites()))}")
    lines.append("")

    counters: Dict[str, Any] = dict(run.metrics.get("counters", {}))
    if counters:
        lines.append("top metrics")
        lines.append("-" * 48)
        ranked = sorted(counters.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
        for name, value in ranked[:TOP_METRICS]:
            rendered = f"{value:.4f}".rstrip("0").rstrip(".") \
                if isinstance(value, float) else str(value)
            lines.append(f"  {name:34s} {rendered:>10s}")
        lines.append("")

    groups = span_durations(run)
    if groups:
        lines.append("span durations by phase (virtual seconds)")
        header = (f"  {'phase':34s} {'count':>6s} {'mean':>9s} "
                  f"{'p95':>9s} {'max':>9s}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for label in sorted(groups):
            summary = summarize_latencies(groups[label])
            lines.append(
                f"  {label:34s} {summary.count:6d} {summary.mean:9.4f} "
                f"{summary.p95:9.4f} {summary.maximum:9.4f}")
        lines.append("")

    rows = _site_rows(run)
    if rows:
        lines.append("per-site timeline")
        header = (f"  {'site':6s} {'events':>7s} {'applies':>8s} "
                  f"{'commits':>8s} {'recoveries':>11s} {'recovery s':>11s}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for site, events, applies, commits, recoveries, rec_time in rows:
            lines.append(f"  {site:6s} {events:7d} {applies:8d} "
                         f"{commits:8d} {recoveries:11d} {rec_time:11.4f}")
        lines.append("")

    epochs = extract_epochs(run.events,
                            end_time=meta.get("virtual_time"))
    if epochs:
        lines.append(render_epoch_table(epochs, limit=12))
        lines.append("")

    samples = availability_samples(run)
    if samples:
        deltas = sorted(b[0] - a[0] for a, b in zip(samples, samples[1:])
                        if b[0] > a[0])
        bin_width = deltas[len(deltas) // 2] if deltas else 0.25
        lines.append(render_availability(samples, bin_width))
        lines.append("")

    txn_spans = sum(1 for s in run.spans if s.category == "txn")
    reconfig_spans = sum(1 for s in run.spans if s.category == "reconfig")
    lines.append(f"{len(run.spans)} spans total "
                 f"({txn_spans} transaction, {reconfig_spans} reconfiguration), "
                 f"{len(run.events)} trace events")
    return "\n".join(lines)


def render_one_screen(run: RunData) -> str:
    """``repro report --summary``: the whole run on one screen —
    commits, aborts, availability, epoch count and the worst epoch."""
    meta = run.meta
    counters: Dict[str, Any] = dict(run.metrics.get("counters", {}))
    virtual_time = float(meta.get("virtual_time", 0.0)) or 1.0
    commits = int(counters.get("txn.commits", 0))
    aborts = int(counters.get("txn.aborts", 0))
    epochs = extract_epochs(run.events, end_time=meta.get("virtual_time"))
    downtime = sum(e.duration for e in epochs)
    samples = availability_samples(run)
    windows = blocked_windows(run.events)
    blocked = sum(end - start for start, end in windows)

    width = 58
    rows = [
        ("run", str(meta.get("name", "repro run"))),
        ("virtual time", f"{virtual_time:.3f} s"),
        ("sites", ",".join(meta.get("sites", run.sites()))),
        ("commits", f"{commits}  ({commits / virtual_time:.1f}/s)"),
        ("aborts", str(aborts)),
        ("reconfig epochs", f"{len(epochs)}"
         + (f"  ({sum(1 for e in epochs if e.truncated)} truncated)"
            if any(e.truncated for e in epochs) else "")),
        ("total downtime", f"{downtime:.3f} s"),
    ]
    if samples:
        serving = [c for t, c, m in samples if not m]
        zero = sum(1 for c in serving if c == 0)
        availability = (1 - zero / len(serving)) if serving else 1.0
        rows.append(("availability", f"{availability * 100:.1f}% of bins "
                     f"serving ({blocked:.2f} s blocked)"))
    worst = max(epochs, key=lambda e: e.duration, default=None)
    if worst is not None:
        phases = worst.phase_durations()
        dominant = max(phases, key=lambda name: phases[name])
        rows.append(("worst epoch",
                     f"{worst.site} {worst.trigger} {worst.duration:.3f} s "
                     f"(mostly {dominant}: {phases[dominant]:.3f} s)"))
    lines = ["=" * width]
    lines += [f"  {label:16s} {value}" for label, value in rows]
    lines.append("=" * width)
    if epochs:
        lines.append(render_epoch_table(epochs, limit=6))
    return "\n".join(lines)
