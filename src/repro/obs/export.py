"""Exporters: JSON-lines run log, Chrome trace_event JSON, Prometheus text.

Everything operates on a :class:`RunData` — one self-contained record of
a run (meta, trace events, spans, metric snapshot) that can be written
to a JSON-lines file and loaded back, so ``python -m repro report`` can
render a summary either from a live cluster or from a recorded file.

The Chrome trace output loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev: one process, one track ("thread") per site,
complete (``"ph": "X"``) events for spans and instant (``"ph": "i"``)
events for the raw trace stream.  Virtual-time seconds map to trace
microseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.spans import Span
from repro.tracing import TraceEvent

#: Virtual seconds -> Chrome trace microseconds.
_US = 1_000_000.0


@dataclass
class RunData:
    """Everything one observed run produced."""

    meta: Dict[str, Any] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def sites(self) -> List[str]:
        seen = {s.site for s in self.spans} | {e.site for e in self.events}
        return sorted(seen)


# ----------------------------------------------------------------------
# JSON-lines event log
# ----------------------------------------------------------------------
def _event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "time": event.time,
        "site": event.site,
        "category": event.category,
        "kind": event.kind,
        "detail": event.detail,
    }
    if event.data is not None:
        record["data"] = dict(event.data)
    return record


def _event_from_dict(record: Dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        time=record["time"],
        site=record["site"],
        category=record["category"],
        kind=record["kind"],
        detail=record.get("detail", ""),
        data=record.get("data"),
    )


def write_jsonl(run: RunData, path: str) -> None:
    """One JSON object per line: meta, then events, spans, metrics."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "meta", **run.meta}) + "\n")
        for event in run.events:
            handle.write(json.dumps({"type": "event", **_event_to_dict(event)}) + "\n")
        for span in run.spans:
            handle.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        handle.write(json.dumps({"type": "metrics", "snapshot": run.metrics}) + "\n")


def load_jsonl(path: str) -> RunData:
    """Inverse of :func:`write_jsonl`."""
    run = RunData()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "meta":
                run.meta = record
            elif kind == "event":
                run.events.append(_event_from_dict(record))
            elif kind == "span":
                run.spans.append(Span.from_dict(record))
            elif kind == "metrics":
                run.metrics = record.get("snapshot", {})
    return run


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(run: RunData) -> Dict[str, Any]:
    """Build the ``chrome://tracing`` / Perfetto payload."""
    sites = run.sites()
    tids = {site: index + 1 for index, site in enumerate(sites)}
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": run.meta.get("name", "repro cluster")},
    }]
    for site, tid in tids.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": site},
        })
        trace_events.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0, "tid": tid,
            "args": {"sort_index": tid},
        })
    for span in run.spans:
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        trace_events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * _US,
            "dur": max(0.0, (end - span.start)) * _US,
            "pid": 0,
            "tid": tids.get(span.site, 0),
            "args": args,
        })
    for event in run.events:
        args = {"detail": event.detail} if event.detail else {}
        if event.data:
            args.update(event.data)
        trace_events.append({
            "name": f"{event.category}.{event.kind}",
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": event.time * _US,
            "pid": 0,
            "tid": tids.get(event.site, 0),
            "args": args,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(run: RunData, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(run), handle)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    sanitized = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    return f"repro_{sanitized}"


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in text exposition
    format (the format a /metrics endpoint would serve)."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        histogram = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in histogram.get("buckets", {}).items():
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{prom}_sum {histogram.get('sum', 0.0)}")
        lines.append(f"{prom}_count {histogram.get('count', 0)}")
    return "\n".join(lines) + "\n"


def write_prometheus(snapshot: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(snapshot))
