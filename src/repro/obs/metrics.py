"""The metrics registry: counters, gauges, histograms, pull collectors.

Two acquisition paths feed one registry:

* **Push instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are updated from instrumented hot paths.  Every
  such call site is guarded by an ``if <layer>.obs is not None`` check,
  so a cluster without observability attached pays a single attribute
  load — nothing else (the zero-cost-when-disabled contract that keeps
  the batching speedups intact).
* **Pull collectors** read the plain integer counters the subsystems
  maintain anyway (``network.messages_delivered``,
  ``manager.bytes_sent_total``, ...) at :meth:`MetricsRegistry.snapshot`
  time.  They cost nothing during the run, which is why
  ``python -m repro bench`` can embed metric snapshots without touching
  the measured hot paths at all.

Metric names use dots as namespace separators (``net.messages_sent``);
the Prometheus exporter sanitizes them to underscores.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket bounds for "how many items" distributions.
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500)

#: Default histogram bucket bounds for virtual-time durations (seconds).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Default histogram bucket bounds for payload sizes (bytes).
SIZE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bounds`` are the inclusive upper edges; one implicit +Inf bucket
    catches everything above the last edge.  ``counts`` are per-bucket
    (not cumulative); the exporters cumulate.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: Sequence[float] = COUNT_BUCKETS,
                 help: str = "") -> None:
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("+Inf" if index == len(self.bounds) else repr(self.bounds[index])): n
                for index, n in enumerate(self.counts)
            },
        }


Collector = Callable[[], Dict[str, float]]


class MetricsRegistry:
    """Owns every instrument of one observed cluster.

    Instruments are created idempotently by name, so two layers asking
    for the same counter share it.  ``snapshot()`` merges the push-side
    instruments with the output of every registered pull collector.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Collector] = []

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = COUNT_BUCKETS,
                  help: str = "") -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds, help)
        return instrument

    def add_collector(self, collector: Collector) -> Collector:
        """Register a pull-side source: a callable returning a flat
        ``{metric_name: number}`` dict, evaluated at snapshot time."""
        self._collectors.append(collector)
        return collector

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, float]:
        """Run every pull collector and merge the results."""
        merged: Dict[str, float] = {}
        for collector in self._collectors:
            merged.update(collector())
        return merged

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-serializable view of everything the registry knows.

        Collector output lands under ``counters`` next to the push-side
        counters (most collected values are monotone counts; the few
        level-like ones are documented in docs/OBSERVABILITY.md).
        """
        counters = {name: c.value for name, c in self._counters.items()}
        counters.update(self.collect())
        return {
            "counters": counters,
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: h.to_dict() for name, h in self._histograms.items()
            },
        }
