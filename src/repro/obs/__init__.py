"""repro.obs — the unified observability layer.

One attach call instruments a whole cluster::

    from repro.obs import attach_observability

    cluster = ClusterBuilder(...).build()
    obs = attach_observability(cluster)   # before cluster.start()
    ...
    obs.export_chrome_trace("trace.json")  # chrome://tracing / Perfetto
    obs.export_jsonl("run.jsonl")          # replayable event log
    obs.export_prometheus("metrics.prom")  # text exposition snapshot

See docs/OBSERVABILITY.md for the metric catalog, the span model and
the exporter formats.  :func:`collect_cluster_metrics` is the zero-cost
pull-only path used by ``python -m repro bench``.
"""

from repro.obs.attach import (
    Observability,
    attach_observability,
    collect_cluster_metrics,
    metric_key_set,
)
from repro.obs.epochs import (
    EpochRecord,
    PhaseSlice,
    PHASE_ORDER,
    blocked_windows,
    epoch_signature,
    epoch_signatures,
    epoch_summary,
    extract_epochs,
    render_epoch_table,
    render_phase_comparison,
    uncovered_blocked_time,
)
from repro.obs.profile import (
    SimProfiler,
    attach_profiler,
    parse_collapsed,
)
from repro.obs.export import (
    RunData,
    chrome_trace,
    load_jsonl,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.obs.report import (availability_samples, render_availability,
                              render_one_screen, render_summary,
                              span_durations)
from repro.obs.spans import Span, SpanTracker

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "EpochRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PHASE_ORDER",
    "PhaseSlice",
    "RunData",
    "SIZE_BUCKETS",
    "SimProfiler",
    "Span",
    "SpanTracker",
    "TIME_BUCKETS",
    "attach_observability",
    "attach_profiler",
    "blocked_windows",
    "chrome_trace",
    "collect_cluster_metrics",
    "epoch_signature",
    "epoch_signatures",
    "epoch_summary",
    "extract_epochs",
    "load_jsonl",
    "metric_key_set",
    "parse_collapsed",
    "prometheus_text",
    "availability_samples",
    "render_availability",
    "render_epoch_table",
    "render_one_screen",
    "render_phase_comparison",
    "render_summary",
    "span_durations",
    "uncovered_blocked_time",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
