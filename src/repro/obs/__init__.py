"""repro.obs — the unified observability layer.

One attach call instruments a whole cluster::

    from repro.obs import attach_observability

    cluster = ClusterBuilder(...).build()
    obs = attach_observability(cluster)   # before cluster.start()
    ...
    obs.export_chrome_trace("trace.json")  # chrome://tracing / Perfetto
    obs.export_jsonl("run.jsonl")          # replayable event log
    obs.export_prometheus("metrics.prom")  # text exposition snapshot

See docs/OBSERVABILITY.md for the metric catalog, the span model and
the exporter formats.  :func:`collect_cluster_metrics` is the zero-cost
pull-only path used by ``python -m repro bench``.
"""

from repro.obs.attach import (
    Observability,
    attach_observability,
    collect_cluster_metrics,
)
from repro.obs.export import (
    RunData,
    chrome_trace,
    load_jsonl,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.obs.report import (availability_samples, render_availability,
                              render_summary, span_durations)
from repro.obs.spans import Span, SpanTracker

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RunData",
    "SIZE_BUCKETS",
    "Span",
    "SpanTracker",
    "TIME_BUCKETS",
    "attach_observability",
    "chrome_trace",
    "collect_cluster_metrics",
    "load_jsonl",
    "prometheus_text",
    "availability_samples",
    "render_availability",
    "render_summary",
    "span_durations",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
