"""Attach the observability layer to a cluster.

Two entry points with very different costs:

* :func:`collect_cluster_metrics` is a pure **pull**: it reads the plain
  integer counters every subsystem maintains anyway and returns a flat
  dict.  It never touches a hot path, so ``python -m repro bench`` can
  embed a snapshot per scenario without perturbing the measurement.
* :func:`attach_observability` additionally installs the **push**
  instruments (histograms the plain counters cannot provide: batch
  sizes, lock waits, transfer chunk sizes, ack lag) and the span
  pipeline.  Each instrumented layer guards its hook with a single
  ``if self.obs is not None`` attribute check — the only cost an
  unobserved cluster ever pays.

Both are reachable as ``cluster.attach_observability()`` /
``cluster.obs`` once attached.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.export import (
    RunData,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.obs.spans import SpanTracker
from repro.tracing import attach_tracer


# ----------------------------------------------------------------------
# Pull side: read the counters the subsystems keep anyway
# ----------------------------------------------------------------------

#: Backend-specific reconfiguration counters, read with ``getattr(..., 0)``
#: so every backend reports the full set (absent counters as 0) and
#: bench/diff metric tables stay column-stable across ``--backend``.
BACKEND_COUNTER_KEYS: Dict[str, str] = {
    "reconfig.svs_merges": "svs_merges_issued",          # EVS backend
    "reconfig.sv_merges": "sv_merges_issued",            # EVS backend
    "reconfig.config_proposals": "config_proposals_sent",  # logless backend
    "reconfig.config_changes": "config_changes_applied",   # logless backend
    "reconfig.config_conflicts": "config_conflicts",       # logless backend
}


def metric_key_set() -> tuple:
    """The canonical, backend-independent key set every snapshot from
    :func:`collect_cluster_metrics` contains — in emission order."""
    probe = _CANONICAL_METRIC_KEYS
    return tuple(probe)


def collect_cluster_metrics(cluster) -> Dict[str, float]:
    """Flat metric snapshot from a cluster's existing counters.

    Safe to call on any cluster at any time — requires no prior
    attachment and has no effect on the run.  The returned dict always
    contains the same keys regardless of the reconfiguration backend:
    counters a backend does not maintain are reported as 0.
    """
    network = cluster.network
    metrics: Dict[str, float] = {
        "sim.virtual_time": cluster.sim.now,
        "sim.events_processed": cluster.sim.events_processed,
        "net.messages_sent": sum(
            endpoint.messages_sent for endpoint in network._endpoints.values()
        ),
        "net.messages_delivered": network.messages_delivered,
        "net.messages_dropped": network.messages_dropped,
        "net.messages_duplicated": network.messages_duplicated,
        "net.messages_injector_dropped": network.messages_injector_dropped,
        "net.delivery_batches": network.delivery_batches,
        "net.messages_in_flight": network.messages_in_flight,
    }
    commits = {e.gid for e in cluster.history.events if e.kind == "commit"}
    aborts = {e.gid for e in cluster.history.events if e.kind == "abort"}
    metrics["txn.commits"] = len(commits)
    metrics["txn.aborts"] = len(aborts)

    lock_grants = lock_conflicts = lock_queue_peak = 0
    lock_wait_total = 0.0
    wal_records = wal_flushes = wal_torn = wal_corrupt = 0
    node_commits = node_local_aborts = 0
    dedup_suppressed = outcome_entries = 0
    to_batches = gcs_delivered = views = 0
    xfer = {
        "started": 0, "completed": 0, "objects_sent": 0, "bytes_sent": 0,
        "objects_received": 0, "bytes_received": 0, "retransmissions": 0,
        "stalls": 0, "failovers": 0, "solicits": 0, "replayed": 0,
        "announcements": 0,
    }
    backend_counters = {key: 0 for key in BACKEND_COUNTER_KEYS}
    for node in cluster.nodes.values():
        locks = node.db.locks
        lock_grants += locks.grants
        lock_conflicts += locks.conflicts
        lock_queue_peak = max(lock_queue_peak, locks.max_waiting)
        lock_wait_total += sum(locks.wait_times)
        storage = node.storage
        wal_records += storage.records_appended
        wal_flushes += storage.flushes
        wal_torn += storage.torn_records
        wal_corrupt += storage.corrupt_records
        node_commits += node.commits
        node_local_aborts += node.local_aborts
        dedup_suppressed += node.duplicates_suppressed
        outcome_entries = max(outcome_entries, len(node.db.outcomes))
        member = node.member
        views = max(views, len(member.views_installed))
        gcs_delivered += member.messages_delivered
        to_batches += member.to.batches_sent
        manager = node.reconfig
        if manager is not None:
            xfer["started"] += manager.transfers_started
            xfer["completed"] += manager.transfers_completed
            xfer["objects_sent"] += manager.objects_sent_total
            xfer["bytes_sent"] += manager.bytes_sent_total
            xfer["objects_received"] += manager.objects_received_total
            xfer["bytes_received"] += manager.bytes_received_total
            xfer["retransmissions"] += manager.transfer_retransmissions
            xfer["stalls"] += manager.transfer_stalls
            xfer["failovers"] += manager.transfer_failovers
            xfer["solicits"] += manager.solicits_sent
            xfer["replayed"] += manager.replayed_transactions
            xfer["announcements"] += manager.announcements_sent
            for key, attr in BACKEND_COUNTER_KEYS.items():
                backend_counters[key] += getattr(manager, attr, 0)
    metrics.update({
        "locks.grants": lock_grants,
        "locks.conflicts": lock_conflicts,
        "locks.queue_depth_peak": lock_queue_peak,
        "locks.wait_time_total": lock_wait_total,
        "wal.records_appended": wal_records,
        "wal.fsyncs": wal_flushes,
        "wal.torn_records": wal_torn,
        "wal.corrupt_records": wal_corrupt,
        "txn.site_commits": node_commits,
        "txn.local_aborts": node_local_aborts,
        "client.duplicates_suppressed": dedup_suppressed,
        "client.outcome_entries": outcome_entries,
        "gcs.views_installed": views,
        "gcs.messages_delivered": gcs_delivered,
        "to.batches_sent": to_batches,
        "xfer.transfers_started": xfer["started"],
        "xfer.transfers_completed": xfer["completed"],
        "xfer.objects_sent": xfer["objects_sent"],
        "xfer.bytes_sent": xfer["bytes_sent"],
        "xfer.objects_received": xfer["objects_received"],
        "xfer.bytes_received": xfer["bytes_received"],
        "xfer.retransmissions": xfer["retransmissions"],
        "xfer.stalls": xfer["stalls"],
        "xfer.failovers": xfer["failovers"],
        "xfer.solicits": xfer["solicits"],
        "xfer.replayed_transactions": xfer["replayed"],
        "xfer.announcements": xfer["announcements"],
    })
    metrics.update(backend_counters)
    for key in _CANONICAL_METRIC_KEYS:
        metrics.setdefault(key, 0)
    return metrics


#: Every key :func:`collect_cluster_metrics` emits, in order — the
#: column set bench/diff tables can rely on for any backend.
_CANONICAL_METRIC_KEYS: tuple = (
    "sim.virtual_time", "sim.events_processed",
    "net.messages_sent", "net.messages_delivered", "net.messages_dropped",
    "net.messages_duplicated", "net.messages_injector_dropped",
    "net.delivery_batches", "net.messages_in_flight",
    "txn.commits", "txn.aborts",
    "locks.grants", "locks.conflicts", "locks.queue_depth_peak",
    "locks.wait_time_total",
    "wal.records_appended", "wal.fsyncs", "wal.torn_records",
    "wal.corrupt_records",
    "txn.site_commits", "txn.local_aborts",
    "client.duplicates_suppressed", "client.outcome_entries",
    "gcs.views_installed", "gcs.messages_delivered", "to.batches_sent",
    "xfer.transfers_started", "xfer.transfers_completed",
    "xfer.objects_sent", "xfer.bytes_sent",
    "xfer.objects_received", "xfer.bytes_received",
    "xfer.retransmissions", "xfer.stalls", "xfer.failovers",
    "xfer.solicits", "xfer.replayed_transactions", "xfer.announcements",
) + tuple(BACKEND_COUNTER_KEYS)


# ----------------------------------------------------------------------
# Push side: the per-layer instrument bundles
# ----------------------------------------------------------------------
class NetInstruments:
    """Hooks the network calls when observability is attached."""

    __slots__ = ("batch_size", "bytes_delivered")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.batch_size = registry.histogram(
            "net.delivery_batch_size", COUNT_BUCKETS,
            "messages per coalesced delivery event")
        self.bytes_delivered = registry.counter(
            "net.bytes_delivered", "approximate payload bytes delivered")

    def on_batch(self, count: int) -> None:
        self.batch_size.observe(count)

    def on_deliver(self, payload: Any) -> None:
        # repr length as a deterministic stand-in for wire size; only
        # evaluated while observability is attached.
        self.bytes_delivered.inc(len(repr(payload)))


class SequencerInstruments:
    """Per-view total-order instruments (shared across view instances)."""

    __slots__ = ("batch_size", "retransmissions", "delivery_lag")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.batch_size = registry.histogram(
            "to.ordered_batch_size", COUNT_BUCKETS,
            "Ordered messages per sequencer flush")
        self.retransmissions = registry.counter(
            "to.retransmissions", "Ordered retransmissions (NAK + push)")
        self.delivery_lag = registry.histogram(
            "to.ack_lag", COUNT_BUCKETS,
            "received-but-undeliverable backlog at maintenance ticks")


class LockInstruments:
    __slots__ = ("wait_time", "queue_depth")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.wait_time = registry.histogram(
            "locks.wait_time", TIME_BUCKETS, "lock wait (grant - enqueue)")
        self.queue_depth = registry.histogram(
            "locks.queue_depth", COUNT_BUCKETS,
            "waiters in queue when a request had to wait")


class NodeInstruments:
    """Transfer-path instruments (reached through ``node.obs``)."""

    __slots__ = ("chunk_objects", "chunk_bytes", "raw_bytes", "wire_bytes")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.chunk_objects = registry.histogram(
            "xfer.chunk_objects", COUNT_BUCKETS, "objects per transfer batch")
        self.chunk_bytes = registry.histogram(
            "xfer.chunk_bytes", SIZE_BUCKETS, "wire bytes per transfer batch")
        self.raw_bytes = registry.counter(
            "xfer.raw_bytes", "uncompressed transfer payload bytes")
        self.wire_bytes = registry.counter(
            "xfer.wire_bytes", "on-the-wire (possibly compressed) bytes")


# ----------------------------------------------------------------------
# The handle
# ----------------------------------------------------------------------
class Observability:
    """Everything attached to one cluster: registry, spans, tracer."""

    def __init__(self, cluster, registry: MetricsRegistry,
                 spans: SpanTracker, tracer) -> None:
        self.cluster = cluster
        self.registry = registry
        self.spans = spans
        self.tracer = tracer

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def run_data(self, name: str = "repro run",
                 meta: Optional[Dict[str, Any]] = None) -> RunData:
        """Snapshot the whole run (closes still-open spans at now)."""
        self.spans.finalize(self.cluster.sim.now)
        merged: Dict[str, Any] = {
            "name": name,
            "virtual_time": self.cluster.sim.now,
            "sites": list(self.cluster.universe),
        }
        if meta:
            merged.update(meta)
        return RunData(
            meta=merged,
            events=list(self.tracer.events),
            spans=list(self.spans.spans),
            metrics=self.snapshot(),
        )

    # Convenience exporters ---------------------------------------------
    def export_jsonl(self, path: str, name: str = "repro run") -> RunData:
        run = self.run_data(name)
        write_jsonl(run, path)
        return run

    def export_chrome_trace(self, path: str, name: str = "repro run") -> RunData:
        run = self.run_data(name)
        write_chrome_trace(run, path)
        return run

    def export_prometheus(self, path: str) -> None:
        write_prometheus(self.snapshot(), path)


def attach_observability(cluster) -> Observability:
    """Instrument a cluster: metrics registry + spans + tracer.

    Idempotent; reuses an already-attached tracer (e.g. from the chaos
    engine).  Attach before ``cluster.start()`` for complete coverage —
    late attachment still works, it just misses earlier events.
    """
    existing = getattr(cluster, "obs", None)
    if existing is not None:
        return existing
    tracer = getattr(cluster, "tracer", None)
    if tracer is None:
        tracer = attach_tracer(cluster)
    registry = MetricsRegistry()
    registry.add_collector(lambda: collect_cluster_metrics(cluster))
    spans = SpanTracker()
    tracer.add_listener(spans.on_trace_event)

    cluster.network.obs = NetInstruments(registry)
    to_instruments = SequencerInstruments(registry)
    lock_instruments = LockInstruments(registry)
    node_instruments = NodeInstruments(registry)
    for node in cluster.nodes.values():
        _instrument_node(node, tracer, to_instruments, lock_instruments,
                         node_instruments)

    obs = Observability(cluster, registry, spans, tracer)
    cluster.obs = obs
    return obs


def _instrument_node(node, tracer, to_instruments, lock_instruments,
                     node_instruments) -> None:
    site = node.site_id
    node.obs = node_instruments
    node.db.locks.obs = lock_instruments
    node.member.to_obs = to_instruments
    node.member.to.obs = to_instruments

    # A recovery rebuilds the Database (fresh LockManager) from the WAL;
    # re-point the instruments at the replacement.
    original_recover = node.recover

    def observed_recover():
        original_recover()
        node.db.locks.obs = lock_instruments

    node.recover = observed_recover

    # Transaction lifecycle -> tracer events (span sources) --------------
    original_submit = node.submit

    def observed_submit(reads, writes, *args, **kwargs):
        txn = original_submit(reads, writes, *args, **kwargs)
        tracer.emit(site, "txn", "submit", data={"txn": txn.txn_id})
        return txn

    node.submit = observed_submit

    original_process = node.process_delivered

    def observed_process(gid, message):
        tracer.emit(site, "txn", "deliver",
                    data={"txn": message.local_id, "gid": gid})
        original_process(gid, message)

    node.process_delivered = observed_process

    original_finish = node._finish_local

    def observed_finish(txn, state, reason):
        was_done = txn.done
        original_finish(txn, state, reason)
        if not was_done and txn.done:
            tracer.emit(site, "txn", "done",
                        data={"txn": txn.txn_id, "state": txn.state.value})

    node._finish_local = observed_finish

    original_tap = node.on_txn_event

    def observed_tap(event_site, kind, gid, message):
        if original_tap is not None:
            original_tap(event_site, kind, gid, message)
        tracer.emit(event_site, "txn", kind,
                    data={"txn": message.local_id, "gid": gid})

    node.on_txn_event = observed_tap

    # Reconfiguration-phase events (transfer accept, replay start/end,
    # crash/restart status) are emitted by the base tracer itself — see
    # repro.tracing._instrument_node — so epoch analytics works on every
    # traced run, not only fully-observed ones.
