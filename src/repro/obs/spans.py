"""Causal spans assembled from the :class:`repro.tracing.Tracer` bus.

A span is a named interval on one site's timeline with an optional
parent, which is what turns the flat trace-event stream into the two
causal stories the paper's evaluation needs to tell:

* **Transaction spans** — a root span per transaction from its submit
  at the origin site to its local termination, with one ``apply`` child
  span per site from total-order delivery to commit/abort there.
* **Reconfiguration spans** — a root ``recovery`` span per site from the
  view/e-view change that put it into RECOVERING/SUSPENDED until it is
  an up-to-date ACTIVE member, with ``state_transfer`` and ``replay``
  phase children.  The peer serving the transfer gets a ``serve``
  span on *its* timeline, parented to the joiner's recovery span —
  that cross-site link is what makes workload/transfer interference
  visible in the Chrome trace.

The tracker is a pure listener: it subscribes to ``Tracer`` events (the
span-relevant ones carry a structured ``data`` payload, emitted by
:func:`repro.obs.attach.attach_observability`) and never touches the
protocols.  Without an attached tracer it costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Span:
    span_id: int
    name: str
    category: str  # "txn" | "txn_apply" | "reconfig" | "phase"
    site: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            span_id=data["span_id"],
            name=data["name"],
            category=data["category"],
            site=data["site"],
            start=data["start"],
            end=data.get("end"),
            parent_id=data.get("parent_id"),
            attrs=dict(data.get("attrs", {})),
        )


class SpanTracker:
    """Builds the span forest from trace events.

    Attach with ``tracer.add_listener(tracker.on_trace_event)`` (done by
    ``attach_observability``).  Spans still open when the run ends are
    closed by :meth:`finalize`.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 0
        # Open-span indexes.
        self._txn_roots: Dict[str, Span] = {}          # txn_id -> root
        self._txn_applies: Dict[Tuple[str, str], Span] = {}  # (site, txn) -> child
        self._recoveries: Dict[str, Span] = {}         # site -> recovery root
        self._phases: Dict[Tuple[str, str], Span] = {}  # (site, phase) -> child
        self._serving: Dict[str, Span] = {}            # joiner -> peer-side span

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def begin(self, name: str, category: str, site: str, start: float,
              parent_id: Optional[int] = None, **attrs: Any) -> Span:
        span = Span(self._next_id, name, category, site, start,
                    parent_id=parent_id, attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, end: float, **attrs: Any) -> None:
        if span.end is None:
            span.end = end
        span.attrs.update(attrs)

    def finalize(self, now: float) -> None:
        """Close every still-open span at ``now`` (end of run)."""
        for span in self.spans:
            if span.end is None:
                span.end = now
                span.attrs.setdefault("open_at_end", True)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of(self, category: Optional[str] = None,
           site: Optional[str] = None) -> List[Span]:
        return [
            s for s in self.spans
            if (category is None or s.category == category)
            and (site is None or s.site == site)
        ]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # ------------------------------------------------------------------
    # The tracer listener
    # ------------------------------------------------------------------
    def on_trace_event(self, event) -> None:
        category = event.category
        if category == "txn":
            self._on_txn(event)
        elif category == "status":
            self._on_status(event)
        elif category == "transfer":
            self._on_transfer(event)
        elif category == "replay":
            self._on_replay(event)

    # -- transactions ---------------------------------------------------
    def _txn_root(self, txn_id: str, origin_site: str, t: float) -> Span:
        root = self._txn_roots.get(txn_id)
        if root is None:
            # First sighting was not the submit (replayed or remote-only
            # transaction): open the root lazily at delivery time.
            root = self.begin(f"txn {txn_id}", "txn", origin_site, t, txn=txn_id)
            self._txn_roots[txn_id] = root
        return root

    def _on_txn(self, event) -> None:
        data = event.data or {}
        txn_id = data.get("txn")
        if txn_id is None:
            return
        site, t, kind = event.site, event.time, event.kind
        if kind == "submit":
            if txn_id not in self._txn_roots:
                self._txn_roots[txn_id] = self.begin(
                    f"txn {txn_id}", "txn", site, t, txn=txn_id)
        elif kind == "deliver":
            root = self._txn_root(txn_id, txn_id.split("#", 1)[0], t)
            if root.attrs.get("gid") is None and data.get("gid") is not None:
                root.attrs["gid"] = data["gid"]
            self._txn_applies[(site, txn_id)] = self.begin(
                "apply", "txn_apply", site, t, parent_id=root.span_id,
                txn=txn_id, gid=data.get("gid"))
        elif kind in ("commit", "abort"):
            child = self._txn_applies.pop((site, txn_id), None)
            if child is None:
                # Replay-applied commit: delivery happened before the
                # site recovered, so represent it as a point span.
                root = self._txn_root(txn_id, txn_id.split("#", 1)[0], t)
                child = self.begin("apply(replay)", "txn_apply", site, t,
                                   parent_id=root.span_id, txn=txn_id,
                                   gid=data.get("gid"))
            self.finish(child, t, outcome=kind)
            root = self._txn_roots.get(txn_id)
            if root is not None and data.get("gid") is not None:
                root.attrs.setdefault("gid", data["gid"])
        elif kind == "done":
            # Keep the root indexed: the recovered site replays this
            # transaction *after* the origin finished it, and those late
            # apply children must attach to the same root rather than
            # lazily opening a duplicate.
            root = self._txn_roots.get(txn_id)
            if root is not None:
                self.finish(root, t, outcome=data.get("state"))

    # -- reconfiguration -------------------------------------------------
    def _recovery_root(self, site: str, t: float) -> Span:
        root = self._recoveries.get(site)
        if root is None:
            root = self.begin("recovery", "reconfig", site, t)
            self._recoveries[site] = root
        return root

    def _on_status(self, event) -> None:
        site, t, kind = event.site, event.time, event.kind
        if kind in ("recovering", "suspended"):
            self._recovery_root(site, t)
        elif kind == "active":
            for phase_key in [k for k in self._phases if k[0] == site]:
                self.finish(self._phases.pop(phase_key), t)
            root = self._recoveries.pop(site, None)
            if root is not None:
                self.finish(root, t)
        elif kind == "down":
            # Crashed mid-recovery: the episode is over (abandoned).
            for phase_key in [k for k in self._phases if k[0] == site]:
                self.finish(self._phases.pop(phase_key), t, abandoned=True)
            root = self._recoveries.pop(site, None)
            if root is not None:
                self.finish(root, t, abandoned=True)

    def _on_transfer(self, event) -> None:
        site, t, kind = event.site, event.time, event.kind
        data = event.data or {}
        if kind == "accept":
            root = self._recovery_root(site, t)
            previous = self._phases.pop((site, "state_transfer"), None)
            if previous is not None:  # superseded session (fail-over)
                self.finish(previous, t, superseded=True)
            self._phases[(site, "state_transfer")] = self.begin(
                "state_transfer", "phase", site, t, parent_id=root.span_id,
                peer=data.get("peer"))
        elif kind == "complete":
            phase = self._phases.pop((site, "state_transfer"), None)
            if phase is not None:
                self.finish(phase, t, baseline=data.get("baseline"))
            serving = self._serving.pop(site, None)
            if serving is not None:
                self.finish(serving, t)
        elif kind == "start":
            joiner = data.get("joiner")
            if joiner is None:
                return
            # The peer's view install (and thus this event) can precede
            # the joiner's own status transition within the same view
            # change, so open the joiner's recovery root lazily here —
            # the cross-site parent link is the point of this span.
            joiner_root = self._recovery_root(joiner, t)
            self._serving[joiner] = self.begin(
                f"serve {joiner}", "phase", site, t,
                parent_id=joiner_root.span_id,
                joiner=joiner, sync=data.get("sync"))
        elif kind == "cancel":
            joiner = data.get("joiner")
            if joiner is not None:
                serving = self._serving.pop(joiner, None)
                if serving is not None and serving.site == site:
                    self.finish(serving, t, cancelled=True)

    def _on_replay(self, event) -> None:
        site, t, kind = event.site, event.time, event.kind
        if kind == "start":
            root = self._recovery_root(site, t)
            if (site, "replay") not in self._phases:
                self._phases[(site, "replay")] = self.begin(
                    "replay", "phase", site, t, parent_id=root.span_id)
        elif kind == "caught_up":
            phase = self._phases.pop((site, "replay"), None)
            if phase is not None:
                self.finish(phase, t)
